"""Smoke tests: every experiment module runs at toy scale and returns the
structures the benchmark harness depends on."""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    ap_density,
    appendix_knapsack,
    fig2_join_validation,
    fig3_beta_sensitivity,
    fig4_optimal_schedule,
    fig5_association,
    fig6_dhcp,
    fig7_tcp_fraction,
    fig8_tcp_dwell,
    fig10_micro,
    fig11_13_cdfs,
    fig14_join_timeouts,
    fig15_join_policies,
    fig16_17_usability,
    table1_switch_latency,
    table2_configs,
    table3_dhcp_failures,
    table4_channels,
    timeout_grid,
    transport_matrix,
)


class TestAnalyticalExperiments:
    def test_fig2(self):
        result = fig2_join_validation.run(
            beta_maxes_s=(5.0,), fractions=(0.25, 0.75), runs=4, trials_per_run=40
        )
        assert result.max_model_sim_gap() < 0.2
        assert "Fig2" in result.render()

    def test_fig3(self):
        result = fig3_beta_sensitivity.run(
            fractions=(0.25, 0.5), beta_maxes_s=(1.0, 5.0, 10.0)
        )
        for fraction, curve in result.curves.items():
            assert curve == sorted(curve, reverse=True), fraction
        assert "Fig3" in result.render()

    def test_fig4(self):
        result = fig4_optimal_schedule.run(
            scenarios={"75/25": (0.75, 0.25)}, speeds_mps=(2.5, 20.0), grid_steps=8
        )
        scenario = result.scenarios[0]
        assert scenario.ch2_bandwidth_bps[0] >= scenario.ch2_bandwidth_bps[-1]
        assert "dividing speed" in result.render()

    def test_appendix_knapsack(self):
        result = appendix_knapsack.run(sizes=(4, 8), brute_force_limit=8)
        assert 0.5 <= result.greedy_optimality_ratio() <= 1.0
        assert "Appendix A" in result.render()


class TestSimulatorExperiments:
    def test_fig5(self):
        result = fig5_association.run(fractions=(1.0,), seeds=(0,), duration_s=80.0)
        curve = result.curves[1.0]
        assert curve.attempts_on_primary >= 0
        assert "Fig5" in result.render()

    def test_fig6(self):
        configs = (fig6_dhcp.PAPER_CONFIGS[2],)  # 100% - 100ms only
        result = fig6_dhcp.run(configs=configs, seeds=(0,), duration_s=80.0)
        assert "Fig6" in result.render()

    def test_fig7(self):
        result = fig7_tcp_fraction.run(fractions=(1.0,), measure_s=10.0)
        assert result.throughput_kbps[0] > 100.0

    def test_fig8(self):
        result = fig8_tcp_dwell.run(dwells_ms=(100.0,), measure_s=10.0)
        assert len(result.throughput_kbps) == 1

    def test_table1(self):
        result = table1_switch_latency.run(interface_counts=(0, 2), switches=6)
        assert result.latency_is_increasing()
        assert result.rows[0].mean_ms > 4.0

    def test_fig10(self):
        result = fig10_micro.run(
            backhauls_mbps=(1.0,),
            labels=("one card, stock", "Spider (100,0,0)"),
            seeds=(0,),
            measure_s=10.0,
        )
        assert set(result.throughput_kBps) == {"one card, stock", "Spider (100,0,0)"}

    def test_timeout_grid_and_consumers(self):
        grid = timeout_grid.run_grid(
            labels=("ch1, ll=100ms, dhcp=200ms, 7if",), seeds=(0,), duration_s=60.0
        )
        t3 = table3_dhcp_failures.run(
            labels=("ch1, ll=100ms, dhcp=200ms, 7if",), grid=grid
        )
        assert len(t3.rows) == 1
        f14 = fig14_join_timeouts.run(
            labels=("ch1, ll=100ms, dhcp=200ms, 7if",), grid=grid
        )
        assert "Fig14" in f14.render()
        f15 = fig15_join_policies.run(
            labels=("ch1, ll=100ms, dhcp=200ms, 7if",), grid=grid
        )
        assert "Fig15" in f15.render()


class TestSuiteConsumers:
    @pytest.fixture(scope="class")
    def suite(self):
        from repro.experiments.town_runs import run_configuration_suite
        from repro.experiments.fig11_13_cdfs import FOUR_CONFIGS

        return run_configuration_suite(
            seeds=(0,), duration_s=120.0, include_cambridge=False, labels=FOUR_CONFIGS
        )

    def test_table2_from_suite(self, suite):
        result = table2_configs.run(suite=suite)
        assert len(result.rows) == 4
        assert result.multi_ap_gain() > 0
        assert "Table 2" in result.render()

    def test_fig11_13_from_suite(self, suite):
        result = fig11_13_cdfs.run(suite=suite)
        assert set(result.connection_durations) == set(fig11_13_cdfs.FOUR_CONFIGS)
        assert "Fig 12" in result.render()

    def test_fig16_17_from_suite(self, suite):
        result = fig16_17_usability.run(suite=suite)
        assert result.user_connection_durations
        assert 0.0 <= result.supply_covers_demand_fraction() <= 1.0
        assert "Fig 17" in result.render()


class TestStandaloneTownExperiments:
    def test_table4(self):
        result = table4_channels.run(seeds=(0,), duration_s=100.0)
        assert len(result.rows) == 3
        assert "Table 4" in result.render()

    def test_transport_matrix(self):
        from repro.experiments.town_runs import CONFIG_MULTI_CH_SINGLE_AP

        spec = transport_matrix.TransportMatrixSpec(
            seeds=(0,),
            duration_s=40.0,
            policies=(CONFIG_MULTI_CH_SINGLE_AP,),
            ccs=("reno", "bbr"),
            splits=(False, True),
        )
        result = transport_matrix.run_spec(spec).unwrap()
        assert len(result.cells) == 4
        cell = result.cell(CONFIG_MULTI_CH_SINGLE_AP, "reno", True)
        assert cell.throughput_kBps >= 0.0
        assert result.best_cell() in result.cells
        assert result.split_gain(CONFIG_MULTI_CH_SINGLE_AP, "bbr") >= 0.0
        text = result.render()
        assert "split=on" in text and "split=off" in text
        assert "Transport matrix" in text

    def test_transport_matrix_rejects_unknown_policy(self):
        from repro.runner.pool import TrialError

        spec = transport_matrix.TransportMatrixSpec(
            seeds=(0,), duration_s=10.0, policies=("nope",)
        )
        with pytest.raises(TrialError, match="unknown policies"):
            transport_matrix.run_spec(spec).unwrap()

    def test_ap_density(self):
        result = ap_density.run(towns=("amherst",), seeds=(0,), duration_s=100.0)
        row = result.rows[0]
        assert row.ap_count > 0
        shares = sum(row.link_share.values())
        assert shares == pytest.approx(1.0, abs=1e-6) or shares == 0.0
        assert "density" in result.render()
