"""The fault-injection subsystem: plans, the GE chain, and the injector.

The subsystem's contract has three legs: fault plans are picklable values
(they ride inside trial specs), every stochastic choice comes from the
dedicated ``faults.*``/``medium.gilbert`` RNG streams (same seed, same
faults), and installed plans actually damage the world on schedule — and
the hardened client layers survive the damage.
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.faults import (
    ApFlap,
    ApOutage,
    BurstyLoss,
    DhcpNakBurst,
    DhcpStall,
    FaultInjector,
    FaultPlan,
    GilbertElliottLoss,
    LeaseExhaustion,
    RandomOutages,
    install_faults,
)
from repro.sim.world import World

from conftest import make_lab_ap
from test_failure_injection import spider_on


class TestFaultPlanValue:
    def test_plans_pickle_and_compare(self):
        plan = FaultPlan.of(
            ApOutage(at_s=5.0, duration_s=3.0),
            ApFlap(start_s=10.0, count=2),
            DhcpStall(at_s=1.0, duration_s=4.0),
            DhcpNakBurst(at_s=2.0, duration_s=4.0),
            LeaseExhaustion(at_s=3.0, duration_s=4.0),
            BurstyLoss(at_s=0.0),
            RandomOutages(start_s=0.0, end_s=60.0),
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert hash(clone) == hash(plan)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert not FaultPlan.of()
        assert FaultPlan.of(ApOutage(at_s=1.0))

    def test_install_none_and_empty_are_noops(self, sim, world):
        assert install_faults(sim, world, None) is None
        assert install_faults(sim, world, FaultPlan()) is None
        assert sim.events_processed == 0

    def test_double_install_rejected(self, sim, world):
        make_lab_ap(world)
        injector = FaultInjector(sim, world, FaultPlan.of(ApOutage(at_s=1.0)))
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()


class TestGilbertElliott:
    def test_trajectory_deterministic_per_seed(self):
        def trajectory(seed):
            model = GilbertElliottLoss(
                random.Random(seed), 0.02, 0.6, mean_good_s=2.0, mean_bad_s=1.0
            )
            return [model.loss_rate_at(t * 0.5) for t in range(100)]

        assert trajectory(7) == trajectory(7)
        assert trajectory(7) != trajectory(8)

    def test_same_instant_is_idempotent(self):
        model = GilbertElliottLoss(
            random.Random(3), 0.1, 0.9, mean_good_s=1.0, mean_bad_s=1.0
        )
        first = model.loss_rate_at(17.0)
        transitions = model.transitions
        assert model.loss_rate_at(17.0) == first
        assert model.transitions == transitions

    def test_both_states_visited(self):
        model = GilbertElliottLoss(
            random.Random(1), 0.0, 0.5, mean_good_s=1.0, mean_bad_s=1.0
        )
        rates = {model.loss_rate_at(float(t)) for t in range(200)}
        assert rates == {0.0, 0.5}
        assert model.transitions > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(0), -0.1, 0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(0), 0.1, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(0), 0.1, 0.5, 0.0, 1.0)


class TestApFailRecover:
    def test_outage_window_fires_on_schedule(self, sim, world):
        ap = make_lab_ap(world)
        injector = install_faults(
            sim, world, FaultPlan.of(ApOutage(at_s=5.0, duration_s=3.0, bssid=ap.bssid))
        )
        sim.run(until=4.9)
        assert not ap.failed
        sim.run(until=6.0)
        assert ap.failed
        sim.run(until=10.0)
        assert not ap.failed
        assert ap.failures == 1
        assert [(t, a) for t, a, _ in injector.injected] == [
            (5.0, "ap_fail"), (8.0, "ap_recover")
        ]

    def test_permanent_outage_never_recovers(self, sim, world):
        ap = make_lab_ap(world)
        install_faults(
            sim, world, FaultPlan.of(ApOutage(at_s=2.0, bssid=ap.bssid))
        )
        sim.run(until=30.0)
        assert ap.failed

    def test_failed_ap_stops_beaconing(self, sim, world):
        ap = make_lab_ap(world)
        client = spider_on(sim, world, num_interfaces=1)
        sim.run(until=3.0)
        assert client.lmm.established_count == 1
        ap.fail()
        entry = client.nic.scan_table.get(ap.bssid)
        last_seen = entry.last_seen
        sim.run(until=10.0)
        entry = client.nic.scan_table.get(ap.bssid)
        # No fresh beacons: the entry either aged out or kept its timestamp.
        assert entry is None or entry.last_seen == last_seen

    def test_flap_counts_cycles(self, sim, world):
        ap = make_lab_ap(world)
        install_faults(
            sim,
            world,
            FaultPlan.of(
                ApFlap(start_s=1.0, count=3, down_s=1.0, up_s=1.0, bssid=ap.bssid)
            ),
        )
        sim.run(until=10.0)
        assert ap.failures == 3
        assert not ap.failed

    def test_random_outages_deterministic_per_seed(self):
        def schedule(seed):
            sim = Simulator(seed=seed)
            world = World(sim, loss_rate=0.0)
            for x in (10.0, 40.0, 80.0):
                make_lab_ap(world, x=x)
            injector = install_faults(
                sim,
                world,
                FaultPlan.of(
                    RandomOutages(start_s=0.0, end_s=120.0, rate_per_min=10.0)
                ),
            )
            sim.run(until=120.0)
            return injector.injected

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)
        assert any(action == "ap_fail" for _, action, _ in schedule(5))


class TestDhcpWindows:
    def test_stall_drops_requests_and_blocks_join(self, sim, world):
        ap = make_lab_ap(world)
        ap.dhcp.stall(until_s=8.0)
        client = spider_on(sim, world, num_interfaces=1, dhcp_budget_s=1.0)
        sim.run(until=7.0)
        assert client.lmm.established_count == 0
        assert ap.dhcp.requests_dropped > 0
        reached = [a for a in client.join_log.attempts if a.associated]
        assert reached and all(not a.leased for a in reached)

    def test_exhaustion_blocks_new_clients_until_window_ends(self, sim, world):
        ap = make_lab_ap(world)
        ap.dhcp.exhaust(until_s=6.0)
        client = spider_on(
            sim, world, num_interfaces=1, dhcp_budget_s=1.0,
            dhcp_idle_after_failure_s=1.0,
        )
        sim.run(until=5.0)
        assert client.lmm.established_count == 0
        assert ap.dhcp.acks_sent == 0
        sim.run(until=20.0)
        assert client.lmm.established_count == 1

    def test_nak_burst_counts_naks_on_both_ends(self, sim, world):
        ap = make_lab_ap(world)
        client = spider_on(sim, world, num_interfaces=1)
        sim.run(until=3.0)
        assert client.lmm.established_count == 1
        # Server forgets bindings and NAKs while the client renegotiates.
        ap.dhcp.force_nak(until_s=15.0)
        ap.fail()
        sim.schedule_at(4.0, ap.recover)
        sim.run(until=12.0)
        assert ap.dhcp.naks_sent > 0
        assert client.join_log.nak_count() > 0

    def test_installer_hits_every_server_when_untargeted(self, sim, world):
        aps = [make_lab_ap(world, x=x) for x in (10.0, 50.0)]
        install_faults(
            sim, world, FaultPlan.of(DhcpStall(at_s=1.0, duration_s=5.0))
        )
        sim.run(until=2.0)
        assert all(ap.dhcp.offline_until == 6.0 for ap in aps)


class TestBurstyLossInstall:
    def test_window_swaps_medium_model_in_and_out(self, sim, world):
        install_faults(
            sim,
            world,
            FaultPlan.of(BurstyLoss(at_s=2.0, duration_s=3.0, h_bad=0.9)),
        )
        assert world.medium.bursty_loss is None
        sim.run(until=2.5)
        model = world.medium.bursty_loss
        assert isinstance(model, GilbertElliottLoss)
        assert model.h_bad == 0.9
        sim.run(until=6.0)
        assert world.medium.bursty_loss is None

    def test_stationary_loss_report_unaffected(self, sim, world):
        # airtime/packet-loss reporting stays on the configured i.i.d. rate;
        # only per-delivery draws consult the bursty chain.
        base = world.medium
        install_faults(sim, world, FaultPlan.of(BurstyLoss(at_s=0.0, h_bad=0.9)))
        sim.run(until=1.0)
        assert base.loss_rate == 0.0


class TestFaultedTrialDeterminism:
    def test_same_seed_same_plan_identical_injection_log(self):
        plan = FaultPlan.of(
            RandomOutages(start_s=5.0, end_s=60.0, rate_per_min=6.0),
            DhcpNakBurst(at_s=10.0, duration_s=20.0),
            BurstyLoss(at_s=0.0),
        )

        def drive(seed):
            sim = Simulator(seed=seed)
            world = World(sim, loss_rate=0.05)
            for x in (10.0, 40.0):
                make_lab_ap(world, x=x)
            injector = install_faults(sim, world, plan)
            client = spider_on(sim, world, num_interfaces=2)
            sim.run(until=60.0)
            history = [
                (a.bssid, a.started_at, a.verified, a.failure_reason, a.nak_received)
                for a in client.join_log.attempts
            ]
            return injector.injected, history, sim.events_processed

        assert drive(42) == drive(42)
        assert drive(42) != drive(43)


class TestFaultSweepSmoke:
    def test_sweep_runs_and_renders(self):
        from repro.experiments import fault_sweep

        result = fault_sweep.run(
            seeds=(0,),
            duration_s=40.0,
            scenario_names=(fault_sweep.BASELINE_SCENARIO, "dhcp stall"),
        )
        assert len(result.rows) == 4  # 2 scenarios x 2 clients
        text = result.render()
        assert "dhcp stall" in text and "Spider" in text
        spider_base = result.row(fault_sweep.BASELINE_SCENARIO, fault_sweep.SPIDER)
        assert spider_base.attempts > 0

    def test_unknown_scenario_rejected(self):
        from repro.experiments import fault_sweep

        with pytest.raises(KeyError):
            fault_sweep.run(seeds=(0,), duration_s=10.0, scenario_names=("nope",))
