"""Unit tests for the pluggable congestion-control subsystem.

Covers the controller strategy classes (Reno arithmetic, CUBIC window
growth, BBR-lite pacing bounds), the frozen :class:`TransportSpec` bundle
and its env/CLI resolution, the split-connection AP proxy, and the
QUIC-style 0-RTT join-verify skip.
"""

from __future__ import annotations

import pickle

import pytest

from repro.obs.telemetry import Telemetry
from repro.sim.cc import (
    BbrLiteCC,
    CC_NAMES,
    CubicCC,
    QuicZeroRttCC,
    RenoCC,
    TcpParams,
    TransportSpec,
    make_controller,
    resolve_transport,
)
from repro.sim.engine import Simulator
from repro.sim.world import World

from conftest import make_lab_ap


class TestRegistry:
    def test_names_cover_all_four_controllers(self):
        assert CC_NAMES == ("reno", "cubic", "bbr", "quic0rtt")

    @pytest.mark.parametrize("name", CC_NAMES)
    def test_make_controller_matches_name(self, name):
        cc = make_controller(name)
        assert cc.name == name
        assert cc.cwnd > 0 and cc.ssthresh > 0

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown congestion controller"):
            make_controller("vegas")

    def test_controllers_honour_params(self):
        params = TcpParams(initial_cwnd_segments=5.0, max_cwnd_segments=20.0)
        cc = make_controller("cubic", params)
        assert cc.cwnd == 5.0
        assert cc.p.max_cwnd_segments == 20.0


class TestReno:
    def test_slow_start_doubles_per_window(self):
        cc = RenoCC(TcpParams(initial_cwnd_segments=2.0))
        cc.on_ack(2.0, 2.0, now=0.1)
        assert cc.cwnd == 4.0

    def test_congestion_avoidance_is_sublinear(self):
        cc = RenoCC(TcpParams(initial_ssthresh_segments=2.0))
        cc.cwnd = 10.0
        cc.on_ack(1.0, 10.0, now=0.1)
        assert cc.cwnd == pytest.approx(10.1)

    def test_rto_collapses_to_one_segment(self):
        cc = RenoCC()
        cc.cwnd = 40.0
        cc.on_rto(30.0, now=1.0)
        assert cc.cwnd == 1.0
        assert cc.ssthresh == 15.0

    def test_fast_retransmit_halves(self):
        cc = RenoCC()
        cc.cwnd = 40.0
        cc.on_fast_retransmit(40.0, now=1.0)
        assert cc.cwnd == cc.ssthresh == 20.0

    def test_ssthresh_floor_is_two_segments(self):
        cc = RenoCC()
        cc.on_rto(1.0, now=1.0)
        assert cc.ssthresh == 2.0

    def test_quic0rtt_shares_reno_window_dynamics(self):
        reno, quic = RenoCC(), QuicZeroRttCC()
        for step in range(50):
            reno.on_ack(2.0, 10.0, now=0.1 * step)
            quic.on_ack(2.0, 10.0, now=0.1 * step)
        reno.on_rto(12.0, now=6.0)
        quic.on_rto(12.0, now=6.0)
        assert (reno.cwnd, reno.ssthresh) == (quic.cwnd, quic.ssthresh)
        assert quic.zero_rtt_resume and not reno.zero_rtt_resume


class TestCubic:
    def test_slow_start_matches_reno(self):
        cc = CubicCC(TcpParams(initial_cwnd_segments=2.0))
        cc.on_ack(2.0, 2.0, now=0.1)
        assert cc.cwnd == 4.0

    def test_loss_multiplies_by_beta(self):
        cc = CubicCC()
        cc.cwnd = 50.0
        cc.ssthresh = 10.0
        cc.on_fast_retransmit(50.0, now=1.0)
        assert cc.cwnd == pytest.approx(35.0)  # 50 * 0.7
        assert cc.ssthresh == pytest.approx(35.0)

    def test_window_plateaus_near_w_max_then_probes_past(self):
        """The defining CUBIC shape: concave recovery toward w_max, a
        plateau, then convex probing beyond it."""
        cc = CubicCC(TcpParams(max_cwnd_segments=10_000.0))
        cc.cwnd = 100.0
        cc.ssthresh = 100.0
        cc.on_fast_retransmit(100.0, now=0.0)
        trace = []
        now = 0.0
        for _ in range(4000):
            now += 0.01
            cc.on_ack(1.0, cc.cwnd, now)
            trace.append(cc.cwnd)
        # Monotone non-decreasing growth after the loss...
        assert all(b >= a for a, b in zip(trace, trace[1:]))
        # ...that crosses the old maximum and keeps probing.
        assert trace[0] < 100.0 < trace[-1]
        # Growth near w_max (the plateau) is slower than the late convex
        # probing phase.
        mid = min(range(len(trace)), key=lambda i: abs(trace[i] - 100.0))
        window = 200
        plateau_rate = trace[mid + window] - trace[mid]
        late_rate = trace[-1] - trace[-1 - window]
        assert late_rate > plateau_rate

    def test_rto_resets_to_one_segment(self):
        cc = CubicCC()
        cc.cwnd = 30.0
        cc.on_rto(30.0, now=2.0)
        assert cc.cwnd == 1.0

    def test_capped_by_max_cwnd(self):
        cc = CubicCC(TcpParams(max_cwnd_segments=16.0))
        cc.cwnd = 16.0
        cc.ssthresh = 1.0
        for step in range(1000):
            cc.on_ack(4.0, 16.0, now=0.05 * step)
            assert cc.cwnd <= 16.0


class TestBbrLite:
    def feed(self, cc, rtt_s, rate_segments_per_s, acks=64, start=0.0):
        """Feed a steady ACK clock: `rate` segments/s spaced evenly."""
        gap = 1.0 / rate_segments_per_s
        now = start
        for _ in range(acks):
            now += gap
            cc.on_rtt_sample(rtt_s, now)
            cc.on_ack(1.0, cc.cwnd, now)
        return now

    def test_cwnd_converges_to_gain_times_bdp(self):
        cc = BbrLiteCC(TcpParams(max_cwnd_segments=1000.0))
        # 100 segments/s at 100 ms RTT -> BDP = 10 segments.
        self.feed(cc, rtt_s=0.1, rate_segments_per_s=100.0)
        assert cc.bdp == pytest.approx(10.0)
        assert cc.cwnd == pytest.approx(cc.CWND_GAIN * 10.0)

    def test_pacing_bound_invariant(self):
        """Once the filters hold data, cwnd never exceeds the pacing bound
        max(GAIN * BDP, MIN_CWND), and always stays in [MIN_CWND, max]."""
        cc = BbrLiteCC(TcpParams(max_cwnd_segments=64.0))
        now = self.feed(cc, rtt_s=0.05, rate_segments_per_s=200.0)
        for step in range(200):
            now += 0.01
            cc.on_ack(1.0, cc.cwnd, now)
            bound = max(cc.CWND_GAIN * cc.bdp, cc.MIN_CWND)
            assert cc.cwnd <= bound + 1e-9
            assert cc.MIN_CWND <= cc.cwnd <= cc.p.max_cwnd_segments

    def test_rto_floors_at_min_cwnd_not_one(self):
        cc = BbrLiteCC()
        self.feed(cc, rtt_s=0.1, rate_segments_per_s=100.0)
        cc.on_rto(10.0, now=100.0)
        assert cc.cwnd == cc.MIN_CWND  # 4.0 — not Reno's collapse to 1

    def test_rate_filter_reset_after_rto(self):
        """The off-channel gap must not register as a huge ACK interval."""
        cc = BbrLiteCC()
        now = self.feed(cc, rtt_s=0.1, rate_segments_per_s=100.0)
        bw_before = cc.btl_bw
        cc.on_rto(10.0, now=now)
        # First ACK after the gap contributes no rate sample.
        cc.on_ack(1.0, 4.0, now + 30.0)
        assert cc.btl_bw == bw_before

    def test_min_rtt_window_expires_old_samples(self):
        cc = BbrLiteCC()
        cc.on_rtt_sample(0.01, now=0.0)
        cc.on_rtt_sample(0.5, now=5.0)
        assert cc.min_rtt == 0.01
        cc.on_rtt_sample(0.4, now=11.0)  # 0.01 sample now older than 10 s
        assert cc.min_rtt == 0.4

    def test_fast_retransmit_dents_mildly(self):
        cc = BbrLiteCC()
        cc.cwnd = 40.0
        cc.on_fast_retransmit(40.0, now=1.0)
        assert cc.cwnd == pytest.approx(34.0)  # 0.85x, not 0.5x


class TestTransportSpec:
    def test_default_is_reno_no_split(self):
        spec = TransportSpec()
        assert spec.cc == "reno" and not spec.split
        assert not spec.zero_rtt
        assert isinstance(spec.controller(), RenoCC)

    def test_params_round_trip(self):
        params = TcpParams(mss=1200, rto_min_s=0.3)
        spec = TransportSpec.from_params(params, cc="bbr", split=True)
        assert spec.params() == params
        assert spec.cc == "bbr" and spec.split

    def test_rejects_unknown_cc(self):
        with pytest.raises(ValueError, match="unknown congestion controller"):
            TransportSpec(cc="vegas")

    def test_frozen_and_picklable(self):
        spec = TransportSpec(cc="cubic", split=True)
        with pytest.raises(Exception):
            spec.cc = "reno"  # type: ignore[misc]
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_zero_rtt_only_for_quic(self):
        assert TransportSpec(cc="quic0rtt").zero_rtt
        for name in ("reno", "cubic", "bbr"):
            assert not TransportSpec(cc=name).zero_rtt

    def test_controller_instances_are_fresh(self):
        spec = TransportSpec(cc="cubic")
        a, b = spec.controller(), spec.controller()
        a.cwnd = 99.0
        assert b.cwnd != 99.0


class TestResolveTransport:
    def test_nothing_requested_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_CC", raising=False)
        monkeypatch.delenv("REPRO_SPLIT", raising=False)
        assert resolve_transport() is None

    def test_cli_args_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "cubic")
        monkeypatch.setenv("REPRO_SPLIT", "1")
        spec = resolve_transport(cc="bbr", split=False)
        assert spec == TransportSpec(cc="bbr", split=False)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "quic0rtt")
        monkeypatch.delenv("REPRO_SPLIT", raising=False)
        spec = resolve_transport()
        assert spec == TransportSpec(cc="quic0rtt", split=False)

    @pytest.mark.parametrize("value", ["", "0", "false", "No", "OFF"])
    def test_falsey_split_env_values(self, monkeypatch, value):
        monkeypatch.delenv("REPRO_CC", raising=False)
        monkeypatch.setenv("REPRO_SPLIT", value)
        spec = resolve_transport()
        assert spec is not None and not spec.split

    def test_split_env_truthy(self, monkeypatch):
        monkeypatch.delenv("REPRO_CC", raising=False)
        monkeypatch.setenv("REPRO_SPLIT", "yes")
        spec = resolve_transport()
        assert spec == TransportSpec(cc="reno", split=True)


class _LabClient:
    """Minimal joined client: associate+DHCP by hand, then open a flow."""

    def __init__(self, sim, world, ap, loss=None):
        from repro.sim.dhcp import DhcpClient
        from repro.sim.mac import Associator
        from repro.sim.mobility import StaticPosition
        from repro.sim.nic import WifiNic

        self.sim = sim
        self.world = world
        self.ap = ap
        self.nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli",
                           initial_channel=ap.channel)
        self.iface = self.nic.add_interface()
        self.joined = False

        def on_assoc(elapsed):
            DhcpClient(
                sim,
                self.iface,
                server_bssid=ap.bssid,
                on_success=self._on_lease,
                on_failure=lambda: None,
            ).start()

        Associator(
            sim,
            self.iface,
            bssid=ap.bssid,
            channel=ap.channel,
            on_success=on_assoc,
            on_failure=lambda reason: None,
        ).start()

    def _on_lease(self, ip, gateway, elapsed, used_cache):
        self.iface.ip = ip
        self.iface.routable = True
        self.joined = True

    def open_flow(self, total_bytes, transport=None):
        from repro.sim.traffic import ClientFlow

        assert self.joined
        return ClientFlow(
            self.sim, self.world, self.iface,
            total_bytes=total_bytes, transport=transport,
        )


class TestSplitProxy:
    def build(self, loss_rate, transport):
        """Join over a clean channel, then apply ``loss_rate`` to the data
        phase (the join handshake has its own retry story, tested
        elsewhere)."""
        sim = Simulator(seed=7)
        world = World(sim, loss_rate=0.0, transport=transport)
        ap = make_lab_ap(world, x=5.0)
        client = _LabClient(sim, world, ap)
        sim.run(until=3.0)
        assert client.joined
        world.medium.loss_rate = loss_rate
        world.medium._one_minus_loss = 1.0 - loss_rate
        return sim, world, ap, client

    def test_proxy_registered_and_relays_all_bytes(self):
        transport = TransportSpec(split=True)
        sim, world, ap, client = self.build(0.0, transport)
        flow = client.open_flow(total_bytes=120_000)
        sim.run(until=2.0)
        assert ap.split_proxies  # proxy engaged mid-flow
        sim.run(until=40.0)
        assert flow.bytes_delivered == 120_000
        assert not ap.split_proxies  # closed after completion

    def test_client_stream_is_in_order_and_exact(self):
        """Relay ordering: the client's receiver sees a clean in-order
        prefix-closed byte stream even under heavy wireless loss."""
        transport = TransportSpec(split=True)
        sim, world, ap, client = self.build(0.25, transport)
        flow = client.open_flow(total_bytes=80_000)
        deliveries = []
        flow.receiver.on_deliver = deliveries.append
        sim.run(until=120.0)
        assert flow.bytes_delivered == 80_000
        assert flow.receiver.rcv_nxt == 80_000
        assert all(n > 0 for n in deliveries)

    def test_wired_sender_shielded_from_wireless_loss(self):
        """The point of splitting: wireless loss damages only the relay's
        window; the origin (wired-side) sender sees a clean path."""
        transport = TransportSpec(split=True)
        sim, world, ap, client = self.build(0.3, transport)
        flow = client.open_flow(total_bytes=60_000)
        sim.run(until=1.5)
        proxy = ap.split_proxies[flow.flow_id]
        relay = proxy.relay
        origin = flow.sender
        sim.run(until=120.0)
        assert flow.bytes_delivered == 60_000
        # The relay fought the lossy last hop; the origin never lost a
        # segment on the wired path.
        assert relay.timeouts + relay.fast_retransmits > 0
        assert origin.timeouts == 0 and origin.fast_retransmits == 0

    def test_no_split_leaves_ap_proxyless(self):
        sim, world, ap, client = self.build(0.0, TransportSpec(split=False))
        client.open_flow(total_bytes=40_000)
        sim.run(until=20.0)
        assert not ap.split_proxies

    def test_ap_failure_closes_proxies(self):
        transport = TransportSpec(split=True)
        sim, world, ap, client = self.build(0.0, transport)
        client.open_flow(total_bytes=10_000_000)
        sim.run(until=2.0)
        assert ap.split_proxies
        ap.fail()
        assert not ap.split_proxies


class TestZeroRttJoin:
    def make_spider(self, transport):
        from repro.core.link_manager import LinkManager, SpiderConfig
        from repro.core.schedule import OperationMode
        from repro.sim.mobility import StaticPosition
        from repro.sim.nic import WifiNic

        tele = Telemetry()
        sim = Simulator(seed=11, telemetry=tele)
        world = World(sim, loss_rate=0.0, transport=transport)
        ap = make_lab_ap(world, x=5.0)
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "veh",
                      initial_channel=ap.channel)
        config = SpiderConfig.spider_defaults(
            OperationMode.single_channel(ap.channel), num_interfaces=1
        )
        lmm = LinkManager(sim, world, nic, config)
        return sim, world, ap, lmm, tele

    def drop_and_rejoin(self, sim, lmm):
        link = lmm._links[0]
        lmm._teardown_link(link, blacklist_s=0.0)
        sim.run(until=sim.now + 10.0)

    def test_rejoin_skips_verify_span_with_quic0rtt(self):
        sim, world, ap, lmm, tele = self.make_spider(TransportSpec(cc="quic0rtt"))
        sim.run(until=8.0)
        assert lmm.established_count == 1
        self.drop_and_rejoin(sim, lmm)
        assert lmm.established_count == 1
        snap = tele.snapshot()
        verify_spans = [s for s in snap.spans if s.name == "join.verify"]
        assert len(verify_spans) == 1  # first join only; rejoin skipped it
        assert snap.counter_value("join.zero_rtt_resumes") == 1.0
        # Both joins completed fully (associated, leased, verified).
        assert sum(1 for a in lmm.join_log.attempts if a.verified) == 2

    def test_reno_rejoin_still_verifies(self):
        sim, world, ap, lmm, tele = self.make_spider(TransportSpec(cc="reno"))
        sim.run(until=8.0)
        assert lmm.established_count == 1
        self.drop_and_rejoin(sim, lmm)
        snap = tele.snapshot()
        verify_spans = [s for s in snap.spans if s.name == "join.verify"]
        assert len(verify_spans) == 2
        assert snap.counter_value("join.zero_rtt_resumes") == 0.0

    def test_zero_rtt_only_for_previously_verified_ap(self):
        sim, world, ap, lmm, tele = self.make_spider(TransportSpec(cc="quic0rtt"))
        sim.run(until=8.0)
        snap = tele.snapshot()
        # First-contact join must still run the verify probe.
        assert [s for s in snap.spans if s.name == "join.verify"]
        assert snap.counter_value("join.zero_rtt_resumes") == 0.0
