"""Unit tests for operation modes (channel schedules)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import DEFAULT_SWITCH_OVERHEAD_S, OperationMode


class TestConstruction:
    def test_fractions_must_be_positive(self):
        with pytest.raises(ValueError):
            OperationMode(0.4, {1: 0.5, 6: 0.0})

    def test_fractions_must_not_exceed_one(self):
        with pytest.raises(ValueError):
            OperationMode(0.4, {1: 0.7, 6: 0.6})

    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            OperationMode(0.0, {1: 1.0})

    def test_needs_at_least_one_channel(self):
        with pytest.raises(ValueError):
            OperationMode(0.4, {})

    def test_auto_name_generated(self):
        mode = OperationMode(0.4, {1: 0.5, 6: 0.5})
        assert "ch1" in mode.name and "ch6" in mode.name

    def test_fractions_frozen_into_copy(self):
        source = {1: 0.5, 6: 0.5}
        mode = OperationMode(0.4, source)
        source[1] = 0.9
        assert mode.fraction(1) == 0.5


class TestAccessors:
    def test_channels_sorted(self):
        mode = OperationMode(0.6, {11: 0.3, 1: 0.3, 6: 0.4})
        assert mode.channels == [1, 6, 11]

    def test_dwell_seconds(self):
        mode = OperationMode(0.4, {1: 0.25, 6: 0.75})
        assert mode.dwell_s(1) == pytest.approx(0.1)
        assert mode.dwell_s(6) == pytest.approx(0.3)
        assert mode.dwell_s(99) == 0.0

    def test_cycle_lists_visits(self):
        mode = OperationMode(0.6, {1: 0.5, 6: 0.5})
        assert mode.cycle() == [(1, pytest.approx(0.3)), (6, pytest.approx(0.3))]

    def test_single_channel_flag(self):
        assert OperationMode.single_channel(6).is_single_channel
        assert not OperationMode.equal_split((1, 6), 0.4).is_single_channel


class TestFeasibility:
    def test_single_channel_always_feasible(self):
        assert OperationMode.single_channel(1).is_feasible()

    def test_full_split_with_overhead_infeasible(self):
        mode = OperationMode(0.02, {1: 0.5, 6: 0.5})  # 10 ms dwells, ~11 ms overhead
        assert not mode.is_feasible(switch_overhead_s=DEFAULT_SWITCH_OVERHEAD_S)

    def test_slack_makes_it_feasible(self):
        mode = OperationMode(0.6, {1: 0.45, 6: 0.45})
        assert mode.is_feasible()


class TestConstructors:
    def test_equal_split_normalizes(self):
        mode = OperationMode.equal_split((1, 6, 11), 0.6)
        for channel in (1, 6, 11):
            assert mode.fraction(channel) == pytest.approx(1 / 3)

    def test_equal_split_deduplicates(self):
        mode = OperationMode.equal_split((1, 1, 6), 0.4)
        assert mode.channels == [1, 6]
        assert mode.fraction(1) == pytest.approx(0.5)

    def test_equal_split_empty_rejected(self):
        with pytest.raises(ValueError):
            OperationMode.equal_split((), 0.4)

    def test_weighted_normalizes_and_drops_zeros(self):
        mode = OperationMode.weighted({1: 3.0, 6: 1.0, 11: 0.0}, 0.4)
        assert mode.channels == [1, 6]
        assert mode.fraction(1) == pytest.approx(0.75)

    def test_weighted_all_zero_rejected(self):
        with pytest.raises(ValueError):
            OperationMode.weighted({1: 0.0}, 0.4)

    def test_single_channel_constructor(self):
        mode = OperationMode.single_channel(6, period_s=0.5)
        assert mode.fraction(6) == 1.0
        assert mode.period_s == 0.5

    @settings(max_examples=40, deadline=None)
    @given(
        weights=st.dictionaries(
            st.integers(min_value=1, max_value=11),
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=4,
        )
    )
    def test_weighted_fractions_always_sum_to_one(self, weights):
        mode = OperationMode.weighted(weights, 0.4)
        assert sum(mode.fractions.values()) == pytest.approx(1.0)
