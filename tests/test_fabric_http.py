"""Loopback tests for the HTTP coordinator service and worker agents.

These drive the real wire: an asyncio coordinator on an ephemeral port,
``http.client`` workers executing leased jobs in sandbox subprocesses, and
the :class:`HttpFabric` adapter a ``--fabric http://...`` run uses.  Wire
round-trips repickle envelopes, so equality here is object equality (the
byte-identity contract lives on the results JSON, exercised in CI).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.cache import TrialCache
from repro.fabric import demo_jobs
from repro.fabric.http import CoordinatorClient, CoordinatorServer, HttpFabric
from repro.fabric.worker import WorkerAgent
from repro.runner.pool import run_jobs


class _ServerThread:
    """A coordinator service running on its own event loop in a thread."""

    def __init__(self, **state_kwargs):
        self.loop = asyncio.new_event_loop()
        self.server = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, kwargs=state_kwargs, daemon=True
        )
        self._thread.start()
        assert self._started.wait(timeout=10.0), "coordinator failed to start"

    def _run(self, **state_kwargs):
        asyncio.set_event_loop(self.loop)
        self.server = CoordinatorServer(port=0, **state_kwargs)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_until_complete(self.server.serve_until_stopped())
        self.loop.close()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def stop(self):
        try:
            CoordinatorClient(self.url, timeout_s=5.0).shutdown()
        except Exception:
            pass
        self._thread.join(timeout=10.0)


@pytest.fixture
def coordinator():
    made = []

    def factory(**state_kwargs):
        server = _ServerThread(**state_kwargs)
        made.append(server)
        return server

    yield factory
    for server in made:
        server.stop()


def _drain_with_workers(url, count, jobs_each=None):
    agents = [
        WorkerAgent(url, worker_id=f"test-w{i}", max_jobs=jobs_each, idle_exit_s=0.5)
        for i in range(count)
    ]
    threads = [threading.Thread(target=a.run, daemon=True) for a in agents]
    for t in threads:
        t.start()
    return agents, threads


class TestLoopback:
    def test_fleet_drains_batch_to_serial_results(self, coordinator):
        server = coordinator(lease_ttl_s=10.0)
        jobs = demo_jobs(6)
        fabric = HttpFabric(server.url, poll_s=0.05)
        agents, threads = _drain_with_workers(server.url, count=2)
        results = fabric.run(jobs)
        for t in threads:
            t.join(timeout=15.0)
        assert results == run_jobs(demo_jobs(6), workers=1)
        assert sum(a.jobs_done for a in agents) == 6

    def test_abandoned_lease_is_reclaimed_and_reassigned(self, coordinator):
        server = coordinator(lease_ttl_s=0.4)
        client = CoordinatorClient(server.url, timeout_s=5.0)
        batch = server.server.state.submit(demo_jobs(1))
        first = client.lease("crasher")["lease"]
        assert first is not None  # ...and "crasher" now dies silently
        deadline = threading.Event()
        lease = None
        for _ in range(60):  # the tick loop expires it within ~2 TTLs
            deadline.wait(0.1)
            lease = client.lease("survivor")["lease"]
            if lease is not None:
                break
        assert lease is not None, "expired lease was never reassigned"
        import base64
        import pickle

        job = pickle.loads(base64.b64decode(lease["job"]))
        client.complete(int(lease["lease"]), True, value=job.run())
        assert client.results(batch) == run_jobs(demo_jobs(1), workers=1)
        stats = client.stats()["stats"]
        assert stats["reassignments"] >= 1

    def test_coordinator_restart_resumes_from_cache(self, coordinator, tmp_path):
        cache = TrialCache(tmp_path, fingerprint="pin")
        jobs = demo_jobs(4)
        first = coordinator(lease_ttl_s=10.0, cache=cache)
        fabric = HttpFabric(first.url, poll_s=0.05)
        _drain_with_workers(first.url, count=1)
        finished = fabric.run(jobs)
        first.stop()  # the coordinator "crashes"
        # A replacement with the same cache volume needs no workers at all:
        # every job is a cache hit at submit time.
        second = coordinator(lease_ttl_s=10.0, cache=TrialCache(tmp_path, fingerprint="pin"))
        resumed = HttpFabric(second.url, poll_s=0.05).run(demo_jobs(4))
        assert resumed == finished
        stats = CoordinatorClient(second.url, timeout_s=5.0).stats()["stats"]
        assert stats["cache_hits"] == 4
        assert stats["leases_issued"] == 0

    def test_bad_requests_never_kill_the_service(self, coordinator):
        server = coordinator(lease_ttl_s=10.0)
        client = CoordinatorClient(server.url, timeout_s=5.0)
        with pytest.raises(RuntimeError):
            client._call("POST", "/complete", {})  # missing fields -> 400
        with pytest.raises(RuntimeError):
            client._call("GET", "/nope")  # -> 404
        assert client._call("GET", "/health") == {"ok": True}
