"""Unit tests for topology assembly and wired routing."""

from __future__ import annotations

import pytest

from repro.sim.frames import Frame, FrameKind, TcpSegment
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


class TestApConstruction:
    def test_auto_bssids_unique(self, world):
        a = world.add_ap(channel=1, position=(0, 0))
        b = world.add_ap(channel=6, position=(10, 0))
        assert a.bssid != b.bssid

    def test_auto_subnets_unique(self, world):
        a = world.add_ap(channel=1, position=(0, 0))
        b = world.add_ap(channel=6, position=(10, 0))
        assert a.dhcp.subnet != b.dhcp.subnet

    def test_explicit_bssid_and_subnet(self, world):
        ap = world.add_ap(channel=1, position=(0, 0), bssid="myap", subnet="10.99.0")
        assert ap.bssid == "myap"
        assert ap.dhcp.gateway_ip == "10.99.0.1"

    def test_uplink_handler_installed(self, world):
        ap = world.add_ap(channel=1, position=(0, 0))
        assert ap.uplink_handler is not None


class TestRouting:
    def test_ap_for_ip_matches_subnet(self, world):
        a = world.add_ap(channel=1, position=(0, 0))
        b = world.add_ap(channel=6, position=(10, 0))
        assert world.ap_for_ip(f"{a.dhcp.subnet}.10") is a
        assert world.ap_for_ip(f"{b.dhcp.subnet}.10") is b

    def test_unknown_subnet_routes_nowhere(self, world):
        world.add_ap(channel=1, position=(0, 0))
        assert world.ap_for_ip("172.16.0.1") is None
        world.send_to_ip("172.16.0.1", FrameKind.DATA, None, 100)  # no crash

    def test_subnet_collision_prefers_most_recent_ap(self, world):
        world.add_ap(channel=1, position=(0, 0), subnet="10.50.0")
        newer = world.add_ap(channel=6, position=(10, 0), subnet="10.50.0")
        assert world.ap_for_ip("10.50.0.10") is newer


class TestServerFlows:
    def test_duplicate_flow_id_rejected(self, world):
        world.add_ap(channel=1, position=(5, 0))
        world.server.open_download("flowX", "10.1.0.10")
        with pytest.raises(ValueError):
            world.server.open_download("flowX", "10.1.0.10")

    def test_close_flow_is_idempotent(self, world):
        world.add_ap(channel=1, position=(5, 0))
        world.server.open_download("flowY", "10.1.0.10")
        world.server.close_flow("flowY")
        world.server.close_flow("flowY")
        assert "flowY" not in world.server.flows

    def test_ack_for_unknown_flow_ignored(self, world):
        world.server.on_segment(
            TcpSegment("ghost", "c", "s", ack=100, is_ack=True)
        )  # no crash


class TestEndToEndPath:
    def test_segment_travels_server_to_client(self, sim, world):
        ap = make_lab_ap(world, channel=1, dhcp_delay=0.1)
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        iface.channel, iface.bssid = 1, ap.bssid
        ap.on_frame(
            Frame(kind=FrameKind.ASSOC_REQUEST, src=iface.mac, dst=ap.bssid, size=80, channel=1),
            -40.0,
        )
        from repro.sim.frames import DhcpMessage, DhcpType

        ap.dhcp.handle(DhcpMessage(DhcpType.DISCOVER, 3, iface.mac), lambda m, d: None)
        ip = ap.dhcp.lease_for(iface.mac)
        got = []
        iface.handlers[FrameKind.DATA] = lambda f, r: got.append(f.payload)
        world.send_to_ip(ip, FrameKind.DATA, TcpSegment("f", "s", ip, seq=0, payload_bytes=100), 152)
        sim.run(until=2.0)
        assert len(got) == 1
        assert got[0].payload_bytes == 100

    def test_uplink_ack_reaches_server_flow(self, sim, world):
        ap = make_lab_ap(world, channel=1)
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        iface.channel, iface.bssid = 1, ap.bssid
        ap.on_frame(
            Frame(kind=FrameKind.ASSOC_REQUEST, src=iface.mac, dst=ap.bssid, size=80, channel=1),
            -40.0,
        )
        sender = world.server.open_download("up1", "10.1.0.10")
        segment = TcpSegment("up1", "c", "s", ack=sender.p.mss, is_ack=True)
        iface.send(
            Frame(kind=FrameKind.DATA, src=iface.mac, dst=ap.bssid, size=90, channel=1,
                  payload=segment)
        )
        sim.run(until=2.0)
        assert sender.snd_una == sender.p.mss
