"""Telemetry determinism across process layouts.

The subsystem's transport promise (see ``repro.runner.pool``): snapshots
captured inside worker processes and merged in submission order are
bit-identical to a serial run, and a sharded fleet trial's per-vehicle
telemetry is byte-for-byte the single-process capture.  The hypothesis
properties pin the merge algebra itself — order-preserving chunking
(what ``split_shards`` does to work) never changes the merged result, and
replica snapshots deduplicate by key.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import OperationMode
from repro.experiments.common import run_town_trials
from repro.experiments.fleet import _run_fleet, run_sharded_trial
from repro.experiments.town_runs import spider_factory
from repro.obs.export import build_payload
from repro.obs.telemetry import Telemetry, merge_snapshots
from repro.runner import split_shards


def _spider():
    return spider_factory(OperationMode.single_channel(1), 7)


def _export_bytes(snapshots) -> bytes:
    """The on-disk artifact for a capture, as ``--telemetry`` writes it."""
    return json.dumps(build_payload(snapshots), sort_keys=True).encode()


# ----------------------------------------------------------------------
# Pool workers: serial vs parallel captures
# ----------------------------------------------------------------------
class TestWorkerDeterminism:
    def test_serial_and_parallel_telemetry_agree(self):
        serial = run_town_trials(
            _spider(), "det", seeds=(0, 1), duration_s=60.0,
            workers=1, telemetry=True,
        )
        parallel = run_town_trials(
            _spider(), "det", seeds=(0, 1), duration_s=60.0,
            workers=2, telemetry=True,
        )
        for s_trial, p_trial in zip(serial.trials, parallel.trials):
            # Wall-clock profiling legitimately differs across layouts;
            # the deterministic projection must not.
            assert (
                s_trial.telemetry.deterministic()
                == p_trial.telemetry.deterministic()
            )
        assert (
            serial.merged_telemetry().deterministic()
            == parallel.merged_telemetry().deterministic()
        )


# ----------------------------------------------------------------------
# Fleet shards: sharded capture byte-identical to one process
# ----------------------------------------------------------------------
class TestFleetShardDeterminism:
    def test_sharded_vehicle_telemetry_is_byte_identical(self):
        vehicles, seed, duration = 3, 0, 60.0
        unsharded = _run_fleet(
            vehicles, seed=seed, duration_s=duration,
            town_preset="amherst", telemetry=True,
        )
        sharded = run_sharded_trial(
            vehicles, seed=seed, duration_s=duration,
            workers=2, telemetry=True,
        )
        assert sharded.vehicle_telemetry is not None
        assert len(sharded.vehicle_telemetry) == vehicles
        assert sharded.vehicle_telemetry == unsharded.vehicle_telemetry
        # Per-vehicle slices carry no wall-clock instruments (those live
        # under the unscoped engine.* names), so the exported artifact —
        # the JSON payload — must match byte for byte: PR 4's acceptance
        # bar for sharded captures.
        assert _export_bytes(sharded.vehicle_telemetry) == _export_bytes(
            unsharded.vehicle_telemetry
        )
        for snap in sharded.vehicle_telemetry:
            assert snap.nondet_counters == () and snap.nondet_gauges == ()
        # The metric row itself stays bit-identical too.
        assert sharded == unsharded

    def test_vehicle_slices_are_disjoint_by_prefix(self):
        row = _run_fleet(
            2, seed=1, duration_s=45.0, town_preset="amherst", telemetry=True
        )
        veh0, veh1 = row.vehicle_telemetry
        names0 = {c[0] for c in veh0.counters}
        names1 = {c[0] for c in veh1.counters}
        assert names0 and all(n.startswith("veh0.") for n in names0)
        assert names1 and all(n.startswith("veh1.") for n in names1)


# ----------------------------------------------------------------------
# Merge algebra properties (alongside test_sharding's split properties)
# ----------------------------------------------------------------------
_NAMES = ("alpha", "beta", "gamma")
_BOUNDS = (1.0, 5.0)


@st.composite
def _snapshots(draw, keyed: bool):
    """A small synthetic capture; integer-valued so merges are exact."""
    tele = Telemetry(
        key=("syn", draw(st.integers(0, 2**30))) if keyed else ()
    )
    for name in draw(st.lists(st.sampled_from(_NAMES), max_size=4)):
        tele.counter("c." + name).inc(draw(st.integers(0, 100)))
    for name in draw(st.lists(st.sampled_from(_NAMES), max_size=2)):
        tele.gauge("g." + name).set(draw(st.integers(0, 100)))
    for value in draw(st.lists(st.integers(0, 10), max_size=3)):
        tele.histogram("h", bounds=_BOUNDS).observe(float(value))
    for name in draw(st.lists(st.sampled_from(_NAMES), max_size=2)):
        tele.begin_span("s." + name).end()
    return tele.snapshot()


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        snaps=st.lists(_snapshots(keyed=False), max_size=8),
        shards=st.integers(min_value=1, max_value=5),
    )
    def test_chunked_merge_equals_flat_merge(self, snaps, shards):
        """Merging per-shard then across shards == merging everything.

        This is exactly the shape of the pool's transport: each worker's
        results come back in submission order and ``split_shards`` chunks
        are order-preserving, so two-level merging must be a no-op.
        """
        flat = merge_snapshots(snaps, key=("final",))
        chunks = split_shards(snaps, shards)
        chunked = merge_snapshots(
            [
                merge_snapshots(chunk, key=("chunk", i))
                for i, chunk in enumerate(chunks)
            ],
            key=("final",),
        )
        assert chunked == flat

    @settings(max_examples=60, deadline=None)
    @given(
        snaps=st.lists(
            _snapshots(keyed=True), max_size=6,
            unique_by=lambda s: s.key,
        ),
        dup_index=st.integers(min_value=0, max_value=5),
    )
    def test_replicas_never_double_count(self, snaps, dup_index):
        """Re-merging a snapshot a shard already contributed is a no-op."""
        base = merge_snapshots(snaps, key=("final",))
        if not snaps:
            return
        replica = snaps[dup_index % len(snaps)]
        with_replica = merge_snapshots(
            snaps + [replica], key=("final",)
        )
        assert with_replica == base
