"""Unit and integration tests for the ``repro.obs`` telemetry subsystem.

Covers the instrument/span/event registry, the snapshot merge algebra,
JSON + Chrome ``trace_event`` export with its schema validator, and the
integration invariants the subsystem was built around: telemetry never
perturbs simulation results, the join-span breakdown reconciles with
``JoinLog`` totals, and the ``medium.drops`` counter matches the radio's
own loss count.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.schedule import OperationMode
from repro.experiments.common import run_town_trial
from repro.experiments.town_runs import spider_factory
from repro.obs.export import (
    build_payload,
    chrome_trace_events,
    collect_snapshots,
    load_payload,
    snapshot_from_jsonable,
    snapshot_to_jsonable,
    validate_payload,
    write_payload,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
)
from repro.sim.engine import Simulator


class _Clock:
    def __init__(self, now: float = 0.0):
        self.now = now


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates(self):
        tele = Telemetry()
        c = tele.counter("hits")
        c.inc()
        c.inc(2.5)
        assert tele.snapshot().counter_value("hits") == 3.5

    def test_counter_is_shared_by_name(self):
        tele = Telemetry()
        tele.counter("x").inc()
        tele.counter("x").inc()
        assert tele.snapshot().counter_value("x") == 2.0

    def test_gauge_tracks_high_water(self):
        tele = Telemetry()
        g = tele.gauge("depth")
        g.set(5.0)
        g.set(2.0)
        g.set_max(3.0)  # below high-water: no effect
        assert tele.snapshot().gauge_value("depth") == (2.0, 5.0)

    def test_histogram_buckets_and_overflow(self):
        tele = Telemetry()
        h = tele.histogram("lat", bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 99.0):
            h.observe(v)
        (name, bounds, counts, total, count), = tele.snapshot().histograms
        assert name == "lat" and bounds == (1.0, 2.0)
        assert counts == (2, 1, 1)  # <=1, <=2, overflow
        assert count == 4 and total == pytest.approx(102.0)

    def test_disabled_registry_returns_null_instruments(self):
        tele = Telemetry(enabled=False)
        c = tele.counter("hits")
        c.inc()  # must be a no-op, not an error
        assert tele.snapshot().counters == ()

    def test_null_telemetry_is_inert(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.scope("a") is NULL_TELEMETRY
        NULL_TELEMETRY.counter("x").inc()
        NULL_TELEMETRY.event("e", k=1)
        span = NULL_TELEMETRY.begin_span("s")
        span.end()
        assert NULL_TELEMETRY.snapshot() is None

    def test_simulator_defaults_to_null(self):
        assert isinstance(Simulator(seed=0).telemetry, NullTelemetry)


# ----------------------------------------------------------------------
# Spans and events
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_records_sim_time_and_attrs(self):
        tele = Telemetry()
        clock = _Clock(1.0)
        tele.bind_clock(clock)
        handle = tele.begin_span("join", ap="ap1")
        clock.now = 3.5
        handle.end("ok", cached=True)
        (span,) = tele.snapshot().spans
        assert span.name == "join" and span.status == "ok"
        assert (span.start_s, span.end_s) == (1.0, 3.5)
        assert span.duration_s == pytest.approx(2.5)
        assert span.attr("ap") == "ap1" and span.attr("cached") is True

    def test_end_is_idempotent(self):
        tele = Telemetry()
        handle = tele.begin_span("x")
        handle.end("ok")
        handle.end("failed")  # ignored
        (span,) = tele.snapshot().spans
        assert span.status == "ok"
        assert handle.ended

    def test_context_manager_status(self):
        tele = Telemetry()
        with tele.span("fine"):
            pass
        with pytest.raises(RuntimeError):
            with tele.span("broken"):
                raise RuntimeError("boom")
        statuses = {s.name: s.status for s in tele.snapshot().spans}
        assert statuses == {"fine": "ok", "broken": "error"}

    def test_open_spans_snapshot_as_open(self):
        tele = Telemetry()
        tele.begin_span("in_flight")
        (span,) = tele.snapshot().spans
        assert span.status == "open" and span.end_s is None
        assert span.duration_s == 0.0

    def test_spans_ordered_by_begin_sequence(self):
        tele = Telemetry()
        first = tele.begin_span("first")
        second = tele.begin_span("second")
        second.end()
        first.end()  # ends later but began earlier
        assert [s.name for s in tele.snapshot().spans] == ["first", "second"]

    def test_span_cap_counts_drops(self):
        tele = Telemetry()
        tele.max_spans = 2
        for i in range(4):
            tele.begin_span(f"s{i}").end()
        snap = tele.snapshot()
        assert len(snap.spans) == 2 and snap.spans_dropped == 2

    def test_events_record_time_and_attrs(self):
        tele = Telemetry()
        tele.bind_clock(_Clock(7.0))
        tele.event("fault", action="ap_down", target="ap3")
        (event,) = tele.snapshot().events
        assert event.name == "fault" and event.time_s == 7.0
        assert event.attr("action") == "ap_down"


class TestScopes:
    def test_scope_prefixes_everything(self):
        tele = Telemetry()
        scope = tele.scope("veh0")
        scope.counter("hits").inc()
        scope.begin_span("join").end()
        scope.event("e")
        snap = tele.snapshot()
        assert snap.counter_value("veh0.hits") == 1.0
        assert snap.spans[0].name == "veh0.join"
        assert snap.events[0].name == "veh0.e"

    def test_nested_scopes_concatenate(self):
        tele = Telemetry()
        tele.scope("veh0").scope("dhcp").counter("naks").inc()
        assert tele.snapshot().counter_value("veh0.dhcp.naks") == 1.0

    def test_scoped_slice_requires_trailing_dot(self):
        tele = Telemetry()
        tele.scope("veh1").counter("a").inc()
        tele.scope("veh10").counter("a").inc()
        snap = tele.snapshot()
        assert [c[0] for c in snap.scoped("veh1.").counters] == ["veh1.a"]
        assert [c[0] for c in snap.scoped("veh10.").counters] == ["veh10.a"]


# ----------------------------------------------------------------------
# Snapshots and the merge algebra
# ----------------------------------------------------------------------
def _snap(**kwargs) -> TelemetrySnapshot:
    tele = Telemetry(key=kwargs.pop("key", ()))
    for name, value in kwargs.pop("counters", {}).items():
        tele.counter(name).inc(value)
    for name, value in kwargs.pop("gauges", {}).items():
        tele.gauge(name).set(value)
    for name, values in kwargs.pop("hist", {}).items():
        h = tele.histogram(name, bounds=(1.0, 2.0))
        for v in values:
            h.observe(v)
    assert not kwargs
    return tele.snapshot()


class TestMerge:
    def test_counters_sum_gauges_max(self):
        merged = merge_snapshots(
            [
                _snap(counters={"a": 1.0, "b": 2.0}, gauges={"g": 5.0}),
                _snap(counters={"a": 3.0}, gauges={"g": 4.0}),
            ]
        )
        assert merged.counter_value("a") == 4.0
        assert merged.counter_value("b") == 2.0
        assert merged.gauge_value("g") == (5.0, 5.0)

    def test_histogram_buckets_sum(self):
        merged = merge_snapshots(
            [_snap(hist={"h": [0.5, 1.5]}), _snap(hist={"h": [9.0]})]
        )
        (name, _bounds, counts, total, count), = merged.histograms
        assert name == "h" and counts == (1, 1, 1)
        assert count == 3 and total == pytest.approx(11.0)

    def test_histogram_bound_mismatch_raises(self):
        a = Telemetry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b = Telemetry()
        b.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="mismatched bucket bounds"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_none_entries_skipped(self):
        merged = merge_snapshots([None, _snap(counters={"a": 1.0}), None])
        assert merged.counter_value("a") == 1.0

    def test_replicas_dedupe_by_key(self):
        replica = _snap(key=("fleet", 2, 0), counters={"a": 1.0})
        merged = merge_snapshots([replica, replica, replica])
        assert merged.counter_value("a") == 1.0

    def test_empty_keys_never_dedupe(self):
        merged = merge_snapshots([_snap(counters={"a": 1.0})] * 3)
        assert merged.counter_value("a") == 3.0

    def test_spans_concatenate_in_input_order(self):
        a, b = Telemetry(), Telemetry()
        a.begin_span("from_a").end()
        b.begin_span("from_b").end()
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert [s.name for s in merged.spans] == ["from_a", "from_b"]

    def test_deterministic_projection_drops_wall_metrics(self):
        tele = Telemetry()
        tele.counter("sim").inc()
        tele.counter("wall", deterministic=False).inc()
        tele.gauge("wall_g", deterministic=False).set(1.0)
        snap = tele.snapshot()
        assert snap.nondet_counters and snap.nondet_gauges
        det = snap.deterministic()
        assert det.nondet_counters == () and det.nondet_gauges == ()
        assert det.counter_value("sim") == 1.0

    def test_snapshot_is_picklable(self):
        tele = Telemetry(key=("t", 1))
        tele.counter("a").inc()
        tele.begin_span("s", ap="x").end()
        tele.event("e", k=1)
        snap = tele.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
class TestExport:
    def _rich_snapshot(self) -> TelemetrySnapshot:
        tele = Telemetry(key=("town", "t", 0))
        clock = _Clock(0.5)
        tele.bind_clock(clock)
        tele.counter("medium.drops").inc(3)
        tele.counter("engine.wall.x", deterministic=False).inc()
        tele.gauge("engine.heap_depth").set(9.0)
        tele.histogram("join.t", bounds=(1.0,)).observe(0.4)
        handle = tele.begin_span("veh.join", ap="a")
        clock.now = 1.25
        handle.end("ok")
        tele.event("fault", action="ap_down")
        tele.begin_span("veh.join")  # left open
        return tele.snapshot()

    def test_jsonable_round_trip(self):
        snap = self._rich_snapshot()
        assert snapshot_from_jsonable(snapshot_to_jsonable(snap)) == snap

    def test_chrome_trace_shape(self):
        trace = chrome_trace_events(self._rich_snapshot())
        spans = [t for t in trace if t["ph"] == "X"]
        instants = [t for t in trace if t["ph"] == "i"]
        assert len(spans) == 2 and len(instants) == 1
        closed = next(t for t in spans if t["dur"] > 0)
        assert closed["ts"] == pytest.approx(0.5e6)
        assert closed["dur"] == pytest.approx(0.75e6)
        assert closed["tid"] == "veh"  # component track
        assert [t["ts"] for t in trace] == sorted(t["ts"] for t in trace)

    def test_payload_validates_clean(self):
        payload = build_payload([self._rich_snapshot(), None])
        assert payload["snapshot_count"] == 1
        assert validate_payload(payload) == []

    def test_validator_catches_corruption(self):
        payload = build_payload([self._rich_snapshot()])
        payload["schema"] = "bogus/v9"
        payload["snapshot_count"] = 7
        payload["merged"]["histograms"]["join.t"]["counts"] = [1]
        problems = validate_payload(payload)
        assert any("schema" in p for p in problems)
        assert any("snapshot_count" in p for p in problems)
        assert any("join.t" in p for p in problems)

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "tele.json"
        written = write_payload(str(path), [self._rich_snapshot()])
        loaded = load_payload(str(path))
        assert loaded == written
        assert validate_payload(loaded) == []

    def test_collect_snapshots_walks_nested_results(self):
        snap = self._rich_snapshot()
        from dataclasses import dataclass, field
        from typing import List, Optional, Tuple

        @dataclass
        class Inner:
            telemetry: Optional[TelemetrySnapshot]

        @dataclass
        class Outer:
            trials: List[Inner] = field(default_factory=list)
            extra: Tuple = ()
            mapping: dict = field(default_factory=dict)

        outer = Outer(
            trials=[Inner(snap), Inner(None)],
            extra=(snap,),
            mapping={"k": [snap]},
        )
        assert collect_snapshots(outer) == [snap, snap, snap]
        assert collect_snapshots(42) == []


# ----------------------------------------------------------------------
# Integration with the simulator stack
# ----------------------------------------------------------------------
def _spider():
    return spider_factory(OperationMode.single_channel(1), 7)


class TestIntegration:
    @pytest.fixture(scope="class")
    def trial_pair(self):
        base = run_town_trial(_spider(), "obs", seed=3, duration_s=120.0)
        instrumented = run_town_trial(
            _spider(), "obs", seed=3, duration_s=120.0, telemetry=True
        )
        return base, instrumented

    def test_telemetry_never_perturbs_the_run(self, trial_pair):
        base, instrumented = trial_pair
        assert instrumented.events_processed == base.events_processed
        assert instrumented.average_throughput_kBps == base.average_throughput_kBps
        assert instrumented.connectivity_pct == base.connectivity_pct
        assert (
            instrumented.join_log.failure_breakdown()
            == base.join_log.failure_breakdown()
        )

    def test_join_spans_reconcile_with_join_log(self, trial_pair):
        _, instrumented = trial_pair
        snap = instrumented.telemetry
        breakdown = instrumented.join_log.failure_breakdown()
        joins = [s for s in snap.spans if s.name.endswith(".join")]
        assert len(joins) == breakdown["attempts"]
        by_outcome = {}
        for s in joins:
            outcome = s.status if s.status != "failed" else s.attr("stage")
            by_outcome[outcome] = by_outcome.get(outcome, 0) + 1
        assert by_outcome.get("ok", 0) == breakdown["verified"]
        assert by_outcome.get("assoc", 0) == breakdown["association_failed"]
        assert by_outcome.get("dhcp", 0) == breakdown["dhcp_failed"]
        assert by_outcome.get("verify", 0) == breakdown["verify_failed"]
        assert by_outcome.get("open", 0) + by_outcome.get("cancelled", 0) == (
            breakdown["incomplete"]
        )

    def test_engine_profile_matches_events_processed(self, trial_pair):
        _, instrumented = trial_pair
        snap = instrumented.telemetry
        assert snap.counter_value("engine.events") == instrumented.events_processed
        dispatched = snap.counter_value("engine.dispatched")
        per_kind = sum(
            v for name, v in snap.counters if name.startswith("engine.dispatch.")
        )
        # Per-kind counts cover every dispatched event; batched frame
        # delivery folds extra logical events on top of the dispatched ones.
        assert per_kind == dispatched
        assert dispatched <= snap.counter_value("engine.events")
        assert snap.counter_value("engine.wall.run_s") > 0.0
        assert snap.gauge_value("engine.heap_depth")[1] > 0

    def test_medium_drops_counter_matches_radio(self):
        tele = Telemetry(key=("drops",))
        sim = Simulator(seed=5, telemetry=tele)
        from repro.workloads.town import build_town

        town = build_town(sim, preset="amherst")
        mobility = town.make_vehicle_mobility(10.0)
        client = _spider()(sim, town.world, mobility)
        client.start()
        sim.run(until=60.0)
        snap = tele.snapshot()
        assert snap.counter_value("medium.drops") == town.world.medium.frames_lost
        assert snap.counter_value("medium.drops") > 0

    def test_merged_telemetry_counters_sum_across_trials(self):
        trials = [
            run_town_trial(
                _spider(), "m", seed=s, duration_s=60.0, telemetry=True
            )
            for s in (0, 1)
        ]
        merged = merge_snapshots([t.telemetry for t in trials])
        assert merged.counter_value("engine.events") == sum(
            t.events_processed for t in trials
        )
