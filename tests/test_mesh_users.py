"""Tests for the synthetic mesh-user demand trace."""

from __future__ import annotations

import pytest

from repro.analysis.stats import percentile
from repro.workloads.mesh_users import MeshUserConfig, generate_mesh_trace


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = generate_mesh_trace(seed=5)
        b = generate_mesh_trace(seed=5)
        assert len(a) == len(b)
        assert a.connection_durations() == b.connection_durations()

    def test_different_seeds_differ(self):
        a = generate_mesh_trace(seed=1)
        b = generate_mesh_trace(seed=2)
        assert a.connection_durations() != b.connection_durations()

    def test_flow_count_scales_with_users(self):
        small = generate_mesh_trace(MeshUserConfig(users=20), seed=0)
        large = generate_mesh_trace(MeshUserConfig(users=200), seed=0)
        assert len(large) > len(small)

    def test_durations_positive_and_bounded(self):
        trace = generate_mesh_trace(seed=0)
        durations = trace.connection_durations()
        assert all(0.0 < d <= trace.config.max_duration_s for d in durations)

    def test_gaps_positive(self):
        trace = generate_mesh_trace(seed=0)
        assert all(g > 0 for g in trace.inter_connection_gaps())

    def test_flows_sorted_by_start(self):
        trace = generate_mesh_trace(seed=0)
        starts = [f.start_s for f in trace.flows]
        assert starts == sorted(starts)


class TestDistributionShape:
    def test_http_fraction_near_configured(self):
        trace = generate_mesh_trace(MeshUserConfig(users=200), seed=0)
        assert abs(trace.http_fraction() - 0.68) < 0.05

    def test_heavy_tail_present(self):
        trace = generate_mesh_trace(MeshUserConfig(users=200), seed=0)
        durations = trace.connection_durations()
        p50 = percentile(durations, 50)
        p99 = percentile(durations, 99)
        assert p99 > 8.0 * p50  # long tail dominates

    def test_most_flows_are_short(self):
        """The Fig. 16 property: the bulk of user flows finish quickly."""
        trace = generate_mesh_trace(MeshUserConfig(users=200), seed=0)
        durations = trace.connection_durations()
        short = sum(1 for d in durations if d <= 20.0)
        assert short / len(durations) > 0.7

    def test_gap_distribution_has_minutes_scale_tail(self):
        trace = generate_mesh_trace(MeshUserConfig(users=200), seed=0)
        gaps = trace.inter_connection_gaps()
        assert percentile(gaps, 90) > 30.0

    def test_http_flows_shorter_than_bulk_on_average(self):
        trace = generate_mesh_trace(MeshUserConfig(users=300), seed=1)
        http = [f.duration_s for f in trace.flows if f.is_http]
        bulk = [f.duration_s for f in trace.flows if not f.is_http]
        assert sum(http) / len(http) < sum(bulk) / len(bulk)
