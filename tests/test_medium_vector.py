"""Unit tests for the vectorized delivery index (``repro.sim.medium_vec``).

PR 6 added an array-backed candidate prefilter in front of the medium's
delivery scan.  These tests pin its contract at the unit level: the
environment toggle that selects the implementation, the graceful scalar
fallback (and its obs counter) when numpy is missing, the constructor's
non-finite parameter validation, and — most importantly — byte-identical
delivery traces between the scalar and vectorized paths across every
candidate-selection regime (static bins, cached broadcast tables, mobile
snapshots, the unbounded-mobility escape, and AP fail/recover cycles).
Whole-trial A/B determinism lives in ``tests/test_vector_determinism``.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.telemetry import Telemetry
from repro.sim import medium_vec, radio
from repro.sim.engine import Simulator
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.medium_vec import SNAPSHOT_MIN_MOBILES, argsort_scan, make_index
from repro.sim.mobility import (
    LinearMobility,
    LoopMobility,
    StaticPosition,
    VariableSpeedLoopMobility,
)
from repro.sim.radio import (
    VECTOR_ENV,
    Medium,
    _vector_enabled_from_env,
)


class RecordingStation:
    """Mobile station that records what arrives and when."""

    max_speed_mps = 0.0

    def __init__(self, station_id, x=0.0, y=0.0, channel=1):
        self.station_id = station_id
        self.x, self.y = x, y
        self.channel = channel
        self.sim = None
        self.received = []

    def position(self):
        return (self.x, self.y)

    def tuned_channel(self):
        return self.channel

    def accepts(self, dst):
        return dst == self.station_id

    def on_frame(self, frame, rssi):
        self.received.append((frame.src, frame.kind, frame.size, rssi, self.sim.now))


class StaticStation(RecordingStation):
    """Static station (binned like an AP; accepts only its own id)."""

    is_static = True
    accepts_only_own_id = True


class MovingStation(RecordingStation):
    """Mobile station drifting along x at a declared speed bound."""

    def __init__(self, station_id, x=0.0, y=0.0, channel=1, speed_mps=5.0):
        super().__init__(station_id, x=x, y=y, channel=channel)
        self.speed_mps = speed_mps
        self.max_speed_mps = speed_mps

    def position(self):
        return (self.x + self.speed_mps * self.sim.now, self.y)


class UnboundedStation(RecordingStation):
    """Mobile station with no usable speed bound (snapshot escape hatch)."""

    max_speed_mps = None


def mgmt_frame(src, dst, channel=1, size=80):
    return Frame(kind=FrameKind.BEACON, src=src, dst=dst, size=size, channel=channel)


def data_frame(src, dst, channel=1, size=200):
    return Frame(kind=FrameKind.DATA, src=src, dst=dst, size=size, channel=channel)


def trace_of(stations):
    return {s.station_id: s.received for s in stations}


class TestEnvironmentToggle:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(VECTOR_ENV, raising=False)
        assert _vector_enabled_from_env()
        assert Medium(Simulator(seed=0)).vector_delivery

    @pytest.mark.parametrize("value", ["0", "off", "false", "no"])
    def test_disable_values(self, monkeypatch, value):
        monkeypatch.setenv(VECTOR_ENV, value)
        assert not _vector_enabled_from_env()
        assert not Medium(Simulator(seed=0)).vector_delivery

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(VECTOR_ENV, "0")
        assert Medium(Simulator(seed=0), vector_delivery=True).vector_delivery


class TestNumpyFallback:
    def test_make_index_returns_none_without_numpy(self, monkeypatch):
        monkeypatch.setattr(medium_vec, "_np", None)
        assert make_index(Medium(Simulator(seed=0), vector_delivery=False)) is None

    def test_medium_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setattr(medium_vec, "_np", None)
        medium = Medium(Simulator(seed=0), vector_delivery=True)
        assert not medium.vector_delivery
        assert medium._vec is None

    def test_fallback_increments_obs_counter(self, monkeypatch):
        monkeypatch.setattr(medium_vec, "_np", None)
        tele = Telemetry(enabled=True)
        Medium(Simulator(seed=0, telemetry=tele), vector_delivery=True)
        assert tele.counter("medium.vector_fallbacks").value == 1

    def test_counter_stays_zero_when_vector_engages(self):
        pytest.importorskip("numpy")
        tele = Telemetry(enabled=True)
        medium = Medium(Simulator(seed=0, telemetry=tele), vector_delivery=True)
        assert medium.vector_delivery
        assert tele.counter("medium.vector_fallbacks").value == 0

    def test_counter_is_nondeterministic(self):
        """The fallback count reflects installed packages, not the seed, so
        it must stay out of the deterministic telemetry projection."""
        tele = Telemetry(enabled=True)
        Medium(Simulator(seed=0, telemetry=tele), vector_delivery=False)
        names = [name for name, _ in tele.snapshot().counters]
        assert "medium.vector_fallbacks" not in names

    def test_argsort_scan_returns_none_without_numpy(self, monkeypatch):
        monkeypatch.setattr(medium_vec, "_np", None)
        assert argsort_scan([1.0, 2.0], ["a", "b"]) is None


class TestConstructorValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_loss_rate(self, bad):
        with pytest.raises(ValueError, match="loss_rate"):
            Medium(Simulator(seed=0), loss_rate=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -1.0])
    def test_rejects_bad_data_rate(self, bad):
        with pytest.raises(ValueError, match="data_rate_bps"):
            Medium(Simulator(seed=0), data_rate_bps=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -5.0])
    def test_rejects_bad_range(self, bad):
        with pytest.raises(ValueError, match="range_m"):
            Medium(Simulator(seed=0), range_m=bad)


pytestmark_numpy = pytest.mark.skipif(
    medium_vec._np is None, reason="vector path requires numpy"
)


@pytestmark_numpy
class TestVectorScalarEquivalence:
    """Scalar and vectorized delivery must be byte-identical.

    ``VECTOR_MIN_STATIONS`` is pinned to 0 so the vector path engages on
    these small, hand-auditable worlds; the ``loss_rate`` is non-zero in
    most cases so any divergence in candidate *order* (not just the set)
    desynchronizes the loss stream and shows up as a trace mismatch.
    """

    @pytest.fixture(autouse=True)
    def _engage_vector_everywhere(self, monkeypatch):
        monkeypatch.setattr(radio, "VECTOR_MIN_STATIONS", 0)

    def _run(self, vector, populate, drive, seed=7, loss_rate=0.3):
        sim = Simulator(seed=seed)
        medium = Medium(sim, loss_rate=loss_rate, vector_delivery=vector)
        stations = populate(sim, medium)
        drive(sim, medium, stations)
        sim.run(until=5.0)
        return trace_of(stations), medium.frames_delivered, medium.frames_lost

    def _assert_identical(self, populate, drive, **kwargs):
        scalar = self._run(False, populate, drive, **kwargs)
        vector = self._run(True, populate, drive, **kwargs)
        assert scalar == vector
        return vector

    def test_static_broadcast_and_unicast(self):
        def populate(sim, medium):
            stations = [
                StaticStation(f"ap{i}", x=20.0 * i, channel=1) for i in range(10)
            ]
            sender = RecordingStation("veh", x=50.0)
            for s in stations + [sender]:
                s.sim = sim
                medium.register(s)
            return stations + [sender]

        def drive(sim, medium, stations):
            sender = stations[-1]
            medium.transmit(sender, mgmt_frame("veh", BROADCAST))
            medium.transmit(sender, data_frame("veh", "ap3"))
            medium.transmit(sender, data_frame("veh", "ap9"))  # out of range

        trace, delivered, _lost = self._assert_identical(populate, drive)
        assert delivered or any(trace.values())  # the world is not degenerate

    def test_broadcast_from_static_uses_cached_table(self):
        """Repeat beacons from the same AP hit the cached receiver table;
        the cache must not change what arrives or when."""

        def populate(sim, medium):
            aps = [StaticStation(f"ap{i}", x=15.0 * i) for i in range(9)]
            for ap in aps:
                ap.sim = sim
                medium.register(ap)
            return aps

        def drive(sim, medium, stations):
            for _ in range(4):
                medium.transmit(stations[2], mgmt_frame("ap2", BROADCAST))

        trace, _d, _l = self._assert_identical(populate, drive)
        assert any(trace.values())

    def test_mixed_static_mobile_registration_order(self):
        """Interleaved static/mobile registration: survivors must merge in
        registration-sequence order so loss draws line up."""

        def populate(sim, medium):
            stations = []
            for i in range(12):
                cls = StaticStation if i % 2 == 0 else RecordingStation
                s = cls(f"s{i}", x=8.0 * i)
                s.sim = sim
                medium.register(s)
                stations.append(s)
            return stations

        def drive(sim, medium, stations):
            for _ in range(6):
                medium.transmit(stations[5], mgmt_frame("s5", BROADCAST))

        self._assert_identical(populate, drive)

    def test_ap_fail_recover_cycle(self):
        """Unregister + re-register (AP fault injection) keeps the two
        paths in lockstep — re-registration assigns a fresh sequence
        number, which both paths must honour."""

        def populate(sim, medium):
            aps = [StaticStation(f"ap{i}", x=10.0 * i) for i in range(10)]
            veh = RecordingStation("veh", x=40.0)
            for s in aps + [veh]:
                s.sim = sim
                medium.register(s)

            def fail_recover():
                medium.unregister("ap4")
                sim.schedule(1.0, lambda: (medium.register(aps[4])))

            sim.schedule(1.0, fail_recover)
            return aps + [veh]

        def drive(sim, medium, stations):
            veh = stations[-1]
            for k in range(8):
                sim.schedule(0.5 * k, medium.transmit, veh, mgmt_frame("veh", BROADCAST))

        self._assert_identical(populate, drive)

    def test_snapshot_path_with_moving_fleet(self):
        """More than ``SNAPSHOT_MIN_MOBILES`` moving stations engage the
        snapshot + per-sender candidate cache; drift across the slack
        budget forces rebuilds mid-run."""

        def populate(sim, medium):
            fleet = [
                MovingStation(f"veh{i}", x=30.0 * i, speed_mps=10.0)
                for i in range(SNAPSHOT_MIN_MOBILES + 4)
            ]
            for s in fleet:
                s.sim = sim
                medium.register(s)
            return fleet

        def drive(sim, medium, stations):
            for k in range(10):
                sender = stations[k % len(stations)]
                sim.schedule(
                    0.45 * k,
                    lambda s=sender: medium.transmit(
                        s, mgmt_frame(s.station_id, BROADCAST)
                    ),
                )

        trace, delivered, _lost = self._assert_identical(populate, drive)
        assert delivered > 0

    def test_unbounded_mobile_disables_snapshot(self):
        """One station without a speed bound poisons the snapshot for its
        membership generation; the exact scan must still match scalar."""

        def populate(sim, medium):
            fleet = [
                MovingStation(f"veh{i}", x=25.0 * i, speed_mps=8.0)
                for i in range(SNAPSHOT_MIN_MOBILES + 2)
            ]
            fleet.append(UnboundedStation("ghost", x=10.0))
            for s in fleet:
                s.sim = sim
                medium.register(s)
            return fleet

        def drive(sim, medium, stations):
            for k in range(6):
                sim.schedule(
                    0.5 * k,
                    lambda s=stations[0]: medium.transmit(
                        s, mgmt_frame(s.station_id, BROADCAST)
                    ),
                )

        self._assert_identical(populate, drive)

    def test_unicast_between_mobiles(self):
        def populate(sim, medium):
            fleet = [
                MovingStation(f"veh{i}", x=12.0 * i, speed_mps=3.0)
                for i in range(SNAPSHOT_MIN_MOBILES + 2)
            ]
            for s in fleet:
                s.sim = sim
                medium.register(s)
            return fleet

        def drive(sim, medium, stations):
            for k in range(5):
                sim.schedule(
                    0.4 * k,
                    lambda: medium.transmit(stations[0], data_frame("veh0", "veh3")),
                )

        self._assert_identical(populate, drive)

    def test_cross_channel_isolation(self):
        def populate(sim, medium):
            stations = []
            for chan in (1, 6, 11):
                for i in range(4):
                    s = StaticStation(f"ap{chan}_{i}", x=20.0 * i, channel=chan)
                    s.sim = sim
                    medium.register(s)
                    stations.append(s)
            return stations

        def drive(sim, medium, stations):
            medium.transmit(stations[0], mgmt_frame("ap1_0", BROADCAST, channel=1))
            medium.transmit(stations[4], mgmt_frame("ap6_0", BROADCAST, channel=6))

        trace, _d, _l = self._assert_identical(populate, drive, loss_rate=0.0)
        # No cross-channel leakage: receivers only hear their own channel.
        for sid, received in trace.items():
            chan = sid.split("_")[0]
            assert all(src.startswith(chan) for src, *_ in received)

    def test_exact_range_boundary(self):
        """A receiver exactly at ``range_m`` is in range on both paths
        (the prefilter margin must not flip the boundary case)."""

        def populate(sim, medium):
            aps = [StaticStation(f"ap{i}", x=100.0 + i * 300.0) for i in range(8)]
            edge = StaticStation("edge", x=100.0)  # exactly range_m from sender
            veh = RecordingStation("veh", x=0.0)
            for s in aps + [edge, veh]:
                s.sim = sim
                medium.register(s)
            return aps + [edge, veh]

        def drive(sim, medium, stations):
            medium.transmit(stations[-1], mgmt_frame("veh", BROADCAST))

        trace, _d, _l = self._assert_identical(populate, drive, loss_rate=0.0)
        assert len(trace["edge"]) == 1


@pytestmark_numpy
class TestArgsortScan:
    def test_matches_python_tuple_sort(self):
        rng_entries = [
            (-50.0 - (i * 7 % 13), f"bssid{i:03d}") for i in range(80)
        ]
        rssis = [r for r, _ in rng_entries]
        bssids = [b for _, b in rng_entries]
        order = argsort_scan(rssis, bssids)
        vec_sorted = [(rssis[i], bssids[i]) for i in order]
        py_sorted = sorted(zip(rssis, bssids), key=lambda e: (-e[0], e[1]))
        assert vec_sorted == py_sorted

    def test_bssid_tie_break(self):
        rssis = [-60.0] * 5
        bssids = ["e", "a", "c", "b", "d"]
        order = argsort_scan(rssis, bssids)
        assert [bssids[i] for i in order] == ["a", "b", "c", "d", "e"]


class TestMobilityBounds:
    """The snapshot drift allowance leans on ``max_speed_mps`` being a
    true Lipschitz bound; pin the declared values and the batch API."""

    def test_declared_bounds(self):
        assert StaticPosition(1.0).max_speed_mps == 0.0
        assert LinearMobility(13.0).max_speed_mps == 13.0
        assert LoopMobility(9.0, loop_length_m=500.0).max_speed_mps == 9.0
        vs = VariableSpeedLoopMobility(
            [(5.0, 4.0), (5.0, 11.0)], loop_length_m=500.0
        )
        assert vs.max_speed_mps == 11.0

    @pytest.mark.parametrize(
        "model",
        [
            StaticPosition(3.0, y=4.0),
            LinearMobility(10.0, start_x=5.0),
            LoopMobility(8.0, loop_length_m=400.0, start_arc_m=30.0),
            VariableSpeedLoopMobility([(2.0, 3.0), (3.0, 9.0)], loop_length_m=400.0),
        ],
    )
    def test_positions_at_matches_scalar(self, model):
        ts = [0.0, 0.5, 1.25, 4.0, 9.75]
        assert model.positions_at(ts) == [model.position_at(t) for t in ts]

    @pytest.mark.parametrize(
        "model",
        [
            LinearMobility(10.0),
            LoopMobility(8.0, loop_length_m=400.0),
            VariableSpeedLoopMobility([(2.0, 3.0), (3.0, 9.0)], loop_length_m=400.0),
        ],
    )
    def test_bound_is_lipschitz(self, model):
        ts = [0.1 * k for k in range(100)]
        positions = model.positions_at(ts)
        for (x0, y0), (x1, y1), t0, t1 in zip(
            positions, positions[1:], ts, ts[1:]
        ):
            moved = math.hypot(x1 - x0, y1 - y0)
            assert moved <= model.max_speed_mps * (t1 - t0) + 1e-9
