"""The parallel trial runner: pool mechanics and determinism guarantees.

The load-bearing property is at the bottom: a parallel ``run_town_trials``
(workers=4) must produce **bit-identical** metrics to the serial path for
the same seeds, because every trial rebuilds its simulator from its spec
alone and results merge in submission order.
"""

from __future__ import annotations

import os
import pickle
from unittest import mock

import pytest

from repro.core.schedule import OperationMode
from repro.experiments.common import (
    TownTrialSpec,
    run_town_trial_specs,
    run_town_trials,
)
from repro.experiments.town_runs import spider_factory, stock_factory
from repro.runner import TrialJob, resolve_workers, run_jobs
from repro.runner.pool import WORKERS_ENV

# Trials in this module are deliberately short; determinism does not need
# long drives, only identical event sequences.
SHORT_TRIAL_S = 45.0


def _double(x):
    return 2 * x


def _fail(x):
    raise ValueError(f"boom {x}")


class TestResolveWorkers:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_used_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_garbage_env_falls_back_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.warns(UserWarning):
            assert resolve_workers(None) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestRunJobs:
    def test_empty(self):
        assert run_jobs([], workers=4) == []

    def test_results_in_submission_order(self):
        jobs = [TrialJob(_double, (i,)) for i in range(20)]
        assert run_jobs(jobs, workers=4) == [2 * i for i in range(20)]

    def test_serial_matches_parallel(self):
        jobs = [TrialJob(_double, (i,)) for i in range(8)]
        assert run_jobs(jobs, workers=1) == run_jobs(jobs, workers=4)

    def test_unpicklable_jobs_fall_back_to_serial(self):
        jobs = [TrialJob(lambda x: x + 1, (i,)) for i in range(3)]
        with pytest.warns(UserWarning, match="running serially"):
            assert run_jobs(jobs, workers=2) == [1, 2, 3]

    def test_serial_path_never_spawns_processes(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        with mock.patch("repro.runner.pool.ProcessPoolExecutor") as executor:
            run_jobs([TrialJob(_double, (3,))], workers=1)
            run_jobs([TrialJob(_double, (3,))], workers=None)
        executor.assert_not_called()

    def test_single_job_bypasses_pool(self):
        with mock.patch("repro.runner.pool.ProcessPoolExecutor") as executor:
            assert run_jobs([TrialJob(_double, (4,))], workers=8) == [8]
        executor.assert_not_called()

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            run_jobs([TrialJob(_fail, (1,))], workers=2)

    def test_kwargs_and_tag(self):
        job = TrialJob(_double, kwargs={"x": 5}, tag=("label", 0))
        assert job.run() == 10
        assert pickle.loads(pickle.dumps(job)).tag == ("label", 0)


class TestSpecPicklability:
    def test_factories_and_specs_pickle(self):
        for factory in (
            spider_factory(OperationMode.single_channel(1), 7),
            spider_factory(
                OperationMode.equal_split((1, 6, 11), 0.6),
                1,
                lock_channel_when_connected=True,
            ),
            stock_factory(),
        ):
            spec = TownTrialSpec(factory=factory, label="x", seed=1)
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec


def _assert_trials_identical(a, b):
    assert a.label == b.label
    assert a.seed == b.seed
    assert a.duration_s == b.duration_s
    assert a.average_throughput_kBps == b.average_throughput_kBps
    assert a.connectivity_pct == b.connectivity_pct
    assert a.connection_durations_s == b.connection_durations_s
    assert a.disruption_durations_s == b.disruption_durations_s
    assert a.instantaneous_kBps == b.instantaneous_kBps
    assert a.join_log.attempts == b.join_log.attempts
    assert a.links_established == b.links_established
    assert a.events_processed == b.events_processed


class TestParallelDeterminism:
    def test_parallel_town_trials_bit_identical_to_serial(self):
        factory = spider_factory(OperationMode.equal_split((1, 6), 0.4), 7)
        serial = run_town_trials(
            factory, "det", seeds=(0, 1, 2, 3), duration_s=SHORT_TRIAL_S, workers=1
        )
        parallel = run_town_trials(
            factory, "det", seeds=(0, 1, 2, 3), duration_s=SHORT_TRIAL_S, workers=4
        )
        assert len(serial.trials) == len(parallel.trials) == 4
        for s_trial, p_trial in zip(serial.trials, parallel.trials):
            _assert_trials_identical(s_trial, p_trial)

    def test_spec_batch_preserves_order(self):
        specs = [
            TownTrialSpec(factory=stock_factory(), label=f"l{i}", seed=i,
                          duration_s=20.0)
            for i in (3, 1, 2)
        ]
        trials = run_town_trial_specs(specs, workers=3)
        assert [(t.label, t.seed) for t in trials] == [
            ("l3", 3), ("l1", 1), ("l2", 2)
        ]

    def test_configuration_suite_parallel_matches_serial(self):
        from repro.experiments.town_runs import (
            CONFIG_CH1_SINGLE_AP,
            CONFIG_STOCK,
            run_configuration_suite,
        )

        labels = [CONFIG_CH1_SINGLE_AP, CONFIG_STOCK]
        kwargs = dict(
            seeds=(0, 1),
            duration_s=SHORT_TRIAL_S,
            include_cambridge=False,
            labels=labels,
        )
        serial = run_configuration_suite(workers=1, **kwargs)
        parallel = run_configuration_suite(workers=4, **kwargs)
        assert serial.labels() == parallel.labels() == labels
        for label in labels:
            for s_trial, p_trial in zip(
                serial[label].trials, parallel[label].trials
            ):
                _assert_trials_identical(s_trial, p_trial)

    def test_timeout_grid_parallel_matches_serial(self):
        from repro.experiments.timeout_grid import run_grid

        labels = ["ch1, ll=100ms, dhcp=200ms, 7if"]
        serial = run_grid(
            labels=labels, seeds=(0, 1), duration_s=SHORT_TRIAL_S, workers=1
        )
        parallel = run_grid(
            labels=labels, seeds=(0, 1), duration_s=SHORT_TRIAL_S, workers=4
        )
        for label in labels:
            for s_trial, p_trial in zip(
                serial[label].trials, parallel[label].trials
            ):
                _assert_trials_identical(s_trial, p_trial)

    def test_fleet_parallel_matches_serial(self):
        from repro.experiments.fleet import run as run_fleet

        kwargs = dict(fleet_sizes=(1, 2), seeds=(0,), duration_s=SHORT_TRIAL_S)
        serial = run_fleet(workers=1, **kwargs)
        parallel = run_fleet(workers=4, **kwargs)
        assert [
            (r.vehicles, r.per_vehicle_kBps, r.aggregate_kBps,
             r.mean_connectivity_pct)
            for r in serial.rows
        ] == [
            (r.vehicles, r.per_vehicle_kBps, r.aggregate_kBps,
             r.mean_connectivity_pct)
            for r in parallel.rows
        ]

    def test_speed_sweep_parallel_matches_serial(self):
        from repro.experiments.speed_sweep import run as run_sweep

        kwargs = dict(speeds_mps=(6.0, 12.0), seeds=(0,), duration_s=SHORT_TRIAL_S)
        serial = run_sweep(workers=1, **kwargs)
        parallel = run_sweep(workers=4, **kwargs)
        assert serial.series == parallel.series
        assert serial.speeds_mps == parallel.speeds_mps
