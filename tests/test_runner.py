"""The parallel trial runner: pool mechanics and determinism guarantees.

The load-bearing property is at the bottom: a parallel ``run_town_trials``
(workers=4) must produce **bit-identical** metrics to the serial path for
the same seeds, because every trial rebuilds its simulator from its spec
alone and results merge in submission order.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from unittest import mock

import pytest

from repro.core.schedule import OperationMode
from repro.experiments.common import (
    TownTrialSpec,
    run_town_trial_envelopes,
    run_town_trial_specs,
    run_town_trials,
    salvage_town_trials,
)
from repro.experiments.town_runs import spider_factory, stock_factory
from repro.runner import (
    TrialError,
    TrialJob,
    TrialResult,
    resolve_trial_retries,
    resolve_trial_timeout,
    resolve_workers,
    run_jobs,
    unwrap_all,
)
from repro.runner.pool import (
    RETRIES_ENV,
    TIMEOUT_ENV,
    WORKERS_ENV,
    TrialInterrupted,
)

# Trials in this module are deliberately short; determinism does not need
# long drives, only identical event sequences.
SHORT_TRIAL_S = 45.0


def _double(x):
    return 2 * x


def _fail(x):
    raise ValueError(f"boom {x}")


def _crash(x):
    os._exit(23)  # hard worker death: no exception crosses the pipe


def _hang(x):
    time.sleep(600.0)


def _flaky(marker_path):
    """Fails on the first call, succeeds once the marker file exists."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("x")
        raise RuntimeError("transient failure")
    return "recovered"


def _values(results):
    assert all(isinstance(r, TrialResult) for r in results)
    return [r.value for r in results]


class TestResolveWorkers:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_used_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_garbage_env_falls_back_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.warns(UserWarning):
            assert resolve_workers(None) == 1

    def test_negative_clamped_with_warning(self):
        with pytest.warns(UserWarning, match="negative"):
            assert resolve_workers(-2) == 1

    def test_absurdly_large_clamped_with_warning(self):
        ceiling = max(32, 4 * (os.cpu_count() or 1))
        with pytest.warns(UserWarning, match="clamping"):
            assert resolve_workers(10**6) == ceiling

    def test_negative_env_clamped(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "-4")
        with pytest.warns(UserWarning, match="negative"):
            assert resolve_workers(None) == 1


class TestResolveTrialKnobs:
    def test_timeout_defaults_off(self, monkeypatch):
        monkeypatch.delenv(TIMEOUT_ENV, raising=False)
        assert resolve_trial_timeout(None) is None

    def test_timeout_env(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        assert resolve_trial_timeout(None) == 2.5

    def test_timeout_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "99")
        assert resolve_trial_timeout(1.5) == 1.5

    def test_timeout_zero_disables(self):
        assert resolve_trial_timeout(0) is None

    def test_timeout_garbage_env_warns_and_disables(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "soon")
        with pytest.warns(UserWarning):
            assert resolve_trial_timeout(None) is None

    def test_timeout_negative_warns_and_disables(self):
        with pytest.warns(UserWarning, match="negative"):
            assert resolve_trial_timeout(-3.0) is None

    def test_retries_default_zero(self, monkeypatch):
        monkeypatch.delenv(RETRIES_ENV, raising=False)
        assert resolve_trial_retries(None) == 0

    def test_retries_env(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "2")
        assert resolve_trial_retries(None) == 2

    def test_retries_garbage_env_warns(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "many")
        with pytest.warns(UserWarning):
            assert resolve_trial_retries(None) == 0

    def test_retries_negative_clamped(self):
        with pytest.warns(UserWarning, match="negative"):
            assert resolve_trial_retries(-1) == 0


class TestRunJobs:
    def test_empty(self):
        assert run_jobs([], workers=4) == []

    def test_results_in_submission_order(self):
        jobs = [TrialJob(_double, (i,)) for i in range(20)]
        assert _values(run_jobs(jobs, workers=4)) == [2 * i for i in range(20)]

    def test_serial_matches_parallel(self):
        jobs = [TrialJob(_double, (i,)) for i in range(8)]
        assert run_jobs(jobs, workers=1) == run_jobs(jobs, workers=4)

    def test_unpicklable_jobs_fall_back_to_serial(self):
        jobs = [TrialJob(lambda x: x + 1, (i,)) for i in range(3)]
        with pytest.warns(UserWarning, match="running serially"):
            assert _values(run_jobs(jobs, workers=2)) == [1, 2, 3]

    def test_serial_path_never_spawns_processes(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        with mock.patch("repro.runner.pool.ProcessPoolExecutor") as executor:
            run_jobs([TrialJob(_double, (3,))], workers=1)
            run_jobs([TrialJob(_double, (3,))], workers=None)
        executor.assert_not_called()

    def test_single_job_bypasses_pool(self):
        with mock.patch("repro.runner.pool.ProcessPoolExecutor") as executor:
            assert _values(run_jobs([TrialJob(_double, (4,))], workers=8)) == [8]
        executor.assert_not_called()

    def test_kwargs_and_tag(self):
        job = TrialJob(_double, kwargs={"x": 5}, tag=("label", 0))
        assert job.run() == 10
        assert pickle.loads(pickle.dumps(job)).tag == ("label", 0)


class TestFaultyJobs:
    """One bad trial must never take the suite (or its siblings) down."""

    def test_raising_job_enveloped_not_raised(self):
        jobs = [TrialJob(_fail, (1,), tag="bad"), TrialJob(_double, (3,), tag="good")]
        bad, good = run_jobs(jobs, workers=2)
        assert not bad.ok and "boom 1" in bad.error and bad.tag == "bad"
        assert good.ok and good.value == 6
        with pytest.raises(TrialError, match="boom 1"):
            bad.unwrap()
        with pytest.raises(TrialError, match="1/2 trials failed"):
            unwrap_all([bad, good])

    def test_raising_job_enveloped_serially_too(self):
        bad, good = run_jobs(
            [TrialJob(_fail, (7,)), TrialJob(_double, (7,))], workers=1
        )
        assert not bad.ok and "boom 7" in bad.error
        assert good.ok and good.value == 14

    def test_crashed_worker_blamed_precisely(self):
        # FIFO scheduling means the executor cannot say whose job killed the
        # pool; the isolation re-runs must pin it on the crasher alone.
        jobs = [TrialJob(_double, (i,), tag=i) for i in range(4)]
        jobs.insert(2, TrialJob(_crash, (0,), tag="crasher"))
        results = run_jobs(jobs, workers=2)
        assert [r.ok for r in results] == [True, True, False, True, True]
        crashed = results[2]
        assert "died" in crashed.error and crashed.tag == "crasher"
        assert [r.value for r in results if r.ok] == [0, 2, 4, 6]

    def test_hung_job_times_out_siblings_survive(self):
        jobs = [
            TrialJob(_double, (1,), tag="a"),
            TrialJob(_hang, (0,), tag="hung"),
            TrialJob(_double, (2,), tag="b"),
        ]
        results = run_jobs(jobs, workers=2, timeout_s=3.0)
        assert [r.ok for r in results] == [True, False, True]
        assert "timed out" in results[1].error
        assert _values([results[0], results[2]]) == [2, 4]

    def test_retry_recovers_flaky_job_serial(self, tmp_path):
        marker = str(tmp_path / "marker")
        [result] = run_jobs([TrialJob(_flaky, (marker,))], workers=1, retries=1)
        assert result.ok and result.value == "recovered"
        assert result.attempts == 2

    def test_retry_recovers_flaky_job_parallel(self, tmp_path):
        marker = str(tmp_path / "marker")
        jobs = [TrialJob(_flaky, (marker,)), TrialJob(_double, (5,))]
        flaky, good = run_jobs(jobs, workers=2, retries=2)
        assert flaky.ok and flaky.value == "recovered"
        assert flaky.attempts == 2
        assert good.ok and good.value == 10

    def test_retries_exhausted_reports_attempts(self):
        [result] = run_jobs([TrialJob(_fail, (9,))], workers=1, retries=2)
        assert not result.ok
        assert result.attempts == 3
        assert "boom 9" in result.error


class TestSpecPicklability:
    def test_factories_and_specs_pickle(self):
        for factory in (
            spider_factory(OperationMode.single_channel(1), 7),
            spider_factory(
                OperationMode.equal_split((1, 6, 11), 0.6),
                1,
                lock_channel_when_connected=True,
            ),
            stock_factory(),
        ):
            spec = TownTrialSpec(factory=factory, label="x", seed=1)
            clone = pickle.loads(pickle.dumps(spec))
            assert clone == spec


def _assert_trials_identical(a, b):
    assert a.label == b.label
    assert a.seed == b.seed
    assert a.duration_s == b.duration_s
    assert a.average_throughput_kBps == b.average_throughput_kBps
    assert a.connectivity_pct == b.connectivity_pct
    assert a.connection_durations_s == b.connection_durations_s
    assert a.disruption_durations_s == b.disruption_durations_s
    assert a.instantaneous_kBps == b.instantaneous_kBps
    assert a.join_log.attempts == b.join_log.attempts
    assert a.links_established == b.links_established
    assert a.events_processed == b.events_processed


class TestParallelDeterminism:
    def test_parallel_town_trials_bit_identical_to_serial(self):
        factory = spider_factory(OperationMode.equal_split((1, 6), 0.4), 7)
        serial = run_town_trials(
            factory, "det", seeds=(0, 1, 2, 3), duration_s=SHORT_TRIAL_S, workers=1
        )
        parallel = run_town_trials(
            factory, "det", seeds=(0, 1, 2, 3), duration_s=SHORT_TRIAL_S, workers=4
        )
        assert len(serial.trials) == len(parallel.trials) == 4
        for s_trial, p_trial in zip(serial.trials, parallel.trials):
            _assert_trials_identical(s_trial, p_trial)

    def test_spec_batch_preserves_order(self):
        specs = [
            TownTrialSpec(factory=stock_factory(), label=f"l{i}", seed=i,
                          duration_s=20.0)
            for i in (3, 1, 2)
        ]
        trials = run_town_trial_specs(specs, workers=3)
        assert [(t.label, t.seed) for t in trials] == [
            ("l3", 3), ("l1", 1), ("l2", 2)
        ]

    def test_configuration_suite_parallel_matches_serial(self):
        from repro.experiments.town_runs import (
            CONFIG_CH1_SINGLE_AP,
            CONFIG_STOCK,
            run_configuration_suite,
        )

        labels = [CONFIG_CH1_SINGLE_AP, CONFIG_STOCK]
        kwargs = dict(
            seeds=(0, 1),
            duration_s=SHORT_TRIAL_S,
            include_cambridge=False,
            labels=labels,
        )
        serial = run_configuration_suite(workers=1, **kwargs)
        parallel = run_configuration_suite(workers=4, **kwargs)
        assert serial.labels() == parallel.labels() == labels
        for label in labels:
            for s_trial, p_trial in zip(
                serial[label].trials, parallel[label].trials
            ):
                _assert_trials_identical(s_trial, p_trial)

    def test_timeout_grid_parallel_matches_serial(self):
        from repro.experiments.timeout_grid import run_grid

        labels = ["ch1, ll=100ms, dhcp=200ms, 7if"]
        serial = run_grid(
            labels=labels, seeds=(0, 1), duration_s=SHORT_TRIAL_S, workers=1
        )
        parallel = run_grid(
            labels=labels, seeds=(0, 1), duration_s=SHORT_TRIAL_S, workers=4
        )
        for label in labels:
            for s_trial, p_trial in zip(
                serial[label].trials, parallel[label].trials
            ):
                _assert_trials_identical(s_trial, p_trial)

    def test_fleet_parallel_matches_serial(self):
        from repro.experiments.fleet import run as run_fleet

        kwargs = dict(fleet_sizes=(1, 2), seeds=(0,), duration_s=SHORT_TRIAL_S)
        serial = run_fleet(workers=1, **kwargs)
        parallel = run_fleet(workers=4, **kwargs)
        assert [
            (r.vehicles, r.per_vehicle_kBps, r.aggregate_kBps,
             r.mean_connectivity_pct)
            for r in serial.rows
        ] == [
            (r.vehicles, r.per_vehicle_kBps, r.aggregate_kBps,
             r.mean_connectivity_pct)
            for r in parallel.rows
        ]

    def test_speed_sweep_parallel_matches_serial(self):
        from repro.experiments.speed_sweep import run as run_sweep

        kwargs = dict(speeds_mps=(6.0, 12.0), seeds=(0,), duration_s=SHORT_TRIAL_S)
        serial = run_sweep(workers=1, **kwargs)
        parallel = run_sweep(workers=4, **kwargs)
        assert serial.series == parallel.series
        assert serial.speeds_mps == parallel.speeds_mps


@dataclass(frozen=True)
class CrashingFactory:
    """A picklable client factory that kills its worker process."""

    def __call__(self, sim, world, mobility):
        os._exit(29)


@dataclass(frozen=True)
class HangingFactory:
    """A picklable client factory that never returns."""

    def __call__(self, sim, world, mobility):
        time.sleep(600.0)


class TestSuiteSalvage:
    """The PR's acceptance scenario: a suite with one crashing and one hung
    trial completes, reports errors for exactly those trials, and every
    sibling's metrics are bit-identical to a fault-free serial run."""

    def test_crash_and_hang_salvaged_siblings_bit_identical(self):
        good = [
            TownTrialSpec(
                factory=stock_factory(), label=f"good{i}", seed=i, duration_s=20.0
            )
            for i in range(3)
        ]
        specs = [
            good[0],
            TownTrialSpec(factory=CrashingFactory(), label="crash", seed=0,
                          duration_s=20.0),
            good[1],
            TownTrialSpec(factory=HangingFactory(), label="hang", seed=0,
                          duration_s=20.0),
            good[2],
        ]
        envelopes = run_town_trial_envelopes(specs, workers=3, timeout_s=8.0)
        assert [r.ok for r in envelopes] == [True, False, True, False, True]
        by_label = {r.tag[0]: r for r in envelopes}
        assert "died" in by_label["crash"].error
        assert "timed out" in by_label["hang"].error

        with pytest.warns(UserWarning, match="dropping trial"):
            salvaged = salvage_town_trials(specs, envelopes)
        assert [spec.label for spec, _ in salvaged] == ["good0", "good1", "good2"]

        baseline = run_town_trial_specs(good, workers=1)
        for (_spec, salvaged_trial), reference in zip(salvaged, baseline):
            _assert_trials_identical(salvaged_trial, reference)


def _interrupt(x):
    raise KeyboardInterrupt


class TestInterruptHandling:
    """Ctrl-C teardown: no orphaned workers, partial results preserved."""

    def test_serial_interrupt_raises_with_partial(self):
        jobs = [
            TrialJob(_double, (1,), tag="a"),
            TrialJob(_interrupt, (0,), tag="b"),
            TrialJob(_double, (2,), tag="c"),
        ]
        with pytest.raises(TrialInterrupted) as excinfo:
            run_jobs(jobs, workers=1)
        partial = excinfo.value.partial
        assert len(partial) == 3  # one slot per job, submission order
        assert partial[0] is not None and partial[0].value == 2
        assert partial[1] is None and partial[2] is None
        assert "1/3" in str(excinfo.value)

    def test_parallel_interrupt_raises_and_reaps_workers(self):
        jobs = [
            TrialJob(_double, (1,), tag="a"),
            TrialJob(_interrupt, (0,), tag="b"),
            TrialJob(_double, (2,), tag="c"),
        ]
        children_before = len(multiprocessing.active_children())
        with pytest.raises(TrialInterrupted) as excinfo:
            run_jobs(jobs, workers=2)
        assert len(excinfo.value.partial) == 3
        # The finished sibling harvested before the interrupt is preserved.
        assert excinfo.value.partial[0] is not None
        assert excinfo.value.partial[0].value == 2
        # No orphaned pool processes survive the unwind.
        deadline = time.monotonic() + 10.0
        while (
            len(multiprocessing.active_children()) > children_before
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        assert len(multiprocessing.active_children()) <= children_before

    def test_interrupt_banks_finished_results_in_cache(self, tmp_path):
        from repro.cache import TrialCache

        store = TrialCache(tmp_path, fingerprint="pin")
        jobs = [
            TrialJob(_double, (1,), tag="a"),
            TrialJob(_interrupt, (0,), tag="b"),
        ]
        with pytest.raises(TrialInterrupted):
            run_jobs(jobs, workers=1, cache=store)
        # The finished trial's value was stored before the re-raise, so a
        # resumed sweep replays it instead of re-running.
        key = store.key_for(jobs[0])
        hit, value = store.get(key)
        assert hit and value == 2

    def test_interrupted_is_a_trial_error(self):
        # Callers catching TrialError for cleanup also see interrupts.
        assert issubclass(TrialInterrupted, TrialError)
