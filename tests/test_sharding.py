"""Unit tests for the sharded-trial machinery in ``runner.pool``.

``split_shards``/``run_sharded`` let one trial's per-item work (fleet
vehicles) spread across workers while keeping the merged result
bit-identical to a single process; these tests pin the splitting algebra
and the envelope semantics of the merge.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import ShardedJob, run_sharded, split_shards


def _identity(shard, *args):
    return list(shard)


def _squares(shard, offset):
    return [x * x + offset for x in shard]


def _fail_on_three(shard):
    if 3 in shard:
        raise ValueError("shard contains 3")
    return list(shard)


def _short_changed(shard):
    return list(shard)[:-1]  # one result too few


class TestSplitShards:
    def test_even_split(self):
        assert split_shards(range(6), 3) == [(0, 1), (2, 3), (4, 5)]

    def test_remainder_goes_to_early_shards(self):
        assert split_shards(range(5), 3) == [(0, 1), (2, 3), (4,)]

    def test_more_shards_than_items(self):
        assert split_shards([1, 2], 8) == [(1,), (2,)]

    def test_empty(self):
        assert split_shards([], 4) == []

    def test_zero_shards_clamped(self):
        assert split_shards([1, 2], 0) == [(1, 2)]

    @settings(max_examples=100, deadline=None)
    @given(
        items=st.lists(st.integers(), max_size=40),
        shards=st.integers(min_value=1, max_value=12),
    )
    def test_concatenation_reproduces_items(self, items, shards):
        chunks = split_shards(items, shards)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunks)  # every chunk non-empty
        if items:
            assert len(chunks) == min(shards, len(items))


class TestRunSharded:
    def test_merged_in_item_order(self):
        job = ShardedJob(fn=_squares, items=tuple(range(7)), args=(10,), tag="sq")
        envelope = run_sharded(job, workers=3)
        assert envelope.ok
        assert envelope.value == [x * x + 10 for x in range(7)]
        assert envelope.tag == "sq"

    def test_serial_and_parallel_agree(self):
        job = ShardedJob(fn=_identity, items=tuple(range(9)))
        assert run_sharded(job, workers=1).value == run_sharded(job, workers=4).value

    def test_empty_items_trivially_ok(self):
        envelope = run_sharded(ShardedJob(fn=_identity, items=()), workers=2)
        assert envelope.ok and envelope.value == []

    def test_failed_shard_fails_whole_trial(self):
        job = ShardedJob(fn=_fail_on_three, items=tuple(range(6)), tag="boom")
        envelope = run_sharded(job, workers=2)
        assert not envelope.ok
        assert "shards failed" in envelope.error
        assert "shard contains 3" in envelope.error

    def test_wrong_result_count_is_an_error(self):
        job = ShardedJob(fn=_short_changed, items=tuple(range(4)))
        envelope = run_sharded(job, workers=2)
        assert not envelope.ok
        assert "results for" in envelope.error
