"""Unit tests for metric collection."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.metrics import JoinLog, ThroughputRecorder, segment_lengths


class TestSegmentLengths:
    def test_alternating_runs(self):
        connected, disrupted = segment_lengths(
            [True, True, False, True, False, False], 1.0
        )
        assert connected == [2.0, 1.0]
        assert disrupted == [1.0, 2.0]

    def test_all_connected(self):
        connected, disrupted = segment_lengths([True] * 5, 1.0)
        assert connected == [5.0]
        assert disrupted == []

    def test_empty(self):
        assert segment_lengths([], 1.0) == ([], [])

    def test_bin_width_scales_durations(self):
        connected, _ = segment_lengths([True, True], 0.5)
        assert connected == [1.0]

    @settings(max_examples=50, deadline=None)
    @given(flags=st.lists(st.booleans(), max_size=60))
    def test_partition_property(self, flags):
        """Connected plus disrupted segments exactly tile the timeline."""
        connected, disrupted = segment_lengths(flags, 1.0)
        assert sum(connected) + sum(disrupted) == pytest.approx(len(flags))
        assert sum(connected) == pytest.approx(sum(flags))


class TestThroughputRecorder:
    def record_at(self, sim, recorder, t, n):
        sim.schedule_at(t, recorder.record, n)

    def test_total_bytes(self, sim):
        recorder = ThroughputRecorder(sim)
        self.record_at(sim, recorder, 0.5, 100)
        self.record_at(sim, recorder, 1.5, 200)
        sim.run()
        assert recorder.total_bytes == 300

    def test_average_throughput(self, sim):
        recorder = ThroughputRecorder(sim)
        self.record_at(sim, recorder, 0.5, 1000)
        self.record_at(sim, recorder, 3.5, 1000)
        sim.run(until=4.0)
        assert recorder.average_throughput_bps(4.0) == pytest.approx(500.0)

    def test_connectivity_fraction(self, sim):
        recorder = ThroughputRecorder(sim)
        self.record_at(sim, recorder, 0.5, 10)
        self.record_at(sim, recorder, 1.5, 10)
        sim.run(until=4.0)
        assert recorder.connectivity_fraction(4.0) == pytest.approx(0.5)

    def test_connection_and_disruption_durations(self, sim):
        recorder = ThroughputRecorder(sim)
        for t in (0.5, 1.5, 3.5):
            self.record_at(sim, recorder, t, 10)
        sim.run(until=5.0)
        assert recorder.connection_durations(5.0) == [2.0, 1.0]
        assert recorder.disruption_durations(5.0) == [1.0, 1.0]

    def test_instantaneous_bandwidths_skip_idle_bins(self, sim):
        recorder = ThroughputRecorder(sim)
        self.record_at(sim, recorder, 0.5, 500)
        self.record_at(sim, recorder, 2.5, 1500)
        sim.run(until=4.0)
        assert recorder.instantaneous_bandwidths_bps(4.0) == [500.0, 1500.0]

    def test_window_average(self, sim):
        recorder = ThroughputRecorder(sim)
        self.record_at(sim, recorder, 1.5, 1000)
        self.record_at(sim, recorder, 8.5, 9000)
        sim.run(until=10.0)
        assert recorder.average_throughput_between_bps(0.0, 2.0) == pytest.approx(500.0)
        assert recorder.average_throughput_between_bps(8.0, 10.0) == pytest.approx(4500.0)

    def test_zero_byte_record_ignored(self, sim):
        recorder = ThroughputRecorder(sim)
        recorder.record(0)
        assert recorder.total_bytes == 0
        assert recorder.timeline(1.0) == [0]

    def test_empty_recorder_metrics(self, sim):
        recorder = ThroughputRecorder(sim)
        sim.run(until=3.0)
        assert recorder.average_throughput_bps(3.0) == 0.0
        assert recorder.connectivity_fraction(3.0) == 0.0
        assert recorder.connection_durations(3.0) == []
        assert recorder.disruption_durations(3.0) == [3.0]

    def test_invalid_bin_width_rejected(self, sim):
        with pytest.raises(ValueError):
            ThroughputRecorder(sim, bin_s=0.0)

    def test_invalid_window_rejected(self, sim):
        recorder = ThroughputRecorder(sim)
        with pytest.raises(ValueError):
            recorder.average_throughput_between_bps(5.0, 5.0)


class TestJoinLog:
    def make_log(self):
        log = JoinLog()
        ok = log.new_attempt("ap1", 1, 0.0)
        ok.associated = True
        ok.association_time_s = 0.02
        ok.leased = True
        ok.dhcp_time_s = 1.0
        ok.join_time_s = 1.02
        ok.verified = True
        half = log.new_attempt("ap2", 6, 5.0)
        half.associated = True
        half.association_time_s = 0.3
        bad = log.new_attempt("ap3", 11, 9.0)
        bad.failure_reason = "association: timeout"
        return log

    def test_counts(self):
        log = self.make_log()
        assert len(log) == 3

    def test_association_times(self):
        log = self.make_log()
        assert log.association_times() == [0.02, 0.3]

    def test_dhcp_times(self):
        assert self.make_log().dhcp_times() == [1.0]

    def test_join_times(self):
        assert self.make_log().join_times() == [1.02]

    def test_association_success_rate(self):
        assert self.make_log().association_success_rate() == pytest.approx(2 / 3)

    def test_dhcp_failure_rate_counts_only_attempts_that_reached_dhcp(self):
        log = self.make_log()
        # ap1 leased, ap2 reached DHCP and failed, ap3 never got there.
        assert log.dhcp_failure_rate() == pytest.approx(0.5)

    def test_cache_hit_rate(self):
        log = self.make_log()
        assert log.cache_hit_rate() == 0.0
        log.attempts[0].used_cache = True
        assert log.cache_hit_rate() == 1.0

    def test_empty_log_rates_are_nan(self):
        log = JoinLog()
        assert math.isnan(log.association_success_rate())
        assert math.isnan(log.dhcp_failure_rate())
        assert math.isnan(log.cache_hit_rate())


class TestOpenBinAccumulator:
    """The PR-3 allocation-free bin arithmetic must be observationally
    identical to per-record dict updates."""

    def test_reader_flush_mid_bin_then_more_records(self, sim):
        recorder = ThroughputRecorder(sim)
        sim.schedule_at(0.2, recorder.record, 100)
        sim.schedule_at(0.4, recorder.record, 200)
        # A reader mid-bin forces a flush; later records in the same bin
        # must still fold into the same timeline slot.
        sim.schedule_at(0.45, recorder.timeline)
        sim.schedule_at(0.6, recorder.record, 300)
        sim.run(until=1.0)
        assert recorder.timeline(1.0) == [600]
        assert recorder.total_bytes == 600

    def test_window_average_sees_open_bin(self, sim):
        recorder = ThroughputRecorder(sim)
        sim.schedule_at(0.5, recorder.record, 1000)
        sim.run(until=0.9)  # clock still inside bin 0
        assert recorder.average_throughput_between_bps(0.0, 1.0) == pytest.approx(
            1000.0
        )

    @settings(max_examples=60, deadline=None)
    @given(
        records=st.lists(
            st.tuples(
                st.floats(0.0, 9.99, allow_nan=False, allow_infinity=False),
                st.integers(min_value=1, max_value=5000),
            ),
            max_size=40,
        )
    )
    def test_matches_per_record_reference(self, records):
        sim = Simulator(seed=0)
        recorder = ThroughputRecorder(sim)
        for t, n in records:
            sim.schedule_at(t, recorder.record, n)
        sim.run(until=10.0)
        reference = {}
        for t, n in records:
            reference[int(t)] = reference.get(int(t), 0) + n
        assert recorder.timeline(10.0) == [reference.get(i, 0) for i in range(10)]
        assert recorder.total_bytes == sum(n for _, n in records)
