"""Tests for frame/packet types."""

from __future__ import annotations

from repro.sim.frames import (
    BROADCAST,
    DhcpMessage,
    DhcpType,
    Frame,
    FrameKind,
    TcpSegment,
)


class TestFrame:
    def test_broadcast_detection(self):
        frame = Frame(kind=FrameKind.BEACON, src="ap", dst=BROADCAST, size=80)
        assert frame.is_broadcast
        unicast = Frame(kind=FrameKind.DATA, src="a", dst="b", size=100)
        assert not unicast.is_broadcast

    def test_frame_ids_unique_and_increasing(self):
        a = Frame(kind=FrameKind.DATA, src="a", dst="b", size=1)
        b = Frame(kind=FrameKind.DATA, src="a", dst="b", size=1)
        assert b.frame_id > a.frame_id

    def test_repr_is_compact_and_informative(self):
        frame = Frame(kind=FrameKind.AUTH_REQUEST, src="cli", dst="ap", size=80, channel=6)
        text = repr(frame)
        assert "auth_request" in text and "cli->ap" in text and "ch6" in text

    def test_default_payload_none(self):
        frame = Frame(kind=FrameKind.DATA, src="a", dst="b", size=1)
        assert frame.payload is None and frame.bssid is None


class TestDhcpMessage:
    def test_round_trip_fields(self):
        message = DhcpMessage(
            dhcp_type=DhcpType.OFFER,
            transaction_id=7,
            client_mac="m",
            offered_ip="10.0.0.2",
            gateway_ip="10.0.0.1",
        )
        assert message.dhcp_type is DhcpType.OFFER
        assert message.offered_ip == "10.0.0.2"
        assert message.lease_time == 3600.0

    def test_all_message_types_exist(self):
        for name in ("DISCOVER", "OFFER", "REQUEST", "ACK", "NAK"):
            assert hasattr(DhcpType, name)


class TestTcpSegment:
    def test_data_segment_defaults(self):
        segment = TcpSegment("f", "s", "c", seq=100, payload_bytes=1400)
        assert not segment.is_ack and not segment.retransmit
        assert segment.ack == 0

    def test_ack_segment(self):
        segment = TcpSegment("f", "c", "s", ack=2800, is_ack=True)
        assert segment.is_ack and segment.payload_bytes == 0


class TestFrameKinds:
    def test_all_protocol_kinds_present(self):
        expected = {
            "BEACON", "PROBE_REQUEST", "PROBE_RESPONSE",
            "AUTH_REQUEST", "AUTH_RESPONSE", "ASSOC_REQUEST", "ASSOC_RESPONSE",
            "PSM", "PS_POLL", "DISASSOC", "DHCP", "DATA",
            "PING_REQUEST", "PING_REPLY",
        }
        assert expected <= {k.name for k in FrameKind}
