"""Unit tests for Spider's channel-scheduling driver."""

from __future__ import annotations

import pytest

from repro.core.driver import SpiderDriver
from repro.core.schedule import OperationMode
from repro.sim.engine import Simulator
from repro.sim.frames import Frame, FrameKind
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


@pytest.fixture
def nic(sim, world):
    return WifiNic(sim, world.medium, StaticPosition(0, 0), "drv", initial_channel=1)


def make_driver(sim, nic, mode, jitter=0.0):
    driver = SpiderDriver(sim, nic, mode)
    driver.dwell_jitter = jitter
    return driver


class TestScheduling:
    def test_single_channel_mode_never_switches(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.single_channel(1))
        driver.start()
        sim.run(until=5.0)
        assert nic.switches == 0

    def test_multi_channel_cycles_all_channels(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.equal_split((1, 6, 11), 0.3))
        visited = set()
        original = nic.tune

        def spy(channel, cb=None):
            visited.add(channel)
            original(channel, cb)

        nic.tune = spy
        driver.start()
        sim.run(until=2.0)
        assert visited == {1, 6, 11}  # full cycle returns to channel 1

    def test_dwell_proportional_to_fractions(self, sim, nic):
        from repro.sim.engine import PeriodicProcess

        mode = OperationMode(0.4, {1: 0.75, 6: 0.25})
        driver = make_driver(sim, nic, mode)
        samples = []
        PeriodicProcess(sim, 0.005, lambda: samples.append(nic.tuned_channel()))
        driver.start()
        sim.run(until=8.0)
        on1 = sum(1 for s in samples if s == 1)
        on6 = sum(1 for s in samples if s == 6)
        assert on1 / max(on6, 1) == pytest.approx(3.0, rel=0.25)

    def test_stop_halts_cycling(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.equal_split((1, 6), 0.2))
        driver.start()
        sim.run(until=1.0)
        driver.stop()
        switches = nic.switches
        sim.run(until=3.0)
        assert nic.switches == switches

    def test_double_start_rejected(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.single_channel(1))
        driver.start()
        with pytest.raises(RuntimeError):
            driver.start()

    def test_start_tunes_to_first_channel(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.single_channel(6))
        driver.start()
        sim.run(until=1.0)
        assert nic.current_channel == 6


class TestModeChange:
    def test_set_mode_switches_to_new_single_channel(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.single_channel(1))
        driver.start()
        sim.run(until=0.5)
        driver.set_mode(OperationMode.single_channel(11))
        sim.run(until=1.0)
        assert nic.current_channel == 11

    def test_set_mode_from_multi_to_single_stops_switching(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.equal_split((1, 6), 0.2))
        driver.start()
        sim.run(until=1.0)
        driver.set_mode(OperationMode.single_channel(1))
        sim.run(until=1.5)
        switches = nic.switches
        sim.run(until=4.0)
        assert nic.switches <= switches + 1  # at most the transition itself


class TestSwitchSequence:
    def test_psm_sent_to_associated_aps_on_departure(self, sim, world, nic):
        ap = make_lab_ap(world, channel=1)
        iface = nic.add_interface()
        iface.channel, iface.bssid, iface.link_associated = 1, ap.bssid, True
        received = []
        original = ap.on_frame

        def spy(frame, rssi):
            received.append(frame.kind)
            original(frame, rssi)

        ap.on_frame = spy
        driver = make_driver(sim, nic, OperationMode.single_channel(1))
        driver.switch_once(11)
        sim.run(until=0.5)
        assert FrameKind.PSM in received

    def test_ps_poll_sent_on_arrival(self, sim, world, nic):
        ap6 = make_lab_ap(world, channel=6)
        iface = nic.add_interface()
        iface.channel, iface.bssid, iface.link_associated = 6, ap6.bssid, True
        received = []
        original = ap6.on_frame

        def spy(frame, rssi):
            received.append(frame.kind)
            original(frame, rssi)

        ap6.on_frame = spy
        driver = make_driver(sim, nic, OperationMode.single_channel(1))
        driver.switch_once(6)
        sim.run(until=0.5)
        assert FrameKind.PS_POLL in received

    def test_switch_latency_recorded(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.single_channel(1))
        driver.switch_once(11)
        sim.run(until=0.5)
        assert len(driver.switch_latencies_s) == 1
        assert driver.switch_latencies_s[0] >= nic.reset_s

    def test_switch_latency_grows_with_interfaces(self, sim, world, nic):
        for index in range(3):
            ap = make_lab_ap(world, channel=1, x=5.0 + index)
            iface = nic.add_interface()
            iface.channel, iface.bssid, iface.link_associated = 1, ap.bssid, True
        driver = make_driver(sim, nic, OperationMode.single_channel(1))
        driver.switch_once(11)
        sim.run(until=0.5)
        loaded = driver.switch_latencies_s[0]
        # Compare against a bare switch on a fresh NIC.
        sim2 = Simulator(seed=0)
        world2 = World(sim2, loss_rate=0.0)
        nic2 = WifiNic(sim2, world2.medium, StaticPosition(0, 0), "bare", initial_channel=1)
        bare_driver = SpiderDriver(sim2, nic2, OperationMode.single_channel(1))
        bare_driver.switch_once(11)
        sim2.run(until=0.5)
        assert loaded > bare_driver.switch_latencies_s[0]

    def test_switch_once_rejected_while_running(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.equal_split((1, 6), 0.2))
        driver.start()
        with pytest.raises(RuntimeError):
            driver.switch_once(11)


class TestJitter:
    def test_jitter_spreads_dwell_lengths(self, sim, nic):
        driver = make_driver(sim, nic, OperationMode.equal_split((1, 6), 0.2), jitter=0.05)
        transitions = []
        original = nic.tune

        def spy(channel, cb=None):
            transitions.append(sim.now)
            original(channel, cb)

        nic.tune = spy
        driver.start()
        sim.run(until=5.0)
        gaps = {round(b - a, 5) for a, b in zip(transitions[:-1], transitions[1:])}
        assert len(gaps) > 2  # not a single fixed period

    def test_opportunistic_probing_broadcasts(self, sim, world):
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "p", initial_channel=1)
        driver = SpiderDriver(
            sim, nic, OperationMode.single_channel(1), probe_interval_s=0.5
        )
        driver.start()
        sim.run(until=2.1)
        assert world.medium.frames_sent >= 4
        driver.stop()
