"""Tests for the stock (MadWiFi-style) baseline client."""

from __future__ import annotations

import pytest

from repro.sim.mobility import LinearMobility, StaticPosition
from repro.sim.stock_client import StockClient

from conftest import make_lab_ap


class TestJoinFlow:
    def test_scans_joins_and_transfers(self, sim, world):
        make_lab_ap(world, channel=6, dhcp_delay=0.3)
        client = StockClient(sim, world, StaticPosition(0, 0), scan_channels=(1, 6, 11))
        client.start()
        sim.run(until=20.0)
        assert client.links_established == 1
        assert client.state == "connected"
        assert client.recorder.total_bytes > 50_000

    def test_scan_sweep_takes_time(self, sim, world):
        make_lab_ap(world, channel=11, dhcp_delay=0.1)
        client = StockClient(sim, world, StaticPosition(0, 0), scan_channels=tuple(range(1, 12)))
        client.start()
        sim.run(until=30.0)
        attempt = client.join_log.attempts[0]
        # The full 11-channel sweep must elapse before the join can start.
        assert attempt.started_at > 1.0

    def test_picks_strongest_ap(self, sim, world):
        near = make_lab_ap(world, channel=1, x=5.0)
        make_lab_ap(world, channel=1, x=90.0)
        client = StockClient(sim, world, StaticPosition(0, 0), scan_channels=(1,))
        client.start()
        sim.run(until=20.0)
        assert client.join_log.attempts[0].bssid == near.bssid

    def test_no_aps_keeps_rescanning(self, sim, world):
        client = StockClient(sim, world, StaticPosition(0, 0), scan_channels=(1, 6))
        client.start()
        sim.run(until=10.0)
        assert client.links_established == 0
        assert client.state == "scanning"

    def test_stop_halts_activity(self, sim, world):
        make_lab_ap(world, channel=1)
        client = StockClient(sim, world, StaticPosition(0, 0), scan_channels=(1,))
        client.start()
        sim.run(until=10.0)
        client.stop()
        delivered = client.recorder.total_bytes
        sim.run(until=15.0)
        assert client.recorder.total_bytes == delivered


class TestLossDetection:
    def test_beacon_silence_triggers_rescan(self, sim, world):
        ap_a = make_lab_ap(world, channel=1, x=5.0)
        ap_b = make_lab_ap(world, channel=6, x=8.0)
        client = StockClient(sim, world, StaticPosition(0, 0), scan_channels=(1, 6))
        client.start()
        sim.run(until=10.0)
        first_bssid = client.iface.bssid
        dead_ap = ap_a if first_bssid == ap_a.bssid else ap_b
        dead_ap.stop()
        world.medium.unregister(dead_ap.bssid)
        sim.run(until=40.0)
        # Reconnected to the other AP after the beacon timeout.
        assert client.links_established == 2
        assert client.iface.bssid != first_bssid

    def test_detection_takes_roughly_beacon_timeout(self, sim, world):
        ap = make_lab_ap(world, channel=1)
        client = StockClient(
            sim, world, StaticPosition(0, 0), scan_channels=(1,), beacon_loss_timeout_s=3.0
        )
        client.start()
        sim.run(until=10.0)
        ap.stop()
        world.medium.unregister(ap.bssid)
        deaths = []
        original = client._on_dead

        def spy():
            deaths.append(sim.now)
            original()

        client._on_dead = spy
        sim.run(until=30.0)
        assert deaths and 12.0 < deaths[0] < 16.0


class TestDhcpFailureIdling:
    def test_client_idles_after_dhcp_failure(self, sim, world):
        world.add_ap(channel=1, position=(5, 0), dhcp_response_delay=lambda: 60.0)
        good = make_lab_ap(world, channel=6, x=8.0, dhcp_delay=0.2)
        client = StockClient(
            sim,
            world,
            StaticPosition(0, 0),
            scan_channels=(1, 6),
            dhcp_idle_after_failure_s=20.0,
        )
        client.start()
        # Force the slow AP to be tried first by making it the strongest.
        sim.run(until=60.0)
        # After the failure the client idles 20 s before reaching the good AP.
        if client.links_established:
            join = next(a for a in client.join_log.attempts if a.leased)
            failed = [a for a in client.join_log.attempts if a.failure_reason]
            if failed and failed[0].started_at < join.started_at:
                assert join.started_at - failed[0].started_at > 20.0

    def test_mobile_run_produces_metrics(self, sim, world):
        for x in (100.0, 260.0, 420.0):
            make_lab_ap(world, channel=6, x=x)
        client = StockClient(sim, world, LinearMobility(speed_mps=10.0), scan_channels=(1, 6, 11))
        client.start()
        sim.run(until=50.0)
        assert client.average_throughput_kBps(50.0) >= 0.0
        assert 0.0 <= client.connectivity_percent(50.0) <= 100.0
