"""Unit tests for the wireless medium."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.radio import (
    DATA_RETRY_LIMIT,
    FRAME_OVERHEAD_S,
    Medium,
    rssi_from_distance,
)


class FakeStation:
    """Minimal Station implementation for medium tests."""

    def __init__(self, station_id, x=0.0, y=0.0, channel=1):
        self.station_id = station_id
        self.x, self.y = x, y
        self.channel = channel
        self.received = []
        self.failed = []

    def position(self):
        return (self.x, self.y)

    def tuned_channel(self):
        return self.channel

    def accepts(self, dst):
        return dst == self.station_id

    def on_frame(self, frame, rssi):
        self.received.append((frame, rssi))

    def on_delivery_failed(self, frame):
        self.failed.append(frame)


def mgmt_frame(src, dst, channel=1, kind=FrameKind.BEACON, size=80):
    return Frame(kind=kind, src=src, dst=dst, size=size, channel=channel)


def data_frame(src, dst, channel=1, size=1452):
    return Frame(kind=FrameKind.DATA, src=src, dst=dst, size=size, channel=channel)


@pytest.fixture
def medium(sim):
    return Medium(sim, loss_rate=0.0)


class TestDelivery:
    def test_unicast_reaches_addressee(self, sim, medium):
        a = FakeStation("a")
        b = FakeStation("b", x=50.0)
        medium.register(a)
        medium.register(b)
        medium.transmit(a, mgmt_frame("a", "b"))
        sim.run()
        assert len(b.received) == 1

    def test_unicast_skips_other_stations(self, sim, medium):
        a, b, c = FakeStation("a"), FakeStation("b", x=10), FakeStation("c", x=20)
        for s in (a, b, c):
            medium.register(s)
        medium.transmit(a, mgmt_frame("a", "b"))
        sim.run()
        assert len(b.received) == 1
        assert c.received == []

    def test_broadcast_reaches_everyone_in_range(self, sim, medium):
        a = FakeStation("a")
        others = [FakeStation(f"s{i}", x=10.0 * i) for i in range(1, 4)]
        medium.register(a)
        for s in others:
            medium.register(s)
        medium.transmit(a, mgmt_frame("a", BROADCAST))
        sim.run()
        assert all(len(s.received) == 1 for s in others)

    def test_out_of_range_station_misses_frame(self, sim, medium):
        a = FakeStation("a")
        far = FakeStation("far", x=medium.range_m + 1.0)
        medium.register(a)
        medium.register(far)
        medium.transmit(a, mgmt_frame("a", "far"))
        sim.run()
        assert far.received == []

    def test_boundary_of_range_still_delivers(self, sim, medium):
        a = FakeStation("a")
        edge = FakeStation("edge", x=medium.range_m)
        medium.register(a)
        medium.register(edge)
        medium.transmit(a, mgmt_frame("a", "edge"))
        sim.run()
        assert len(edge.received) == 1

    def test_wrong_channel_is_isolated(self, sim, medium):
        a = FakeStation("a", channel=1)
        b = FakeStation("b", x=10, channel=6)
        medium.register(a)
        medium.register(b)
        medium.transmit(a, mgmt_frame("a", "b", channel=1))
        sim.run()
        assert b.received == []

    def test_sender_does_not_hear_itself(self, sim, medium):
        a = FakeStation("a")
        medium.register(a)
        medium.transmit(a, mgmt_frame("a", BROADCAST))
        sim.run()
        assert a.received == []

    def test_rssi_decreases_with_distance(self, sim, medium):
        a = FakeStation("a")
        near = FakeStation("near", x=5.0)
        far = FakeStation("far", x=90.0)
        for s in (a, near, far):
            medium.register(s)
        medium.transmit(a, mgmt_frame("a", BROADCAST))
        sim.run()
        assert near.received[0][1] > far.received[0][1]

    def test_delivery_hook_invoked(self, sim, medium):
        seen = []
        medium.delivery_hooks.append(lambda f, sid: seen.append(sid))
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        medium.transmit(a, mgmt_frame("a", "b"))
        sim.run()
        assert seen == ["b"]

    def test_duplicate_registration_rejected(self, medium):
        medium.register(FakeStation("a"))
        with pytest.raises(ValueError):
            medium.register(FakeStation("a"))

    def test_unregistered_sender_drops_frame_in_flight(self, sim, medium):
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        medium.transmit(a, mgmt_frame("a", "b"))
        medium.unregister("a")
        sim.run()
        assert b.received == []


class TestAirtimeAndSerialization:
    def test_airtime_scales_with_size(self, medium):
        small = mgmt_frame("a", "b", size=100)
        big = mgmt_frame("a", "b", size=1000)
        assert medium.airtime(big) > medium.airtime(small)

    def test_airtime_includes_fixed_overhead(self, medium):
        tiny = mgmt_frame("a", "b", size=1)
        assert medium.airtime(tiny) >= FRAME_OVERHEAD_S

    def test_channel_serializes_back_to_back_frames(self, sim, medium):
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        done1 = medium.transmit(a, mgmt_frame("a", "b"))
        done2 = medium.transmit(a, mgmt_frame("a", "b"))
        assert done2 >= done1 + medium.airtime(mgmt_frame("a", "b")) - 1e-12

    def test_different_channels_do_not_serialize(self, sim, medium):
        a = FakeStation("a", channel=1)
        done1 = medium.transmit(a, mgmt_frame("a", "x", channel=1))
        done2 = medium.transmit(a, mgmt_frame("a", "y", channel=6))
        assert abs(done1 - done2) < 1e-9

    def test_retried_data_airtime_inflated_under_loss(self, sim):
        lossy = Medium(sim, loss_rate=0.2)
        clean = Medium(Simulator(seed=0), loss_rate=0.0)
        frame = data_frame("a", "b")
        assert lossy.airtime(frame) > clean.airtime(frame)

    def test_mgmt_airtime_not_inflated_under_loss(self, sim):
        lossy = Medium(sim, loss_rate=0.2)
        frame = mgmt_frame("a", "b")
        expected = frame.size * 8.0 / lossy.data_rate_bps + FRAME_OVERHEAD_S
        assert lossy.airtime(frame) == pytest.approx(expected)


class TestAirtimeEdgeCases:
    def test_zero_length_frame_costs_exactly_the_overhead(self, medium):
        frame = mgmt_frame("a", "b", size=0)
        assert medium.airtime(frame) == FRAME_OVERHEAD_S

    def test_retried_airtime_is_exactly_base_over_one_minus_h(self, sim):
        h = 0.25
        medium = Medium(sim, loss_rate=h)
        frame = data_frame("a", "b", size=1452)
        base = frame.size * 8.0 / medium.data_rate_bps + FRAME_OVERHEAD_S
        # Bit-identical to the historical expression, not merely close:
        # the contention path reuses airtime() for busy horizons, so any
        # drift here would shift carrier-sense outcomes.
        assert medium.airtime(frame) == base / (1.0 - h)

    def test_broadcast_data_airtime_not_inflated(self, sim):
        medium = Medium(sim, loss_rate=0.3)
        frame = data_frame("a", BROADCAST)
        base = frame.size * 8.0 / medium.data_rate_bps + FRAME_OVERHEAD_S
        assert medium.airtime(frame) == pytest.approx(base)

    @pytest.mark.parametrize(
        "kind", [FrameKind.PING_REQUEST, FrameKind.PING_REPLY]
    )
    def test_ping_frames_count_as_data_plane(self, sim, kind):
        medium = Medium(sim, loss_rate=0.2)
        frame = Frame(kind=kind, src="a", dst="b", size=100, channel=1)
        base = frame.size * 8.0 / medium.data_rate_bps + FRAME_OVERHEAD_S
        assert medium.airtime(frame) == base / (1.0 - 0.2)
        assert medium.delivery_loss_probability(frame) == pytest.approx(
            0.2 ** (1 + DATA_RETRY_LIMIT)
        )


class _StepLoss:
    """A loss model whose rate jumps at a fixed time."""

    def __init__(self, before, after, step_at):
        self.before, self.after, self.step_at = before, after, step_at

    def loss_rate_at(self, now):
        return self.after if now >= self.step_at else self.before


class TestEffectiveLoss:
    def test_stationary_matches_delivery_loss_probability(self, sim):
        medium = Medium(sim, loss_rate=0.1)
        assert medium._effective_loss(data_frame("a", "b")) == pytest.approx(
            medium.delivery_loss_probability(data_frame("a", "b"))
        )
        assert medium._effective_loss(mgmt_frame("a", "b")) == pytest.approx(0.1)

    def test_bursty_model_overrides_stationary_rate(self, sim):
        medium = Medium(sim, loss_rate=0.1)
        medium.set_bursty_loss(_StepLoss(before=0.1, after=0.8, step_at=5.0))
        frame = mgmt_frame("a", "b")
        assert medium._effective_loss(frame) == pytest.approx(0.1)
        sim.run(until=6.0)
        assert medium._effective_loss(frame) == pytest.approx(0.8)
        medium.clear_bursty_loss()
        assert medium.bursty_loss is None
        assert medium._effective_loss(frame) == pytest.approx(0.1)

    def test_retry_exponent_stacks_on_the_bursty_rate(self, sim):
        medium = Medium(sim, loss_rate=0.05)
        medium.set_bursty_loss(_StepLoss(before=0.5, after=0.5, step_at=0.0))
        # Unicast data sees the *bursty* rate raised to the retry power,
        # not the stationary one: 0.5^(1+retries), not 0.05^(1+retries).
        assert medium._effective_loss(data_frame("a", "b")) == pytest.approx(
            0.5 ** (1 + DATA_RETRY_LIMIT)
        )
        # Broadcast data keeps the raw bursty rate (no link-layer retries).
        assert medium._effective_loss(data_frame("a", BROADCAST)) == pytest.approx(0.5)

    def test_airtime_ignores_the_bursty_model(self, sim):
        medium = Medium(sim, loss_rate=0.1)
        frame = data_frame("a", "b")
        before = medium.airtime(frame)
        medium.set_bursty_loss(_StepLoss(before=0.9, after=0.9, step_at=0.0))
        # airtime() models the *average* retry cost; the burst only moves
        # the per-delivery coin flip.
        assert medium.airtime(frame) == before


class TestLossModel:
    def test_zero_loss_delivers_everything(self, sim):
        medium = Medium(sim, loss_rate=0.0)
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        for _ in range(50):
            medium.transmit(a, mgmt_frame("a", "b"))
        sim.run()
        assert len(b.received) == 50

    def test_mgmt_frames_lose_at_raw_rate(self, sim):
        medium = Medium(sim, loss_rate=0.5)
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        n = 400
        for _ in range(n):
            medium.transmit(a, mgmt_frame("a", "b"))
        sim.run()
        assert 0.35 * n < len(b.received) < 0.65 * n

    def test_data_frames_survive_thanks_to_link_layer_retries(self, sim):
        medium = Medium(sim, loss_rate=0.2)
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        n = 200
        for _ in range(n):
            medium.transmit(a, data_frame("a", "b"))
        sim.run()
        # Residual loss is 0.2^(1+retries) ~ 0.16%, so near-total delivery.
        assert len(b.received) >= n - 4

    def test_residual_loss_probability_formula(self, sim):
        medium = Medium(sim, loss_rate=0.1)
        assert medium.delivery_loss_probability(data_frame("a", "b")) == pytest.approx(
            0.1 ** (1 + DATA_RETRY_LIMIT)
        )
        assert medium.delivery_loss_probability(mgmt_frame("a", "b")) == pytest.approx(0.1)

    def test_invalid_loss_rate_rejected(self, sim):
        with pytest.raises(ValueError):
            Medium(sim, loss_rate=1.0)


class TestDeliveryFailureFeedback:
    def test_sender_notified_when_receiver_unreachable(self, sim, medium):
        a = FakeStation("a")
        gone = FakeStation("gone", x=500.0)  # out of range
        medium.register(a)
        medium.register(gone)
        medium.transmit(a, data_frame("a", "gone"))
        sim.run()
        assert len(a.failed) == 1

    def test_no_notification_when_delivered(self, sim, medium):
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        medium.transmit(a, data_frame("a", "b"))
        sim.run()
        assert a.failed == []

    def test_no_notification_for_broadcast(self, sim, medium):
        a = FakeStation("a")
        medium.register(a)
        medium.transmit(a, mgmt_frame("a", BROADCAST))
        sim.run()
        assert a.failed == []

    def test_random_loss_does_not_trigger_failure_feedback(self, sim):
        # Residual random loss is a lost frame *after* retries; the medium
        # only reports "no reachable receiver" (asleep/out of range).
        medium = Medium(sim, loss_rate=0.9)
        a, b = FakeStation("a"), FakeStation("b", x=10)
        medium.register(a)
        medium.register(b)
        for _ in range(30):
            medium.transmit(a, mgmt_frame("a", "b", kind=FrameKind.AUTH_REQUEST))
        sim.run()
        assert a.failed == []


class TestRssiModel:
    def test_monotone_decreasing(self):
        assert rssi_from_distance(1) > rssi_from_distance(10) > rssi_from_distance(100)

    def test_clamps_below_one_metre(self):
        assert rssi_from_distance(0.1) == rssi_from_distance(1.0)

    def test_plausible_dbm_values(self):
        assert -95.0 < rssi_from_distance(100.0) < -80.0
        assert -45.0 < rssi_from_distance(1.0) < -35.0


class StaticStation(FakeStation):
    """A FakeStation that opts into the static (AP-style) index."""

    is_static = True


class TestStaticStationIndex:
    def test_static_receiver_in_neighbouring_bin_gets_frame(self, sim, medium):
        sender = FakeStation("veh", x=99.0)
        # Exactly at the range edge, one spatial bin over.
        ap = StaticStation("ap", x=199.0)
        medium.register(sender)
        medium.register(ap)
        medium.transmit(sender, mgmt_frame("veh", BROADCAST))
        sim.run()
        assert len(ap.received) == 1

    def test_far_static_station_not_probed(self, sim, medium):
        sender = FakeStation("veh")
        far = StaticStation("ap-far", x=1000.0)
        medium.register(sender)
        medium.register(far)
        medium.transmit(sender, mgmt_frame("veh", BROADCAST))
        sim.run()
        assert far.received == []

    def test_static_station_on_other_channel_skipped(self, sim, medium):
        sender = FakeStation("veh", channel=1)
        other = StaticStation("ap6", x=10.0, channel=6)
        near = StaticStation("ap1", x=10.0, channel=1)
        medium.register(sender)
        medium.register(other)
        medium.register(near)
        medium.transmit(sender, mgmt_frame("veh", BROADCAST, channel=1))
        sim.run()
        assert len(near.received) == 1
        assert other.received == []

    def test_unregistered_static_station_stops_receiving(self, sim, medium):
        sender = FakeStation("veh")
        ap = StaticStation("ap", x=10.0)
        medium.register(sender)
        medium.register(ap)
        medium.unregister("ap")
        medium.transmit(sender, mgmt_frame("veh", BROADCAST))
        sim.run()
        assert ap.received == []

    def test_delivery_order_follows_registration_order(self, sim, medium):
        """Mixed mobile/static receivers hear a broadcast in registration
        order — the invariant that keeps indexed delivery bit-identical."""
        order = []
        sender = FakeStation("veh", x=5.0)
        stations = [
            StaticStation("ap-a", x=10.0),
            FakeStation("mob-b", x=20.0),
            StaticStation("ap-c", x=30.0),
            FakeStation("mob-d", x=40.0),
        ]
        medium.register(sender)
        for station in stations:
            station.on_frame = (
                lambda frame, rssi, sid=station.station_id: order.append(sid)
            )
            medium.register(station)
        medium.transmit(sender, mgmt_frame("veh", BROADCAST))
        sim.run()
        assert order == ["ap-a", "mob-b", "ap-c", "mob-d"]

    def test_negative_coordinates_bin_correctly(self, sim, medium):
        sender = FakeStation("veh", x=-5.0, y=-5.0)
        ap = StaticStation("ap", x=-80.0, y=-40.0)
        medium.register(sender)
        medium.register(ap)
        medium.transmit(sender, mgmt_frame("veh", BROADCAST))
        sim.run()
        assert len(ap.received) == 1
