"""Channel-assignment experiment: strategies, determinism, and guards."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import channel_assign
from repro.experiments.channel_assign import (
    POLICIES,
    STRATEGIES,
    ChannelAssignSpec,
    apply_strategy,
    run_assign_trial,
)
from repro.fabric import InProcessFabric, activate
from repro.runner.pool import TrialError
from repro.sim.contention import ContentionSpec
from repro.sim.engine import Simulator
from repro.workloads.town import PRESETS, build_town
from dataclasses import replace


def small_spec(**overrides) -> ChannelAssignSpec:
    """A reduced grid that still exercises every moving part."""
    base = dict(
        seeds=(0,),
        duration_s=3.0,
        n_vehicles=3,
        strategies=("measured", "adversarial"),
        loop_length_m=1200.0,
        ap_density_per_km=40.0,
    )
    base.update(overrides)
    return ChannelAssignSpec(**base)


def small_town(seed=0, contention=ContentionSpec()):
    sim = Simulator(seed=seed)
    config = replace(
        PRESETS["city"], loop_length_m=1200.0, ap_density_per_km=40.0
    )
    return sim, build_town(sim, config=config, contention=contention)


class TestApplyStrategy:
    def test_measured_keeps_the_built_map(self):
        _, town = small_town()
        before = town.channel_counts()
        assert apply_strategy(town, "measured", (1, 6, 11)) == before

    def test_adversarial_piles_everything_on_channel_6(self):
        _, town = small_town()
        counts = apply_strategy(town, "adversarial", (1, 6, 11))
        assert counts == {6: len(town.aps)}

    def test_random_is_seed_deterministic(self):
        maps = []
        for _ in range(2):
            _, town = small_town(seed=5)
            apply_strategy(town, "random", (1, 6, 11))
            maps.append(tuple(ap.channel for ap in town.aps))
        assert maps[0] == maps[1]
        assert set(maps[0]) <= {1, 6, 11}

    def test_greedy_spreads_co_channel_neighbours(self):
        _, town = small_town()
        counts = apply_strategy(town, "greedy", (1, 6, 11))
        # Dense clusters force all three colors into play, and no channel
        # should hoard the APs the way the adversarial map does.
        assert set(counts) == {1, 6, 11}
        assert max(counts.values()) < len(town.aps)

    def test_unknown_strategy_rejected(self):
        _, town = small_town()
        with pytest.raises(ValueError, match="unknown strategy"):
            apply_strategy(town, "psychic", (1, 6, 11))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            channel_assign._policy_mode("nope", (1, 6, 11))


class TestGuards:
    def test_refuses_to_run_without_contention(self):
        spec = small_spec(contention=None)
        with pytest.raises(ValueError, match="requires the contention model"):
            run_assign_trial(spec, "measured", "single-ch6", 0)

    def test_refuses_disabled_contention(self):
        spec = small_spec(contention=ContentionSpec(enabled=False))
        with pytest.raises(ValueError, match="requires the contention model"):
            run_assign_trial(spec, "measured", "single-ch6", 0)

    def test_grid_guard_surfaces_through_the_envelope(self):
        spec = small_spec(contention=None, strategies=("measured",))
        with pytest.raises(TrialError, match="requires the contention model"):
            channel_assign.run_spec(spec).unwrap()


class TestSmoke:
    def test_reduced_grid_runs_and_renders(self):
        spec = small_spec()
        result = channel_assign.run_spec(spec).unwrap()
        assert len(result.rows) == len(spec.strategies) * len(spec.policies)
        for row in result.rows:
            assert row.ap_count > 0
            assert row.join_attempts >= row.joins_completed >= 0
            assert row.aggregate_kBps >= 0.0
            assert 0.0 <= row.collision_rate <= 1.0
        adversarial = result.cell("adversarial", "single-ch6")[0]
        assert adversarial.channel_map == {6: adversarial.ap_count}
        text = result.render()
        assert "Channel assignment under contention" in text
        assert "aggregate goodput" in text
        assert "join completion rate" in text
        assert "APs per channel by strategy" in text

    def test_defaults_cover_the_full_grid(self):
        spec = ChannelAssignSpec()
        assert spec.strategies == STRATEGIES
        assert spec.policies == POLICIES
        assert spec.contention == ContentionSpec()
        assert spec.town == "city"


class TestDeterminism:
    def _rows(self, workers=None, fabric=None):
        spec = small_spec(
            strategies=("measured", "adversarial"),
            policies=("single-ch6",),
            workers=workers,
        )
        with activate(fabric):
            return channel_assign.run_spec(spec).unwrap().rows

    def test_serial_parallel_fabric_identical(self):
        serial = self._rows(workers=1)
        parallel = self._rows(workers=2)
        fabric = self._rows(fabric=InProcessFabric(workers=2))
        # Per-row pickles: list-level dumps would also encode accidental
        # object sharing (the serial path reuses the spec's policy string
        # across rows; worker round-trips copy it), which is invisible to
        # every consumer of the results.
        serial_bytes = [pickle.dumps(r) for r in serial]
        assert serial_bytes == [pickle.dumps(r) for r in parallel]
        assert serial_bytes == [pickle.dumps(r) for r in fabric]
