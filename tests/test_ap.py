"""Unit tests for the access point: beacons, PSM, backhaul, routing."""

from __future__ import annotations

import pytest

from repro.sim.ap import AP_PROC_DELAY_S, PSM_BUFFER_DEPTH, BackhaulLink
from repro.sim.engine import Simulator
from repro.sim.frames import Frame, FrameKind, TcpSegment
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


@pytest.fixture
def ap(world):
    return make_lab_ap(world, channel=1)


@pytest.fixture
def client(sim, world):
    nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
    nic.add_interface()
    return nic


def associate(sim, ap, iface):
    ap.on_frame(
        Frame(kind=FrameKind.ASSOC_REQUEST, src=iface.mac, dst=ap.bssid, size=80, channel=1),
        -40.0,
    )
    iface.channel = ap.channel
    iface.bssid = ap.bssid
    iface.link_associated = True


class TestBeaconing:
    def test_beacons_arrive_periodically(self, sim, world, ap, client):
        sim.run(until=1.05)
        entry = client.scan_table.get(ap.bssid)
        assert entry is not None
        assert entry.sightings >= 8  # ~10 beacons minus loss-free jitterless phase

    def test_stop_halts_beacons(self, sim, world, ap, client):
        ap.stop()
        sim.run(until=1.0)
        assert client.scan_table.get(ap.bssid) is None

    def test_probe_request_answered(self, sim, world, ap, client):
        client.send_probe_request()
        sim.run(until=0.1)
        assert client.scan_table.get(ap.bssid) is not None


class TestAssociationHandling:
    def test_assoc_request_registers_client(self, sim, ap, client):
        iface = client.interfaces[0]
        associate(sim, ap, iface)
        assert ap.is_associated(iface.mac)

    def test_assoc_response_sent(self, sim, world, ap, client):
        iface = client.interfaces[0]
        got = []
        iface.handlers[FrameKind.ASSOC_RESPONSE] = lambda f, r: got.append(f)
        iface.channel = 1
        iface.send_mgmt(FrameKind.ASSOC_REQUEST, ap.bssid)
        sim.run(until=0.5)
        assert len(got) == 1

    def test_disassoc_removes_client(self, sim, ap, client):
        iface = client.interfaces[0]
        associate(sim, ap, iface)
        ap.on_frame(
            Frame(kind=FrameKind.DISASSOC, src=iface.mac, dst=ap.bssid, size=80, channel=1),
            -40.0,
        )
        assert not ap.is_associated(iface.mac)

    def test_reassociation_resets_psm_state(self, sim, ap, client):
        """The lap-2 regression: stale PSM must not survive re-association."""
        iface = client.interfaces[0]
        associate(sim, ap, iface)
        state = ap.clients[iface.mac]
        state.psm = True
        state.buffer.append(
            Frame(kind=FrameKind.DATA, src=ap.bssid, dst=iface.mac, size=100, channel=1)
        )
        associate(sim, ap, iface)  # drives ASSOC_REQUEST again
        fresh = ap.clients[iface.mac]
        assert fresh.psm is False
        assert len(fresh.buffer) == 0


class TestPowerSaveMode:
    def test_psm_buffers_downlink(self, sim, world, ap, client):
        iface = client.interfaces[0]
        associate(sim, ap, iface)
        ap.on_frame(
            Frame(kind=FrameKind.PSM, src=iface.mac, dst=ap.bssid, size=80, channel=1),
            -40.0,
        )
        ap.send_downlink_to_mac(
            iface.mac,
            Frame(kind=FrameKind.DATA, src=ap.bssid, dst=iface.mac, size=100, channel=1),
        )
        assert len(ap.clients[iface.mac].buffer) == 1
        assert world.medium.frames_sent == 0 or True  # nothing for this client

    def test_ps_poll_flushes_buffer(self, sim, world, ap, client):
        iface = client.interfaces[0]
        got = []
        iface.handlers[FrameKind.DATA] = lambda f, r: got.append(f)
        associate(sim, ap, iface)
        ap.clients[iface.mac].psm = True
        for _ in range(3):
            ap.send_downlink_to_mac(
                iface.mac,
                Frame(kind=FrameKind.DATA, src=ap.bssid, dst=iface.mac, size=100, channel=1),
            )
        ap.on_frame(
            Frame(kind=FrameKind.PS_POLL, src=iface.mac, dst=ap.bssid, size=80, channel=1),
            -40.0,
        )
        sim.run(until=0.5)
        assert len(got) == 3
        assert ap.clients[iface.mac].psm is False

    def test_psm_buffer_overflow_drops_oldest(self, sim, ap, client):
        iface = client.interfaces[0]
        associate(sim, ap, iface)
        ap.clients[iface.mac].psm = True
        for _ in range(PSM_BUFFER_DEPTH + 5):
            ap.send_downlink_to_mac(
                iface.mac,
                Frame(kind=FrameKind.DATA, src=ap.bssid, dst=iface.mac, size=100, channel=1),
            )
        assert len(ap.clients[iface.mac].buffer) == PSM_BUFFER_DEPTH
        assert ap.frames_dropped_psm_overflow == 5

    def test_delivery_failure_requeues_data(self, sim, world, ap, client):
        """Frames that miss an off-channel client return to the PS queue."""
        iface = client.interfaces[0]
        associate(sim, ap, iface)
        client.tune(11)  # client leaves; AP does not know
        sim.run(until=0.1)
        ap.send_downlink_to_mac(
            iface.mac,
            Frame(kind=FrameKind.DATA, src=ap.bssid, dst=iface.mac, size=100, channel=1),
        )
        sim.run(until=0.2)
        state = ap.clients[iface.mac]
        assert state.psm is True
        assert len(state.buffer) == 1

    def test_delivery_failure_of_mgmt_frame_not_rescued(self, sim, world, ap, client):
        iface = client.interfaces[0]
        associate(sim, ap, iface)
        client.tune(11)
        sim.run(until=0.1)
        ap.medium.transmit(
            ap,
            Frame(kind=FrameKind.AUTH_RESPONSE, src=ap.bssid, dst=iface.mac, size=80, channel=1),
        )
        sim.run(until=0.2)
        assert len(ap.clients[iface.mac].buffer) == 0

    def test_psm_for_unknown_client_ignored(self, sim, ap):
        ap.on_frame(
            Frame(kind=FrameKind.PSM, src="ghost", dst=ap.bssid, size=80, channel=1),
            -40.0,
        )  # must not raise


class TestDownlinkRouting:
    def _lease(self, ap, mac):
        from repro.sim.frames import DhcpMessage, DhcpType

        ap.dhcp.handle(DhcpMessage(DhcpType.DISCOVER, 1, mac), lambda m, d: None)
        return ap.dhcp.lease_for(mac)

    def test_downlink_reaches_leased_client(self, sim, world, ap, client):
        iface = client.interfaces[0]
        got = []
        iface.handlers[FrameKind.DATA] = lambda f, r: got.append(f)
        associate(sim, ap, iface)
        ip = self._lease(ap, iface.mac)
        ap.deliver_downlink(ip, FrameKind.DATA, TcpSegment("f", "s", ip), 500)
        sim.run(until=1.0)
        assert len(got) == 1

    def test_downlink_to_unknown_ip_dropped(self, sim, ap):
        ap.deliver_downlink("10.1.0.200", FrameKind.DATA, None, 500)
        sim.run(until=1.0)
        assert ap.frames_dropped_unassociated == 1

    def test_downlink_to_unassociated_client_dropped(self, sim, ap, client):
        iface = client.interfaces[0]
        ip = self._lease(ap, iface.mac)  # leased but never associated
        ap.deliver_downlink(ip, FrameKind.DATA, None, 500)
        sim.run(until=1.0)
        assert ap.frames_dropped_unassociated == 1


class TestPing:
    def test_gateway_ping_answered_locally(self, sim, world, ap, client):
        iface = client.interfaces[0]
        got = []
        iface.handlers[FrameKind.PING_REPLY] = lambda f, r: got.append(f)
        associate(sim, ap, iface)
        ap.on_frame(
            Frame(
                kind=FrameKind.PING_REQUEST,
                src=iface.mac,
                dst=ap.bssid,
                size=98,
                channel=1,
                payload={"dst_ip": ap.dhcp.gateway_ip, "token": 1},
            ),
            -40.0,
        )
        sim.run(until=0.5)
        assert len(got) == 1
        assert got[0].payload["token"] == 1


class TestBackhaulLink:
    def test_serialization_orders_deliveries(self, sim):
        link = BackhaulLink(sim, rate_bps=8000.0, latency_s=0.0)  # 1 kB/s
        arrivals = []
        link.send(1000, arrivals.append, "first")   # 1 s of serialization
        link.send(1000, arrivals.append, "second")  # queued behind
        sim.run()
        assert arrivals == ["first", "second"]
        assert sim.now == pytest.approx(2.0)

    def test_latency_added_after_serialization(self, sim):
        link = BackhaulLink(sim, rate_bps=8000.0, latency_s=0.5)
        times = []
        link.send(1000, lambda: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.5)]

    def test_bytes_accounted(self, sim):
        link = BackhaulLink(sim, rate_bps=1e6, latency_s=0.0)
        link.send(123, lambda: None)
        link.send(77, lambda: None)
        assert link.bytes_carried == 200

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            BackhaulLink(sim, rate_bps=0.0, latency_s=0.0)
        with pytest.raises(ValueError):
            BackhaulLink(sim, rate_bps=1e6, latency_s=-1.0)
