"""Property-based robustness tests for the TCP model.

A Reno sender over a channel with arbitrary (randomized) loss episodes must
always (a) conserve bytes, (b) keep its window within bounds, and (c)
complete any finite transfer once the channel stays clean long enough.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.frames import TcpSegment
from repro.sim.tcp import TcpParams, TcpReceiver, TcpSender


def run_transfer(loss_windows, total_bytes=80_000, one_way_s=0.03, horizon_s=240.0):
    """Drive one transfer through a channel with the given loss windows.

    ``loss_windows`` is a list of (start, end) intervals during which all
    data segments are dropped.  Returns (sender, receiver).
    """
    sim = Simulator(seed=0)
    holder = {}

    def lossy(segment: TcpSegment) -> bool:
        return any(a <= sim.now < b for a, b in loss_windows)

    def down(segment: TcpSegment) -> None:
        if lossy(segment):
            return
        sim.schedule(one_way_s, holder["receiver"].on_segment, segment)

    def up(ack: TcpSegment) -> None:
        if lossy(ack):
            return
        sim.schedule(one_way_s, holder["sender"].on_ack, ack)

    sender = TcpSender(
        sim, "f", "s", "c", transmit=down, params=TcpParams(), total_bytes=total_bytes
    )
    receiver = TcpReceiver(sim, "f", "c", "s", send_ack=up)
    holder["sender"], holder["receiver"] = sender, receiver
    sender.start()
    sim.run(until=horizon_s)
    return sender, receiver


# Loss windows: up to 3 episodes, each up to 8 s, within the first 40 s.
loss_window = st.tuples(
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
).map(lambda pair: (pair[0], pair[0] + pair[1]))


class TestUnderRandomBlackouts:
    @settings(max_examples=20, deadline=None)
    @given(windows=st.lists(loss_window, max_size=3))
    def test_transfer_always_completes(self, windows):
        sender, receiver = run_transfer(windows)
        assert receiver.bytes_delivered == 80_000
        assert sender.closed

    @settings(max_examples=20, deadline=None)
    @given(windows=st.lists(loss_window, max_size=3))
    def test_conservation_and_window_bounds(self, windows):
        sender, receiver = run_transfer(windows)
        assert receiver.bytes_delivered <= sender.snd_nxt
        assert sender.snd_una <= sender.snd_nxt
        assert 1.0 <= sender.cwnd <= sender.p.max_cwnd_segments + 1e-9
        assert sender.rto <= sender.p.rto_max_s

    @settings(max_examples=15, deadline=None)
    @given(windows=st.lists(loss_window, min_size=1, max_size=3))
    def test_receiver_never_delivers_out_of_order(self, windows):
        sim = Simulator(seed=1)
        delivered = []
        receiver = TcpReceiver(
            sim, "f", "c", "s", send_ack=lambda a: None,
            on_deliver=lambda n: delivered.append(receiver.rcv_nxt),
        )
        # Feed a randomized-but-valid segment pattern directly.
        import random

        rng = random.Random(42)
        segments = [
            TcpSegment("f", "s", "c", seq=i * 500, payload_bytes=500) for i in range(30)
        ]
        rng.shuffle(segments)
        for segment in segments:
            receiver.on_segment(segment)
        assert delivered == sorted(delivered)
        assert receiver.rcv_nxt == 15_000
