"""Unit tests for the sweep-fabric coordinator state machine and wiring.

The coordinator is a pure state machine (explicit ``now`` clocks), so
every fault path — expiry, reassignment, backoff, quarantine, duplicate
and stale completions — is driven here deterministically with hand-rolled
virtual time.  The wiring tests check ambient activation, the ``run_jobs``
hook, graceful fallback, and spec parsing.
"""

from __future__ import annotations

import warnings

import pytest

from repro.fabric import (
    FABRIC_ENV,
    FabricChaosPlan,
    InProcessFabric,
    activate,
    active_fabric,
    demo_jobs,
    parse_fabric_spec,
    resolve_fabric,
)
from repro.fabric.coordinator import CoordinatorState
from repro.runner.pool import TrialJob, TrialResult, run_jobs


def _double(x):
    return 2 * x


def _fail(x):
    raise ValueError(f"boom {x}")


def _jobs(n):
    return [TrialJob(_double, (i,), tag=("t", i)) for i in range(n)]


class TestLeasing:
    def test_submit_lease_complete_in_order(self):
        state = CoordinatorState(lease_ttl_s=10.0)
        batch = state.submit(_jobs(3))
        leases = [state.lease("w0", now=0.0) for _ in range(3)]
        assert [l.job_id for l in leases] == [0, 1, 2]
        assert state.lease("w0", now=0.0) is None  # queue drained
        # Complete out of order; results still come back in submission order.
        for lease in reversed(leases):
            disposition = state.complete(
                lease.lease_id, True, value=lease.job.run(), now=1.0
            )
            assert disposition == "accepted"
        results = state.results(batch)
        assert [r.value for r in results] == [0, 2, 4]
        assert [r.tag for r in results] == [("t", 0), ("t", 1), ("t", 2)]
        assert all(r.attempts == 1 for r in results)

    def test_results_none_until_drained(self):
        state = CoordinatorState()
        batch = state.submit(_jobs(1))
        assert state.results(batch) is None
        assert not state.batch_done(batch)

    def test_unknown_batch_raises(self):
        state = CoordinatorState()
        with pytest.raises(KeyError):
            state.batch_done(99)

    def test_heartbeat_extends_deadline(self):
        state = CoordinatorState(lease_ttl_s=10.0)
        state.submit(_jobs(1))
        lease = state.lease("w0", now=0.0)
        assert state.heartbeat("w0", [lease.lease_id], now=8.0) == {
            lease.lease_id: True
        }
        assert state.tick(now=12.0) == 0  # extended to 18, not expired
        assert state.tick(now=19.0) == 1

    def test_heartbeat_nack_for_unknown_or_foreign_lease(self):
        state = CoordinatorState(lease_ttl_s=10.0)
        state.submit(_jobs(1))
        lease = state.lease("w0", now=0.0)
        assert state.heartbeat("w1", [lease.lease_id], now=1.0) == {
            lease.lease_id: False
        }
        assert state.heartbeat("w0", [777], now=1.0) == {777: False}


class TestExpiryAndReassignment:
    def test_expired_lease_requeues_uncharged(self):
        state = CoordinatorState(lease_ttl_s=5.0)
        batch = state.submit(_jobs(1))
        first = state.lease("w0", now=0.0)
        assert state.tick(now=6.0) == 1  # w0 went dark
        second = state.lease("w1", now=6.0)
        assert second.job_id == first.job_id
        state.complete(second.lease_id, True, value=0, now=7.0)
        result = state.results(batch)[0]
        # The kill was infrastructure, not the trial's fault: attempts == 1,
        # indistinguishable from a first-try success.
        assert result.attempts == 1 and result.ok
        assert state.stats["reassignments"] == 1
        assert state.stats["leases_expired"] == 1
        assert state.stats["heartbeat_misses"] == 1

    def test_late_completion_salvaged(self):
        state = CoordinatorState(lease_ttl_s=5.0)
        batch = state.submit(_jobs(1))
        stalled = state.lease("w0", now=0.0)
        state.tick(now=6.0)  # reclaim
        reassigned = state.lease("w1", now=6.0)
        # The stalled worker finally answers: the job is still unfinished,
        # so the value is salvaged ("late") and the reassigned execution's
        # eventual completion becomes a counted duplicate.
        assert state.complete(stalled.lease_id, True, value=0, now=7.0) == "late"
        assert state.batch_done(batch)
        assert (
            state.complete(reassigned.lease_id, True, value=0, now=8.0)
            == "duplicate"
        )
        assert state.results(batch)[0].attempts == 1
        assert state.stats["stale_completions"] == 1
        assert state.stats["duplicate_completions"] == 1

    def test_duplicate_completion_is_idempotent(self):
        state = CoordinatorState(lease_ttl_s=10.0)
        batch = state.submit(_jobs(1))
        lease = state.lease("w0", now=0.0)
        assert state.complete(lease.lease_id, True, value=0, now=1.0) == "accepted"
        before = state.results(batch)[0]
        # An at-least-once transport redelivers the same completion.
        assert (
            state.complete(lease.lease_id, True, value=999, now=1.5) == "duplicate"
        )
        assert state.results(batch)[0] == before  # never double-applied
        assert state.stats["duplicate_completions"] == 1


class TestRetryAndQuarantine:
    def test_genuine_failure_backs_off_then_retries(self):
        state = CoordinatorState(lease_ttl_s=100.0, retries=2, backoff_base_s=4.0)
        batch = state.submit(_jobs(1))
        lease = state.lease("w0", now=0.0)
        state.complete(lease.lease_id, False, error="ValueError: boom", now=1.0)
        assert state.lease("w0", now=2.0) is None  # backoff gate holds
        assert state.next_wakeup(2.0) == pytest.approx(5.0)
        retry = state.lease("w0", now=5.5)
        assert retry is not None
        state.complete(retry.lease_id, True, value=7, now=6.0)
        result = state.results(batch)[0]
        assert result.ok and result.attempts == 2  # the failure was charged
        assert state.stats["retries"] == 1

    def test_quarantine_envelope_matches_serial(self):
        jobs = [TrialJob(_fail, (3,), tag=("t", 3))]
        serial = run_jobs(jobs, workers=1, retries=1)
        state = CoordinatorState(lease_ttl_s=100.0, retries=1, backoff_base_s=0.0)
        batch = state.submit(jobs)
        for now in (0.0, 1.0):
            lease = state.lease("w0", now=now)
            try:
                lease.job.run()
            except Exception as exc:
                state.complete(
                    lease.lease_id,
                    False,
                    error=f"{type(exc).__name__}: {exc}",
                    now=now,
                )
        assert state.stats["quarantined"] == 1
        assert state.results(batch) == serial

    def test_exponential_backoff_is_capped(self):
        state = CoordinatorState(
            lease_ttl_s=100.0, retries=10, backoff_base_s=1.0, backoff_cap_s=4.0
        )
        state.submit(_jobs(1))
        now = 0.0
        delays = []
        for _ in range(5):
            lease = state.lease("w0", now=now)
            state.complete(lease.lease_id, False, error="E", now=now)
            wake = state.next_wakeup(now)
            delays.append(wake - now)
            now = wake + 0.001
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]


class TestDedupeAndCache:
    def test_identical_jobs_lease_once_and_fan_out(self):
        # The content address covers the whole job (tag included), so two
        # truly identical submissions share one execution.
        job = TrialJob(_double, (5,), tag=("t", 5))
        state = CoordinatorState(lease_ttl_s=10.0)
        batch = state.submit([job, job])
        lease = state.lease("w0", now=0.0)
        assert state.lease("w0", now=0.0) is None  # only one execution
        state.complete(lease.lease_id, True, value=10, now=1.0)
        results = state.results(batch)
        assert [r.value for r in results] == [10, 10]
        assert state.stats["jobs_deduped"] == 1
        assert state.stats["leases_issued"] == 1

    def test_different_tags_do_not_dedupe(self):
        state = CoordinatorState(lease_ttl_s=10.0)
        state.submit(
            [TrialJob(_double, (5,), tag=("a", 5)), TrialJob(_double, (5,), tag=("b", 5))]
        )
        assert state.lease("w0", now=0.0) is not None
        assert state.lease("w0", now=0.0) is not None  # both lease separately
        assert state.stats["jobs_deduped"] == 0

    def test_cache_hit_resumes_without_leasing(self, tmp_path):
        from repro.cache import TrialCache

        cache = TrialCache(tmp_path, fingerprint="pin")
        jobs = _jobs(2)
        warm = CoordinatorState(cache=cache)
        warm_batch = warm.submit(jobs)
        for _ in range(2):
            lease = warm.lease("w0", now=0.0)
            warm.complete(lease.lease_id, True, value=lease.job.run(), now=1.0)
        finished = warm.results(warm_batch)
        # A restarted coordinator (fresh state, same cache) resumes from
        # cache hits: the batch is done before any worker leases anything.
        resumed = CoordinatorState(cache=cache)
        resumed_batch = resumed.submit(jobs)
        assert resumed.batch_done(resumed_batch)
        assert resumed.lease("w0", now=0.0) is None
        assert resumed.results(resumed_batch) == finished
        assert resumed.stats["cache_hits"] == 2


class TestSpecParsing:
    def test_local_variants(self):
        assert parse_fabric_spec("local").workers is None
        assert parse_fabric_spec("local:3").workers == 3
        fabric = parse_fabric_spec("local:2,chaos:7")
        assert fabric.workers == 2 and fabric.plan.seed == 7
        assert parse_fabric_spec("local").plan.is_noop()
        assert not fabric.plan.is_noop()

    def test_chaos_seed_argument_applies_when_spec_has_none(self):
        assert parse_fabric_spec("local", chaos_seed=9).plan.seed == 9
        # ...but an explicit chaos clause wins.
        assert parse_fabric_spec("chaos:3", chaos_seed=9).plan.seed == 3

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_fabric_spec("remote:foo")
        with pytest.raises(ValueError):
            parse_fabric_spec("")

    def test_http_spec_builds_client(self):
        fabric = parse_fabric_spec("http://127.0.0.1:9999")
        assert fabric.client.port == 9999

    def test_resolve_from_environment(self, monkeypatch):
        monkeypatch.setenv(FABRIC_ENV, "local:4")
        fabric = resolve_fabric()
        assert isinstance(fabric, InProcessFabric) and fabric.workers == 4
        monkeypatch.setenv(FABRIC_ENV, "nonsense")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_fabric() is None
        assert any("REPRO_FABRIC" in str(w.message) for w in caught)

    def test_forced_off(self, monkeypatch):
        monkeypatch.setenv(FABRIC_ENV, "local")
        assert resolve_fabric(False) is None


class TestAmbientWiring:
    def test_activation_stack(self):
        fabric = InProcessFabric(workers=1)
        assert active_fabric() is None
        with activate(fabric):
            assert active_fabric() is fabric
        assert active_fabric() is None

    def test_run_jobs_routes_through_active_fabric(self):
        fabric = InProcessFabric(workers=2)
        jobs = _jobs(4)
        serial = run_jobs(_jobs(4), workers=1)
        with activate(fabric):
            routed = run_jobs(jobs)
        assert routed == serial
        assert "4 job(s)" in fabric.describe()  # proof it actually ran there

    def test_fabric_masked_during_job_execution(self):
        # A job that itself fans out must hit the plain pool, not recurse.
        seen = []

        def probing_job():
            seen.append(active_fabric())
            return 1

        with activate(InProcessFabric(workers=1)):
            run_jobs([TrialJob(probing_job)])
        assert seen == [None]

    def test_broken_fabric_falls_back_to_pool(self):
        class BrokenFabric:
            def run(self, jobs, **kwargs):
                raise ConnectionError("coordinator unreachable")

        serial = run_jobs(_jobs(3), workers=1)
        with activate(BrokenFabric()):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                results = run_jobs(_jobs(3))
        assert results == serial
        assert any("falling back" in str(w.message) for w in caught)


class TestInProcessFabric:
    def test_matches_serial_without_chaos(self):
        results = InProcessFabric(workers=3).run(demo_jobs(5))
        assert results == run_jobs(demo_jobs(5), workers=1)

    def test_empty_batch(self):
        assert InProcessFabric().run([]) == []

    def test_telemetry_accumulates_across_batches(self):
        fabric = InProcessFabric(workers=1)
        fabric.run(demo_jobs(2))
        fabric.run(demo_jobs(3))
        counters = dict(fabric.snapshot().counters)
        assert counters["fabric.jobs_completed"] == 5
