"""Property-based tests on the analytical framework's invariants."""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.join_model import (
    JoinModelParams,
    expected_join_fraction,
    join_probability,
    join_probability_series,
    q_round_pair,
    q_segment,
)
from repro.model.optimizer import ChannelState, optimal_schedule

BASE = JoinModelParams(beta_min_s=0.5, beta_max_s=5.0)

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
small_ints = st.integers(min_value=1, max_value=8)


class TestQFunctions:
    @settings(max_examples=60, deadline=None)
    @given(f=fractions, m=small_ints, n=small_ints, k=st.integers(min_value=1, max_value=6))
    def test_q_segment_is_a_probability(self, f, m, n, k):
        value = q_segment(BASE, f, m, n, k)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(f=fractions, m=small_ints, n=small_ints)
    def test_q_round_pair_is_a_probability(self, f, m, n):
        value = q_round_pair(BASE, f, m, n)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(f=st.floats(min_value=0.05, max_value=1.0, allow_nan=False), m=small_ints, n=small_ints)
    def test_loss_only_hurts(self, f, m, n):
        """More loss ⇒ higher probability that no request succeeds."""
        lossless = q_round_pair(replace(BASE, loss_rate=0.0), f, m, n)
        lossy = q_round_pair(replace(BASE, loss_rate=0.3), f, m, n)
        assert lossy >= lossless - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(f=fractions)
    def test_wider_on_window_never_hurts_a_segment(self, f):
        """q_segment is non-decreasing in the channel fraction."""
        smaller = q_segment(BASE, f * 0.5, 1, 1, 1)
        larger = q_segment(BASE, f, 1, 1, 1)
        assert larger >= smaller - 1e-12


class TestJoinProbabilityProperties:
    @settings(max_examples=40, deadline=None)
    @given(f=fractions, rounds=st.integers(min_value=1, max_value=10))
    def test_series_monotone_and_bounded(self, f, rounds):
        series = join_probability_series(BASE, f, rounds * BASE.period_s)
        assert all(0.0 <= p <= 1.0 for p in series)
        assert all(b >= a - 1e-12 for a, b in zip(series, series[1:]))

    @settings(max_examples=30, deadline=None)
    @given(
        f=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        h1=st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
        h2=st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
    )
    def test_probability_decreasing_in_loss(self, f, h1, h2):
        lo, hi = sorted((h1, h2))
        p_lo_loss = join_probability(replace(BASE, loss_rate=lo), f, 4.0)
        p_hi_loss = join_probability(replace(BASE, loss_rate=hi), f, 4.0)
        assert p_lo_loss >= p_hi_loss - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(f=st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    def test_shorter_beta_never_hurts(self, f):
        quick = join_probability(BASE.with_beta_max(1.0), f, 4.0)
        slow = join_probability(BASE.with_beta_max(10.0), f, 4.0)
        assert quick >= slow - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(f=fractions, rounds=st.integers(min_value=1, max_value=12))
    def test_expected_fraction_bounded_by_final_probability(self, f, rounds):
        """The time-averaged CDF cannot exceed its final value."""
        horizon = rounds * BASE.period_s
        series = join_probability_series(BASE, f, horizon)
        assert expected_join_fraction(BASE, f, horizon) <= series[-1] + 1e-9


class TestOptimizerProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        j1=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        a2=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        horizon=st.floats(min_value=5.0, max_value=40.0, allow_nan=False),
    )
    def test_solution_always_feasible(self, j1, a2, horizon):
        channels = [
            ChannelState(1, joined_bps=j1 * 11e6),
            ChannelState(2, available_bps=a2 * 11e6),
        ]
        result = optimal_schedule(
            channels, horizon, params=BASE, grid_steps=6, refine_rounds=1
        )
        total = sum(result.fractions.values())
        assert total <= 1.0 + 1e-9
        assert all(0.0 <= f <= 1.0 for f in result.fractions.values())
        assert result.total_throughput_bps <= 11e6 + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(j1=st.floats(min_value=0.1, max_value=1.0, allow_nan=False))
    def test_more_joined_bandwidth_never_lowers_throughput(self, j1):
        base_channels = [ChannelState(1, joined_bps=0.5 * j1 * 11e6)]
        better_channels = [ChannelState(1, joined_bps=j1 * 11e6)]
        base = optimal_schedule(base_channels, 20.0, params=BASE, grid_steps=8, refine_rounds=1)
        better = optimal_schedule(better_channels, 20.0, params=BASE, grid_steps=8, refine_rounds=1)
        assert better.total_throughput_bps >= base.total_throughput_bps - 1e-6
