"""Tests for the unified experiment spec→result API and its CLI front.

Every experiment module now exposes ``run_spec(spec) -> TrialResult`` and
registers itself in ``repro.experiments.api.REGISTRY``; the historical
``run(...)`` signatures survive as deprecation shims that forward to the
same implementation.  These tests pin the registry, the envelope
semantics, the shim equivalence, and the shared CLI flag vocabulary.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Tuple

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.experiments import (
    ap_density,
    appendix_knapsack,
    fig3_beta_sensitivity,
    fig4_optimal_schedule,
    table1_switch_latency,
)
from repro.experiments.api import (
    REGISTRY,
    Experiment,
    ExperimentSpec,
    experiment_names,
    get_experiment,
    run_experiment,
    spec_from_options,
    to_jsonable,
)
from repro.runner import TrialResult


class TestRegistry:
    def test_every_cli_experiment_is_registered(self):
        assert set(EXPERIMENTS) == set(REGISTRY)

    def test_entries_are_well_formed(self):
        for name, experiment in REGISTRY.items():
            assert experiment.name == name
            assert issubclass(experiment.spec_cls, ExperimentSpec)
            assert callable(experiment.runner)
            assert experiment.summary, name

    def test_lookup_helpers(self):
        assert experiment_names() == list(REGISTRY)
        assert get_experiment("fig3") is REGISTRY["fig3"]
        assert get_experiment("nope") is None

    def test_run_experiment_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_experiment("nope")


class TestEnvelope:
    def test_none_spec_uses_defaults(self):
        envelope = fig4_optimal_schedule.run_spec()
        assert envelope.ok
        assert envelope.tag[0] == "fig4"
        assert envelope.tag[1] == fig4_optimal_schedule.Fig4Spec()

    def test_wrong_spec_type_is_error_envelope(self):
        envelope = fig4_optimal_schedule.run_spec(
            fig3_beta_sensitivity.Fig3Spec()
        )
        assert not envelope.ok
        assert "Fig4Spec" in envelope.error

    def test_runner_exception_becomes_error_envelope(self):
        @dataclass(frozen=True)
        class BoomSpec(ExperimentSpec):
            pass

        def _boom(spec):
            raise RuntimeError("kaboom")

        from repro.experiments.api import _execute

        experiment = Experiment("boom", BoomSpec, _boom)
        envelope = _execute(experiment, BoomSpec())
        assert not envelope.ok
        assert envelope.error == "RuntimeError: kaboom"

    def test_unwrap_restores_raise_semantics(self):
        envelope = TrialResult(ok=False, error="bad")
        with pytest.raises(Exception):
            envelope.unwrap()


class TestSpecVocabulary:
    def test_seed_property_is_first_seed(self):
        assert ExperimentSpec(seeds=(7, 9)).seed == 7
        assert ExperimentSpec(seeds=()).seed == 0

    def test_spec_from_options_drops_none_and_unknown(self):
        spec = spec_from_options(
            fig3_beta_sensitivity.Fig3Spec,
            seeds=None,
            duration_s=None,
            workers=3,
            no_such_field=42,
        )
        assert spec == fig3_beta_sensitivity.Fig3Spec(workers=3)

    def test_spec_from_options_applies_overrides(self):
        spec = spec_from_options(
            ap_density.DensitySpec, seeds=(5,), duration_s=30.0
        )
        assert spec.seeds == (5,)
        assert spec.duration_s == 30.0
        assert spec.towns == ap_density.DensitySpec().towns


def _whole_result(result):
    return result


def _knapsack_values(result):
    # Wall-clock timings vary run to run; the solver values are the
    # deterministic part.
    return [
        (r.n_aps, r.dp_value, r.greedy_value, r.brute_value) for r in result.rows
    ]


CHEAP_SHIMS = [
    # (module, shim kwargs, spec, projection) — analytic or sub-second.
    (fig3_beta_sensitivity, {}, None, _whole_result),
    (fig4_optimal_schedule, {}, None, _whole_result),
    (
        appendix_knapsack,
        {"sizes": (4, 8), "seed": 2},
        appendix_knapsack.KnapsackSpec(sizes=(4, 8), seeds=(2,)),
        _knapsack_values,
    ),
    (
        table1_switch_latency,
        {"interface_counts": (0, 2), "switches": 10, "seed": 1},
        table1_switch_latency.Table1Spec(
            interface_counts=(0, 2), switches=10, seeds=(1,)
        ),
        _whole_result,
    ),
]


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "module,kwargs,spec,project",
        CHEAP_SHIMS,
        ids=lambda p: getattr(p, "__name__", ""),
    )
    def test_shim_warns_and_matches_run_spec(self, module, kwargs, spec, project):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim_result = module.run(**kwargs)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        ), "shim did not warn"
        assert any("deprecated" in str(w.message) for w in caught)
        envelope = module.run_spec(spec)
        assert envelope.ok
        assert project(envelope.value) == project(shim_result)

    def test_run_spec_emits_no_deprecation_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fig3_beta_sensitivity.run_spec()
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )


class TestToJsonable:
    def test_nested_dataclasses_and_tuples(self):
        spec = appendix_knapsack.KnapsackSpec(sizes=(1, 2))
        data = to_jsonable(spec)
        assert data["sizes"] == [1, 2]
        assert data["seeds"] == [0, 1]
        json.dumps(data)  # round-trippable

    def test_dict_keys_stringified_and_fallback_repr(self):
        data = to_jsonable({1: object()})
        assert list(data) == ["1"]
        assert isinstance(data["1"], str)
        json.dumps(data)


class TestCliFlags:
    def test_seed_and_duration_flags_flow_into_spec(self, capsys):
        assert main(["table1", "--seed", "4", "--duration", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_trials_flag_expands_seed_range(self):
        from repro.__main__ import _seeds_from_flags

        assert _seeds_from_flags(None, None) is None
        assert _seeds_from_flags(5, None) == (5,)
        assert _seeds_from_flags(None, 3) == (0, 1, 2)
        assert _seeds_from_flags(4, 3) == (4, 5, 6)

    def test_trials_must_be_positive(self, capsys):
        assert main(["fig3", "--trials", "0"]) == 2
        assert "--trials" in capsys.readouterr().err

    def test_json_out_writes_envelope(self, tmp_path, capsys):
        out = tmp_path / "fig3.json"
        assert main(["fig3", "--json-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["tag"][0] == "fig3"
        assert "Fig3" in capsys.readouterr().out

    def test_failed_envelope_exits_nonzero(self, capsys, monkeypatch):
        def _boom(spec):
            raise RuntimeError("kaboom")

        experiment = REGISTRY["fig3"]
        monkeypatch.setitem(
            REGISTRY,
            "fig3",
            Experiment("fig3", experiment.spec_cls, _boom, experiment.summary),
        )
        assert main(["fig3"]) == 1
        assert "kaboom" in capsys.readouterr().err
