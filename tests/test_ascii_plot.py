"""Tests for the terminal plotting helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.ascii_plot import (
    bar_chart,
    cdf_plot,
    heatmap,
    histogram,
    sparkline,
)


class TestSparkline:
    def test_monotone_series_rises(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant_series_is_flat(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_empty_series(self):
        assert sparkline([]) == ""

    def test_nan_rendered_as_gap(self):
        line = sparkline([1.0, math.nan, 2.0])
        assert line[1] == " "
        assert len(line) == 3

    def test_length_matches_input(self):
        assert len(sparkline(list(range(17)))) == 17


class TestBarChart:
    def test_values_annotated(self):
        chart = bar_chart(["a", "b"], [10.0, 20.0], unit="x")
        assert "10.0x" in chart and "20.0x" in chart

    def test_bars_proportional(self):
        chart = bar_chart(["small", "large"], [1.0, 10.0], width=20)
        lines = chart.splitlines()
        small_bar = lines[0].count("█")
        large_bar = lines[1].count("█")
        assert large_bar == 20 and 1 <= small_bar <= 3

    def test_zero_value_has_no_bar(self):
        chart = bar_chart(["zero", "one"], [0.0, 5.0])
        assert chart.splitlines()[0].count("█") == 0

    def test_title_included(self):
        assert bar_chart(["a"], [1.0], title="Title").startswith("Title")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_nan_value_shown(self):
        assert "nan" in bar_chart(["a"], [math.nan])


class TestHistogram:
    def test_counts_sum_preserved(self):
        values = [0.5, 1.5, 1.6, 2.5, 2.6, 2.7]
        text = histogram(values, bins=3, width=10)
        shown = [float(line.rsplit(" ", 1)[-1].replace(",", "")) for line in text.splitlines()]
        assert sum(shown) == len(values)

    def test_empty_data(self):
        assert histogram([], title="empty") == "empty"

    def test_bounds_filter(self):
        text = histogram([1.0, 100.0], bins=2, bounds=(0.0, 10.0))
        shown = [float(line.rsplit(" ", 1)[-1].replace(",", "")) for line in text.splitlines()]
        assert sum(shown) == 1

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_constant_data_does_not_crash(self):
        assert histogram([5.0] * 10, bins=4)


class TestHeatmap:
    def test_extremes_get_min_and_max_shades(self):
        text = heatmap(["a", "b"], ["x", "y"], [[0.0, 10.0], [5.0, 10.0]])
        lines = text.splitlines()
        assert "██" in lines[2]  # both 10.0 cells shade full
        assert "██" not in lines[1].split()[0]

    def test_shading_is_global_across_rows(self):
        # Row maxima differ; the single global max must be the only full
        # shade.
        text = heatmap(["a", "b"], ["x"], [[1.0], [100.0]])
        assert text.count("██") == 1

    def test_values_rendered_in_cells(self):
        text = heatmap(["row"], ["col"], [[42.5]], unit="K")
        assert "42.5K" in text

    def test_nan_cell_is_dash(self):
        text = heatmap(["r"], ["x", "y"], [[math.nan, 1.0]])
        assert "-" in text.splitlines()[-1]

    def test_title_and_header(self):
        text = heatmap(["r"], ["c1", "c2"], [[1.0, 2.0]], title="grid")
        lines = text.splitlines()
        assert lines[0] == "grid"
        assert "c1" in lines[1] and "c2" in lines[1]

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            heatmap(["a"], ["x"], [[1.0], [2.0]])
        with pytest.raises(ValueError):
            heatmap(["a"], ["x", "y"], [[1.0]])

    def test_constant_grid_does_not_crash(self):
        assert heatmap(["a"], ["x", "y"], [[2.0, 2.0]])


class TestCdfPlot:
    def test_fractions_reach_one(self):
        text = cdf_plot([1.0, 2.0, 3.0, 4.0], points=4)
        assert "1.0" in text.splitlines()[-1]

    def test_quantile_labels_sorted(self):
        text = cdf_plot(list(range(100)), points=5)
        quantiles = [float(line.split("<=")[1].split("|")[0]) for line in text.splitlines()]
        assert quantiles == sorted(quantiles)

    def test_empty_data(self):
        assert cdf_plot([], title="none") == "none"

    def test_invalid_points_rejected(self):
        with pytest.raises(ValueError):
            cdf_plot([1.0], points=0)
