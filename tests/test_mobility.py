"""Unit tests for mobility models."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.mobility import (
    LinearMobility,
    LoopMobility,
    StaticPosition,
    VariableSpeedLoopMobility,
    circle_point,
    ring_distance,
)


class TestStaticPosition:
    def test_never_moves(self):
        pos = StaticPosition(3.0, 4.0)
        assert pos.position_at(0.0) == (3.0, 4.0)
        assert pos.position_at(1e6) == (3.0, 4.0)


class TestLinearMobility:
    def test_position_advances_linearly(self):
        mob = LinearMobility(speed_mps=10.0, start_x=5.0)
        assert mob.position_at(0.0) == (5.0, 0.0)
        assert mob.position_at(2.0) == (25.0, 0.0)

    def test_y_offset_preserved(self):
        mob = LinearMobility(speed_mps=1.0, y=7.0)
        assert mob.position_at(3.0) == (3.0, 7.0)

    def test_zero_speed_is_static(self):
        mob = LinearMobility(speed_mps=0.0, start_x=1.0)
        assert mob.position_at(100.0) == (1.0, 0.0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            LinearMobility(speed_mps=-1.0)

    def test_time_in_range_is_two_r_over_v(self):
        mob = LinearMobility(speed_mps=10.0)
        assert mob.time_in_range_of(500.0, 100.0) == pytest.approx(20.0)

    def test_time_in_range_zero_speed(self):
        inside = LinearMobility(speed_mps=0.0, start_x=0.0)
        assert inside.time_in_range_of(50.0, 100.0) == math.inf
        outside = LinearMobility(speed_mps=0.0, start_x=0.0)
        assert outside.time_in_range_of(500.0, 100.0) == 0.0


class TestCirclePoint:
    def test_start_is_on_positive_x_axis(self):
        x, y = circle_point(0.0, 1000.0)
        radius = 1000.0 / (2 * math.pi)
        assert x == pytest.approx(radius)
        assert y == pytest.approx(0.0)

    def test_full_lap_returns_to_start(self):
        start = circle_point(0.0, 1000.0)
        lap = circle_point(1000.0, 1000.0)
        assert lap[0] == pytest.approx(start[0])
        assert lap[1] == pytest.approx(start[1], abs=1e-9)

    def test_nearby_arc_positions_are_nearby_in_space(self):
        a = circle_point(100.0, 4000.0)
        b = circle_point(110.0, 4000.0)
        assert math.hypot(a[0] - b[0], a[1] - b[1]) == pytest.approx(10.0, rel=0.01)

    @settings(max_examples=50, deadline=None)
    @given(arc=st.floats(min_value=0, max_value=10000, allow_nan=False))
    def test_always_on_the_circle(self, arc):
        loop = 4000.0
        x, y = circle_point(arc, loop)
        assert math.hypot(x, y) == pytest.approx(loop / (2 * math.pi))


class TestLoopMobility:
    def test_wraps_after_full_lap(self):
        mob = LoopMobility(speed_mps=10.0, loop_length_m=1000.0)
        assert mob.arc_position_at(0.0) == pytest.approx(0.0)
        assert mob.arc_position_at(100.0) == pytest.approx(0.0)
        assert mob.arc_position_at(150.0) == pytest.approx(500.0)

    def test_lap_time(self):
        mob = LoopMobility(speed_mps=10.0, loop_length_m=4000.0)
        assert mob.lap_time() == pytest.approx(400.0)

    def test_lap_time_zero_speed(self):
        assert LoopMobility(0.0, 1000.0).lap_time() == math.inf

    def test_position_continuity_across_lap_boundary(self):
        mob = LoopMobility(speed_mps=10.0, loop_length_m=1000.0)
        before = mob.position_at(99.95)
        after = mob.position_at(100.05)
        assert math.hypot(before[0] - after[0], before[1] - after[1]) < 2.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LoopMobility(-1.0, 100.0)
        with pytest.raises(ValueError):
            LoopMobility(1.0, 0.0)


class TestVariableSpeedLoopMobility:
    PROFILE = [(60.0, 3.0), (60.0, 15.0)]

    def test_speed_follows_profile(self):
        mob = VariableSpeedLoopMobility(self.PROFILE, 4000.0)
        assert mob.speed_at(0.0) == 3.0
        assert mob.speed_at(59.9) == 3.0
        assert mob.speed_at(60.0) == 15.0
        assert mob.speed_at(121.0) == 3.0  # profile repeats

    def test_arc_integrates_profile_exactly(self):
        mob = VariableSpeedLoopMobility(self.PROFILE, 1e6)
        # 60 s at 3 + 60 s at 15 = 1080 m per 120 s cycle.
        assert mob.arc_position_at(120.0) == pytest.approx(1080.0)
        assert mob.arc_position_at(30.0) == pytest.approx(90.0)
        assert mob.arc_position_at(90.0) == pytest.approx(180.0 + 450.0)

    def test_wraps_around_loop(self):
        mob = VariableSpeedLoopMobility([(10.0, 100.0)], 500.0)
        assert mob.arc_position_at(10.0) == pytest.approx(500.0 % 500.0)
        assert mob.arc_position_at(7.5) == pytest.approx(250.0)

    def test_position_continuity_across_segment_boundary(self):
        mob = VariableSpeedLoopMobility(self.PROFILE, 4000.0)
        before = mob.position_at(59.99)
        after = mob.position_at(60.01)
        assert math.hypot(before[0] - after[0], before[1] - after[1]) < 1.0

    def test_start_arc_offset(self):
        mob = VariableSpeedLoopMobility(self.PROFILE, 4000.0, start_arc_m=100.0)
        assert mob.arc_position_at(0.0) == pytest.approx(100.0)

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            VariableSpeedLoopMobility([], 1000.0)
        with pytest.raises(ValueError):
            VariableSpeedLoopMobility([(0.0, 5.0)], 1000.0)
        with pytest.raises(ValueError):
            VariableSpeedLoopMobility([(10.0, -1.0)], 1000.0)
        with pytest.raises(ValueError):
            VariableSpeedLoopMobility([(10.0, 1.0)], 0.0)

    @settings(max_examples=30, deadline=None)
    @given(t=st.floats(min_value=0, max_value=10_000, allow_nan=False))
    def test_arc_always_within_loop(self, t):
        mob = VariableSpeedLoopMobility(self.PROFILE, 4000.0)
        assert 0.0 <= mob.arc_position_at(t) < 4000.0


class TestRingDistance:
    def test_short_way_around(self):
        assert ring_distance(10.0, 990.0, 1000.0) == pytest.approx(20.0)

    def test_same_point(self):
        assert ring_distance(5.0, 5.0, 100.0) == 0.0

    def test_half_way_is_maximum(self):
        assert ring_distance(0.0, 500.0, 1000.0) == pytest.approx(500.0)

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.floats(min_value=0, max_value=1000, allow_nan=False),
        b=st.floats(min_value=0, max_value=1000, allow_nan=False),
    )
    def test_symmetric_and_bounded(self, a, b):
        d = ring_distance(a, b, 1000.0)
        assert d == pytest.approx(ring_distance(b, a, 1000.0))
        assert 0.0 <= d <= 500.0
