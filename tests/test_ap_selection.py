"""Unit tests for utility tracking, selection, and the Appendix-A knapsack."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ap_selection import (
    MIN_USABLE_RSSI_DBM,
    VA_ASSOCIATED,
    VB_LEASED,
    VC_VERIFIED,
    ApOption,
    JoinOutcome,
    UtilityTracker,
    knapsack_select_bruteforce,
    knapsack_select_dp,
    knapsack_select_greedy,
    select_aps,
)
from repro.sim.nic import ScanEntry


def entry(bssid, rssi=-50.0, channel=1):
    return ScanEntry(bssid=bssid, ssid="", channel=channel, rssi=rssi, last_seen=0.0)


class TestUtilityTracker:
    def test_unseen_ap_bootstraps_at_maximum(self):
        tracker = UtilityTracker()
        assert tracker.utility("new-ap") == VC_VERIFIED

    def test_staged_rewards_ordered(self):
        assert 0.0 < VA_ASSOCIATED < VB_LEASED < VC_VERIFIED

    def test_failure_drops_utility(self):
        tracker = UtilityTracker()
        tracker.record("ap", JoinOutcome.FAILED)
        assert tracker.utility("ap") == 0.0

    def test_recency_weighting_prefers_recent_outcomes(self):
        tracker = UtilityTracker(alpha=0.6)
        tracker.record("ap", JoinOutcome.VERIFIED)
        tracker.record("ap", JoinOutcome.FAILED)
        recent_fail = tracker.utility("ap")
        tracker2 = UtilityTracker(alpha=0.6)
        tracker2.record("ap", JoinOutcome.FAILED)
        tracker2.record("ap", JoinOutcome.VERIFIED)
        recent_ok = tracker2.utility("ap")
        assert recent_ok > recent_fail

    def test_attempt_counter(self):
        tracker = UtilityTracker()
        tracker.record("ap", JoinOutcome.VERIFIED)
        tracker.record("ap", JoinOutcome.LEASED)
        assert tracker.attempts("ap") == 2
        assert tracker.attempts("other") == 0

    def test_known_set(self):
        tracker = UtilityTracker()
        tracker.record("a", JoinOutcome.VERIFIED)
        assert tracker.known() == {"a"}

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            UtilityTracker(alpha=0.0)

    @settings(max_examples=40, deadline=None)
    @given(
        outcomes=st.lists(
            st.sampled_from(
                [JoinOutcome.FAILED, JoinOutcome.ASSOCIATED, JoinOutcome.LEASED, JoinOutcome.VERIFIED]
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_utility_stays_in_reward_range(self, outcomes):
        tracker = UtilityTracker()
        for outcome in outcomes:
            tracker.record("ap", outcome)
        assert 0.0 <= tracker.utility("ap") <= VC_VERIFIED


class TestSelectAps:
    def test_prefers_higher_utility(self):
        tracker = UtilityTracker()
        tracker.record("bad", JoinOutcome.FAILED)
        tracker.record("good", JoinOutcome.VERIFIED)
        picks = select_aps([entry("bad", rssi=-40), entry("good", rssi=-70)], tracker, 1)
        assert picks[0].bssid == "good"

    def test_rssi_breaks_ties(self):
        tracker = UtilityTracker()
        picks = select_aps([entry("far", rssi=-80), entry("near", rssi=-45)], tracker, 2)
        assert [p.bssid for p in picks] == ["near", "far"]

    def test_bootstrap_means_new_ap_considered_at_least_once(self):
        tracker = UtilityTracker()
        tracker.record("proven", JoinOutcome.LEASED)  # 0.6 < bootstrap 1.0
        picks = select_aps([entry("proven"), entry("unseen")], tracker, 1)
        assert picks[0].bssid == "unseen"

    def test_exclusion_set_respected(self):
        tracker = UtilityTracker()
        picks = select_aps([entry("a"), entry("b")], tracker, 2, exclude={"a"})
        assert [p.bssid for p in picks] == ["b"]

    def test_weak_signal_filtered(self):
        tracker = UtilityTracker()
        picks = select_aps([entry("weak", rssi=MIN_USABLE_RSSI_DBM - 1)], tracker, 1)
        assert picks == []

    def test_count_limits_results(self):
        tracker = UtilityTracker()
        picks = select_aps([entry(f"ap{i}") for i in range(5)], tracker, 3)
        assert len(picks) == 3

    def test_zero_count_returns_empty(self):
        assert select_aps([entry("a")], UtilityTracker(), 0) == []

    def test_deterministic_order_for_exact_ties(self):
        tracker = UtilityTracker()
        picks = select_aps([entry("b", rssi=-50), entry("a", rssi=-50)], tracker, 2)
        assert [p.bssid for p in picks] == ["a", "b"]


class TestKnapsack:
    def test_dp_matches_brute_force_on_known_instance(self):
        options = [
            ApOption("a", value=10.0, cost=5.0),
            ApOption("b", value=6.0, cost=3.0),
            ApOption("c", value=5.0, cost=3.0),
        ]
        dp_value, dp_set = knapsack_select_dp(options, budget=6.0, resolution=1.0)
        bf_value, _ = knapsack_select_bruteforce(options, budget=6.0)
        assert dp_value == pytest.approx(bf_value) == pytest.approx(11.0)
        assert {o.name for o in dp_set} == {"b", "c"}

    def test_greedy_can_be_suboptimal(self):
        options = [
            ApOption("ratio-king", value=6.0, cost=1.0),
            ApOption("big", value=50.0, cost=10.0),
        ]
        greedy_value, _ = knapsack_select_greedy(options, budget=10.0)
        dp_value, _ = knapsack_select_dp(options, budget=10.0, resolution=1.0)
        assert greedy_value < dp_value

    def test_empty_options(self):
        assert knapsack_select_dp([], 10.0)[0] == 0.0
        assert knapsack_select_bruteforce([], 10.0)[0] == 0.0
        assert knapsack_select_greedy([], 10.0)[0] == 0.0

    def test_zero_budget_selects_nothing_with_positive_costs(self):
        options = [ApOption("a", value=5.0, cost=1.0)]
        value, chosen = knapsack_select_dp(options, budget=0.0, resolution=1.0)
        assert value == 0.0 and chosen == []

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            ApOption("x", value=-1.0, cost=1.0)
        with pytest.raises(ValueError):
            knapsack_select_dp([], budget=-1.0)
        with pytest.raises(ValueError):
            knapsack_select_dp([], budget=1.0, resolution=0.0)

    def test_dp_solution_respects_budget(self):
        options = [ApOption(f"o{i}", value=float(i + 1), cost=float(i + 1)) for i in range(6)]
        _, chosen = knapsack_select_dp(options, budget=7.0, resolution=1.0)
        assert sum(o.cost for o in chosen) <= 7.0

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),  # value
                st.integers(min_value=1, max_value=8),   # cost (grid aligned)
            ),
            min_size=1,
            max_size=8,
        ),
        budget=st.integers(min_value=0, max_value=20),
    )
    def test_dp_equals_brute_force_property(self, data, budget):
        options = [
            ApOption(f"o{i}", value=float(v), cost=float(c))
            for i, (v, c) in enumerate(data)
        ]
        dp_value, dp_chosen = knapsack_select_dp(options, float(budget), resolution=1.0)
        bf_value, _ = knapsack_select_bruteforce(options, float(budget))
        assert dp_value == pytest.approx(bf_value)
        assert sum(o.cost for o in dp_chosen) <= budget + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=10,
        ),
        budget=st.integers(min_value=0, max_value=25),
    )
    def test_greedy_never_beats_dp(self, data, budget):
        options = [
            ApOption(f"o{i}", value=float(v), cost=float(c))
            for i, (v, c) in enumerate(data)
        ]
        greedy_value, greedy_chosen = knapsack_select_greedy(options, float(budget))
        dp_value, _ = knapsack_select_dp(options, float(budget), resolution=1.0)
        assert greedy_value <= dp_value + 1e-9
        assert sum(o.cost for o in greedy_chosen) <= budget + 1e-9
