"""Tests for the frame tracer."""

from __future__ import annotations

import pytest

from repro.core.spider import SpiderClient
from repro.sim.frames import FrameKind
from repro.sim.mobility import StaticPosition
from repro.sim.tracing import FrameTrace

from conftest import make_lab_ap


def run_joined_client(sim, world, trace_kwargs=None, duration=5.0):
    ap = make_lab_ap(world)
    trace = FrameTrace(world.medium, **(trace_kwargs or {}))
    client = SpiderClient.single_channel_multi_ap(
        sim, world, StaticPosition(0, 0), channel=1, num_interfaces=1
    )
    client.start()
    sim.run(until=duration)
    return ap, trace, client


class TestRecording:
    def test_captures_the_join_handshake(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        kinds = trace.counts_by_kind()
        for kind in (
            FrameKind.BEACON,
            FrameKind.AUTH_REQUEST,
            FrameKind.AUTH_RESPONSE,
            FrameKind.ASSOC_REQUEST,
            FrameKind.ASSOC_RESPONSE,
            FrameKind.DHCP,
            FrameKind.DATA,
        ):
            assert kinds.get(kind, 0) >= 1, kind

    def test_kind_filter(self, sim, world):
        ap, trace, client = run_joined_client(
            sim, world, trace_kwargs={"kinds": [FrameKind.BEACON]}
        )
        assert set(trace.counts_by_kind()) == {FrameKind.BEACON}

    def test_station_filter(self, sim, world):
        ap, trace, client = run_joined_client(
            sim, world, trace_kwargs={"stations": ["nonexistent"]}
        )
        assert len(trace) == 0

    def test_records_are_time_ordered(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        times = [r.time for r in trace.records]
        assert times == sorted(times)

    def test_stop_halts_recording(self, sim, world):
        ap, trace, client = run_joined_client(sim, world, duration=2.0)
        trace.stop()
        count = len(trace)
        sim.run(until=4.0)
        assert len(trace) == count

    def test_ring_buffer_caps_memory(self, sim, world):
        ap, trace, client = run_joined_client(
            sim, world, trace_kwargs={"max_records": 10}, duration=5.0
        )
        assert len(trace) == 10
        assert trace.dropped_records > 0

    def test_invalid_cap_rejected(self, sim, world):
        with pytest.raises(ValueError):
            FrameTrace(world.medium, max_records=0)


class TestAnalysis:
    def test_conversation_extraction(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        iface_mac = client.nic.interfaces[0].mac
        convo = trace.conversation(iface_mac, ap.bssid)
        assert convo
        assert all(
            {r.src, r.dst} <= {iface_mac, ap.bssid} for r in convo
        )

    def test_between_window(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        window = trace.between(1.0, 2.0)
        assert all(1.0 <= r.time < 2.0 for r in window)

    def test_bytes_by_channel(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        totals = trace.bytes_by_channel()
        assert set(totals) == {1}
        assert totals[1] > 0

    def test_counts_by_station_includes_ap(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        assert trace.counts_by_station().get(ap.bssid, 0) > 0

    def test_render_is_textual(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        text = trace.render(limit=5)
        assert "frame trace" in text
        assert len(text.splitlines()) <= 6

    def test_clear_resets(self, sim, world):
        ap, trace, client = run_joined_client(sim, world)
        trace.clear()
        assert len(trace) == 0
