"""Tests for the `python -m repro` command-line entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_experiment_is_callable(self):
        for name, runner in EXPERIMENTS.items():
            assert callable(runner), name

    def test_fig3_runs_end_to_end(self, capsys):
        assert main(["fig3"]) == 0
        assert "Fig3" in capsys.readouterr().out

    def test_knapsack_runs_end_to_end(self, capsys):
        assert main(["knapsack"]) == 0
        assert "Appendix A" in capsys.readouterr().out
