"""Tests for the `python -m repro` command-line entry point."""

from __future__ import annotations

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_experiment_is_callable(self):
        for name, runner in EXPERIMENTS.items():
            assert callable(runner), name

    def test_fig3_runs_end_to_end(self, capsys):
        assert main(["fig3"]) == 0
        assert "Fig3" in capsys.readouterr().out

    def test_knapsack_runs_end_to_end(self, capsys):
        assert main(["knapsack"]) == 0
        assert "Appendix A" in capsys.readouterr().out


class TestCliTelemetry:
    def test_telemetry_flags_export_and_summarize(self, tmp_path, capsys):
        from repro.obs import load_payload, validate_payload

        path = tmp_path / "tele.json"
        assert (
            main(
                [
                    "fleet",
                    "--trials", "1",
                    "--duration", "20",
                    "--telemetry", str(path),
                    "--telemetry-summary",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "Fleet scaling" in captured.out
        assert "top counters" in captured.out  # the ASCII summary
        assert "telemetry:" in captured.err  # export confirmation
        payload = load_payload(str(path))
        assert validate_payload(payload) == []
        assert payload["snapshot_count"] > 0

    def test_analytic_experiment_warns_without_snapshots(self, tmp_path, capsys):
        path = tmp_path / "none.json"
        assert main(["fig3", "--telemetry", str(path)]) == 0
        assert "produced no telemetry" in capsys.readouterr().err
        assert not path.exists()


class TestCliTransportFlags:
    """--cc/--split thread a TransportSpec into every experiment's spec."""

    def capture_spec(self, monkeypatch, argv):
        import repro.__main__ as cli
        from repro.runner import TrialResult

        captured = {}

        def fake_run(name, spec, fabric=None):
            captured["spec"] = spec
            return TrialResult(ok=True, value="done", tag=(name, spec))

        monkeypatch.setattr(cli, "run_experiment", fake_run)
        assert main(argv) == 0
        return captured["spec"]

    def test_cc_and_split_flags_build_transport(self, monkeypatch):
        from repro.sim.cc import TransportSpec

        spec = self.capture_spec(
            monkeypatch, ["table2", "--cc", "cubic", "--split"]
        )
        assert spec.transport == TransportSpec(cc="cubic", split=True)

    def test_no_flags_leave_transport_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CC", raising=False)
        monkeypatch.delenv("REPRO_SPLIT", raising=False)
        spec = self.capture_spec(monkeypatch, ["table2"])
        assert spec.transport is None

    def test_env_knobs_fill_transport(self, monkeypatch):
        from repro.sim.cc import TransportSpec

        monkeypatch.setenv("REPRO_CC", "bbr")
        monkeypatch.setenv("REPRO_SPLIT", "1")
        spec = self.capture_spec(monkeypatch, ["table2"])
        assert spec.transport == TransportSpec(cc="bbr", split=True)

    def test_no_split_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPLIT", "1")
        monkeypatch.delenv("REPRO_CC", raising=False)
        spec = self.capture_spec(monkeypatch, ["table2", "--no-split"])
        assert spec.transport is not None and not spec.transport.split

    def test_unknown_cc_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["table2", "--cc", "vegas"])
        assert "invalid choice" in capsys.readouterr().err

    def test_transport_matrix_registered(self, capsys):
        assert main(["list"]) == 0
        assert "transport-matrix" in capsys.readouterr().out


class TestCliContentionFlag:
    """--contention threads a ContentionSpec into every experiment's spec."""

    capture_spec = TestCliTransportFlags.capture_spec

    def test_on_builds_the_default_spec(self, monkeypatch):
        from repro.sim.contention import ContentionSpec

        monkeypatch.delenv("REPRO_CONTENTION", raising=False)
        spec = self.capture_spec(monkeypatch, ["table2", "--contention", "on"])
        assert spec.contention == ContentionSpec()

    def test_off_builds_the_disabled_spec(self, monkeypatch):
        from repro.sim.contention import ContentionSpec

        spec = self.capture_spec(monkeypatch, ["table2", "--contention", "off"])
        assert spec.contention == ContentionSpec(enabled=False)

    def test_stagger_token_composes(self, monkeypatch):
        from repro.sim.contention import ContentionSpec

        spec = self.capture_spec(
            monkeypatch, ["table2", "--contention", "on,stagger"]
        )
        assert spec.contention == ContentionSpec(beacon_stagger=True)

    def test_no_flag_leaves_contention_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTENTION", raising=False)
        spec = self.capture_spec(monkeypatch, ["table2"])
        assert spec.contention is None

    def test_env_knob_fills_contention(self, monkeypatch):
        from repro.sim.contention import ContentionSpec

        monkeypatch.setenv("REPRO_CONTENTION", "on")
        spec = self.capture_spec(monkeypatch, ["table2"])
        assert spec.contention == ContentionSpec()

    def test_flag_wins_over_env(self, monkeypatch):
        from repro.sim.contention import ContentionSpec

        monkeypatch.setenv("REPRO_CONTENTION", "on")
        spec = self.capture_spec(monkeypatch, ["table2", "--contention", "off"])
        assert spec.contention == ContentionSpec(enabled=False)

    def test_bad_mode_is_a_usage_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CONTENTION", raising=False)
        assert main(["table2", "--contention", "maybe"]) == 2
        assert "bad --contention mode" in capsys.readouterr().err

    def test_channel_assign_registered(self, capsys):
        assert main(["list"]) == 0
        assert "channel-assign" in capsys.readouterr().out
