"""Tests for the SpiderClient façade and its four configurations."""

from __future__ import annotations

import pytest

from repro.core.link_manager import SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import ORTHOGONAL_CHANNELS, SpiderClient
from repro.sim.engine import Simulator
from repro.sim.mobility import StaticPosition
from repro.sim.world import World

from conftest import make_lab_ap


class TestConstructors:
    def test_single_channel_single_ap_config(self, sim, world):
        client = SpiderClient.single_channel_single_ap(
            sim, world, StaticPosition(0, 0), channel=6
        )
        assert client.config.mode.channels == [6]
        assert client.config.num_interfaces == 1

    def test_single_channel_multi_ap_config(self, sim, world):
        client = SpiderClient.single_channel_multi_ap(
            sim, world, StaticPosition(0, 0), channel=1, num_interfaces=5
        )
        assert client.config.mode.is_single_channel
        assert client.config.num_interfaces == 5

    def test_multi_channel_multi_ap_config(self, sim, world):
        client = SpiderClient.multi_channel_multi_ap(sim, world, StaticPosition(0, 0))
        assert client.config.mode.channels == sorted(ORTHOGONAL_CHANNELS)
        assert client.config.num_interfaces == 7
        assert not client.lock_channel_when_connected

    def test_multi_channel_single_ap_locks_channel(self, sim, world):
        client = SpiderClient.multi_channel_single_ap(sim, world, StaticPosition(0, 0))
        assert client.config.num_interfaces == 1
        assert client.lock_channel_when_connected


class TestLifecycle:
    def test_traffic_flows_after_join(self, sim, world):
        make_lab_ap(world, channel=1, backhaul_bps=2e6)
        client = SpiderClient.single_channel_multi_ap(
            sim, world, StaticPosition(0, 0), channel=1, num_interfaces=2
        )
        client.start()
        sim.run(until=10.0)
        assert client.links_established == 1
        assert client.recorder.total_bytes > 100_000
        assert client.average_throughput_kBps(10.0) > 10.0
        assert client.connectivity_percent(10.0) > 50.0

    def test_no_traffic_when_disabled(self, sim, world):
        make_lab_ap(world, channel=1)
        client = SpiderClient.single_channel_multi_ap(
            sim, world, StaticPosition(0, 0), channel=1, enable_traffic=False
        )
        client.start()
        sim.run(until=10.0)
        assert client.links_established == 1
        assert client.recorder.total_bytes == 0

    def test_flow_closed_on_link_down(self, sim, world):
        ap = make_lab_ap(world, channel=1)
        client = SpiderClient.single_channel_multi_ap(
            sim, world, StaticPosition(0, 0), channel=1, num_interfaces=1
        )
        client.start()
        sim.run(until=5.0)
        assert len(client._flows) == 1
        ap.stop()
        world.medium.unregister(ap.bssid)
        sim.run(until=20.0)
        assert client._flows == {}

    def test_stop_tears_everything_down(self, sim, world):
        make_lab_ap(world, channel=1)
        client = SpiderClient.single_channel_multi_ap(
            sim, world, StaticPosition(0, 0), channel=1
        )
        client.start()
        sim.run(until=5.0)
        client.stop()
        delivered = client.recorder.total_bytes
        sim.run(until=10.0)
        assert client.recorder.total_bytes == delivered

    def test_double_start_rejected(self, sim, world):
        client = SpiderClient.single_channel_single_ap(sim, world, StaticPosition(0, 0))
        client.start()
        with pytest.raises(RuntimeError):
            client.start()


class TestModeControl:
    def test_set_mode_propagates_to_driver_and_lmm(self, sim, world):
        client = SpiderClient.multi_channel_multi_ap(sim, world, StaticPosition(0, 0))
        client.start()
        new_mode = OperationMode.single_channel(6)
        client.set_mode(new_mode)
        assert client.config.mode is new_mode
        assert client.driver.mode is new_mode
        assert client.lmm.config.mode is new_mode

    def test_roam_lock_parks_on_joined_channel(self, sim, world):
        make_lab_ap(world, channel=6)
        client = SpiderClient.multi_channel_single_ap(
            sim, world, StaticPosition(0, 0), period_s=0.3
        )
        client.start()
        sim.run(until=15.0)
        assert client.links_established >= 1
        assert client.config.mode.is_single_channel
        assert client.config.mode.channels == [6]

    def test_roam_lock_returns_to_discovery_on_loss(self, sim, world):
        ap = make_lab_ap(world, channel=6)
        client = SpiderClient.multi_channel_single_ap(
            sim, world, StaticPosition(0, 0), period_s=0.3
        )
        client.start()
        sim.run(until=15.0)
        ap.stop()
        world.medium.unregister(ap.bssid)
        sim.run(until=40.0)
        assert not client.config.mode.is_single_channel
