"""Cross-module integration tests: whole-system behaviours on small worlds."""

from __future__ import annotations

import pytest

from repro.core.link_manager import SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import SpiderClient
from repro.model.join_model import JoinModelParams, join_probability
from repro.sim.engine import Simulator
from repro.sim.mobility import LinearMobility, StaticPosition
from repro.sim.stock_client import StockClient
from repro.sim.world import World

from conftest import make_lab_ap


class TestAggregation:
    """Fig. 10's core claim: single-channel Spider ≈ two independent cards."""

    def _throughput(self, client_factory, seed=3):
        sim = Simulator(seed=seed)
        world = World(sim, loss_rate=0.02)
        for x in (5.0, 8.0):
            world.add_ap(
                channel=1,
                position=(x, 0.0),
                backhaul_rate_bps=1.5e6,
                dhcp_response_delay=lambda: 0.2,
            )
        client = client_factory(sim, world)
        client.start()
        sim.run(until=40.0)
        return client.recorder.average_throughput_between_bps(10.0, 40.0)

    def test_two_ap_aggregation_doubles_throughput(self):
        def multi(sim, world):
            return SpiderClient.single_channel_multi_ap(
                sim, world, StaticPosition(0, 0), channel=1, num_interfaces=2
            )

        def single(sim, world):
            return SpiderClient.single_channel_single_ap(
                sim, world, StaticPosition(0, 0), channel=1
            )

        multi_rate = self._throughput(multi)
        single_rate = self._throughput(single)
        assert multi_rate > 1.6 * single_rate


class TestVehicularEndToEnd:
    def test_spider_beats_stock_on_a_road(self):
        def run(factory):
            sim = Simulator(seed=5)
            world = World(sim, loss_rate=0.1)
            for x in (120.0, 320.0, 520.0):
                world.add_ap(
                    channel=1,
                    position=(x, 25.0),
                    backhaul_rate_bps=2e6,
                    dhcp_response_delay=lambda: 1.0,
                )
            client = factory(sim, world)
            client.start()
            sim.run(until=60.0)
            return client.recorder.total_bytes

        spider_bytes = run(
            lambda sim, world: SpiderClient.single_channel_multi_ap(
                sim, world, LinearMobility(speed_mps=10.0), channel=1
            )
        )
        stock_bytes = run(
            lambda sim, world: StockClient(
                sim, world, LinearMobility(speed_mps=10.0)
            )
        )
        assert spider_bytes > stock_bytes

    def test_lease_cache_speeds_up_second_lap(self):
        from repro.workloads.town import build_town

        sim = Simulator(seed=2)
        town = build_town(sim, preset="amherst")
        config = SpiderConfig.spider_defaults(OperationMode.single_channel(1), 7)
        client = SpiderClient(
            sim,
            town.world,
            town.make_vehicle_mobility(10.0),
            config,
            client_id="veh",
            enable_traffic=False,
        )
        client.start()
        sim.run(until=850.0)  # > 2 laps
        cached = [a for a in client.join_log.attempts if a.used_cache and a.leased]
        uncached = [
            a for a in client.join_log.attempts if not a.used_cache and a.leased
        ]
        assert cached, "second lap should hit the lease cache"
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean([a.dhcp_time_s for a in cached]) < mean(
            [a.dhcp_time_s for a in uncached]
        )

    def test_connectivity_requires_coverage(self):
        sim = Simulator(seed=0)
        world = World(sim, loss_rate=0.1)
        world.add_ap(channel=1, position=(5000.0, 0.0))  # far away forever
        client = SpiderClient.single_channel_multi_ap(
            sim, world, LinearMobility(speed_mps=10.0), channel=1
        )
        client.start()
        sim.run(until=30.0)
        assert client.recorder.total_bytes == 0
        assert client.connectivity_percent(30.0) == 0.0


class TestModelMatchesSystem:
    def test_join_probability_direction_matches_full_system(self):
        """More channel time => higher join success, in model AND system."""
        params = JoinModelParams(beta_min_s=0.5, beta_max_s=3.0)
        model_low = join_probability(params, 0.25, 8.0)
        model_high = join_probability(params, 1.0, 8.0)
        assert model_high > model_low

        def success_rate(fraction):
            sim = Simulator(seed=7)
            world = World(sim, loss_rate=0.1)
            # A corridor of APs on channel 6, encountered sequentially.
            for x in (80.0, 240.0, 400.0, 560.0):
                world.add_ap(
                    channel=6, position=(x, 40.0),
                    dhcp_response_delay=lambda: 1.5,
                )
            if fraction >= 1.0:
                mode = OperationMode.single_channel(6)
            else:
                mode = OperationMode(
                    0.4, {6: fraction, 1: (1 - fraction) / 2, 11: (1 - fraction) / 2}
                )
            config = SpiderConfig.spider_defaults(mode, num_interfaces=4)
            client = SpiderClient(
                sim, world, LinearMobility(speed_mps=10.0), config,
                client_id="veh", enable_traffic=False,
            )
            client.start()
            sim.run(until=70.0)
            log = client.join_log
            if not log.attempts:
                return 0.0
            return sum(a.leased for a in log.attempts) / len(log.attempts)

        assert success_rate(1.0) >= success_rate(0.25)
