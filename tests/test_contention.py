"""Unit tests for the CSMA/CA multi-cell contention subsystem."""

from __future__ import annotations

import math
import os
import pickle

import pytest

from repro.obs.telemetry import Telemetry
from repro.sim.contention import (
    CONTENTION_ENV,
    ContentionSpec,
    ContentionState,
    resolve_contention,
)
from repro.sim.engine import Simulator
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.radio import BACKLOG_WARN_S, Medium
from repro.sim.world import World


class FakeStation:
    """Minimal Station implementation for medium tests."""

    def __init__(self, station_id, x=0.0, y=0.0, channel=1):
        self.station_id = station_id
        self.x, self.y = x, y
        self.channel = channel
        self.received = []
        self.failed = []

    def position(self):
        return (self.x, self.y)

    def tuned_channel(self):
        return self.channel

    def accepts(self, dst):
        return dst == self.station_id

    def on_frame(self, frame, rssi):
        self.received.append((frame, rssi))

    def on_delivery_failed(self, frame):
        self.failed.append(frame)


def data_frame(src, dst, channel=1, size=1452):
    return Frame(kind=FrameKind.DATA, src=src, dst=dst, size=size, channel=channel)


def mgmt_frame(src, dst, channel=1, kind=FrameKind.AUTH_REQUEST, size=80):
    return Frame(kind=kind, src=src, dst=dst, size=size, channel=channel)


def contended_medium(sim, spec=None, loss_rate=0.0, contention_vector=None):
    """A contended medium on whichever contention state the env picks.

    The suite runs unchanged against the scalar and array-backed states
    (CI's ``tier1-scalar`` job pins ``REPRO_CONTENTION_VECTOR=0``); tests
    that poke scalar internals pin ``contention_vector=False``.
    """
    return Medium(
        sim,
        loss_rate=loss_rate,
        contention=spec or ContentionSpec(),
        contention_vector=contention_vector,
    )


@pytest.fixture
def sim():
    return Simulator(seed=1234)


class TestContentionSpec:
    def test_defaults_validate_and_pickle(self):
        spec = ContentionSpec()
        assert spec.enabled
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slot_time_s": 0.0},
            {"slot_time_s": float("nan")},
            {"difs_s": -1e-6},
            {"difs_s": float("inf")},
            {"pifs_s": -1e-6},
            {"cw_min": 0},
            {"cw_max": 8},  # below cw_min
            {"cw_mgmt": 0},
            {"capture_ratio": 0.5},
            {"capture_ratio": float("nan")},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ContentionSpec(**kwargs)

    def test_spec_is_frozen(self):
        with pytest.raises(Exception):
            ContentionSpec().enabled = False


class TestResolveContention:
    def setup_method(self):
        self._saved = os.environ.pop(CONTENTION_ENV, None)

    def teardown_method(self):
        if self._saved is not None:
            os.environ[CONTENTION_ENV] = self._saved
        else:
            os.environ.pop(CONTENTION_ENV, None)

    def test_nothing_requested_is_none(self):
        assert resolve_contention(None) is None
        assert resolve_contention("") is None

    def test_cli_tokens(self):
        assert resolve_contention("on") == ContentionSpec()
        assert resolve_contention("off") == ContentionSpec(enabled=False)
        assert resolve_contention("on,stagger") == ContentionSpec(
            beacon_stagger=True
        )
        assert resolve_contention("off,stagger") == ContentionSpec(
            enabled=False, beacon_stagger=True
        )

    def test_bare_stagger_requires_explicit_on_off(self):
        # "stagger" is a modifier: silently implying "on" would switch
        # the whole CSMA/CA model on as a side effect of asking for
        # beacon stagger, which ContentionSpec documents as independent.
        with pytest.raises(ValueError, match="modifier"):
            resolve_contention("stagger")

    def test_env_resolves_when_no_cli(self):
        os.environ[CONTENTION_ENV] = "on"
        assert resolve_contention(None) == ContentionSpec()

    def test_cli_wins_over_env(self):
        os.environ[CONTENTION_ENV] = "on"
        assert resolve_contention("off") == ContentionSpec(enabled=False)

    def test_bad_token_raises(self):
        with pytest.raises(ValueError):
            resolve_contention("sideways")


class TestCarrierSense:
    def test_same_cell_transmissions_serialize(self, sim):
        medium = contended_medium(sim)
        a = FakeStation("a", x=10.0)
        b = FakeStation("b", x=20.0)
        rx = FakeStation("rx", x=30.0)
        for s in (a, b, rx):
            medium.register(s)
        medium.transmit(a, data_frame("a", "rx"))
        medium.transmit(b, data_frame("b", "rx"))
        sim.run(until=1.0)
        state = medium.contention
        assert state.deferrals >= 1
        assert [f.src for f, _ in rx.received] == ["a", "b"]

    def test_far_cells_reuse_the_channel_concurrently(self, sim):
        medium = contended_medium(sim)
        a = FakeStation("a", x=0.0)
        ra = FakeStation("ra", x=50.0)
        b = FakeStation("b", x=1000.0)
        rb = FakeStation("rb", x=1050.0)
        for s in (a, ra, b, rb):
            medium.register(s)
        frame = data_frame("a", "ra")
        done_a = medium.transmit(a, frame)
        done_b = medium.transmit(b, data_frame("b", "rb"))
        sim.run(until=1.0)
        state = medium.contention
        assert state.deferrals == 0
        assert state.grants == 2
        # Concurrent: both finished within one airtime + max backoff of
        # t=0 rather than back to back.
        slack = medium.airtime(frame) + ContentionSpec().cw_min * 20e-6 + 1e-3
        assert max(done_a, done_b) < slack
        assert len(ra.received) == 1 and len(rb.received) == 1

    def test_adjacent_cell_sensed_but_only_own_cell_marked(self, sim):
        medium = contended_medium(sim, contention_vector=False)
        state = medium.contention
        granted, start, done = state.acquire("a", 1, 50.0, 0.0, 0.01)
        assert granted
        # The neighbour cell sees the busy air through the 3x3 sense...
        granted2, retry_at, _ = state.acquire("b", 1, 150.0, 0.0, 0.01)
        assert not granted2
        assert retry_at >= done
        # ...but only the sender's own cell carries the busy horizon.
        assert state._busy.get((1, 0, 0), 0.0) == done
        assert (1, 1, 0) not in state._busy

    def test_sense_matches_scalar_neighbourhood_semantics(self, sim):
        # Same sensed horizons on whichever state the env picked: a
        # booking is heard one cell away but not two.
        medium = contended_medium(sim)
        state = medium.contention
        granted, _start, done = state.acquire("a", 1, 50.0, 0.0, 0.01)
        assert granted
        assert state._sense(1, 1, 0) == done  # neighbour cell hears it
        assert state._sense(1, 0, 0) == done  # own cell too
        assert state._sense(1, 2, 0) == 0.0  # two cells out: idle air
        assert state._sense(6, 0, 0) == 0.0  # other channel: idle air


class TestHiddenTerminals:
    def geometry(self, sim, rx_x):
        """Sender cell 0, interferer cell 2 (never sensed), receiver cell 1."""
        medium = contended_medium(sim)
        a = FakeStation("a", x=95.0)
        b = FakeStation("b", x=205.0 if rx_x < 150 else 295.0)
        rx = FakeStation("rx", x=rx_x)
        far = FakeStation("far", x=b.x + 50.0)
        for s in (a, b, rx, far):
            medium.register(s)
        return medium, a, b, rx, far

    def test_overlapping_hidden_transmission_wipes_receiver(self, sim):
        # rx at 195: 100 m from a, 100 m from b at 295 — inside both.
        medium, a, b, rx, far = self.geometry(sim, rx_x=195.0)
        medium.transmit(a, data_frame("a", "rx"))
        medium.transmit(b, data_frame("b", "far"))
        sim.run(until=1.0)
        assert rx.received == []
        assert a.failed, "wiped unicast must report the missing ACK"
        assert medium.frames_collided >= 1
        assert medium.contention.collisions >= 1

    def test_capture_near_sender_survives_far_interferer(self, sim):
        # rx at 105: 10 m from a — the interferer at 205 is 100 m out,
        # far beyond capture_ratio * 10 m, so the frame decodes through.
        medium, a, b, rx, far = self.geometry(sim, rx_x=105.0)
        medium.transmit(a, data_frame("a", "rx"))
        medium.transmit(b, data_frame("b", "far"))
        sim.run(until=1.0)
        assert [f.src for f, _ in rx.received] == ["a"]
        assert a.failed == []

    def test_interference_consumes_no_loss_draw(self, sim):
        medium, a, b, rx, far = self.geometry(sim, rx_x=195.0)
        draws = []
        inner = medium._rng.random
        medium._rng.random = lambda: draws.append(1) or inner()
        medium.transmit(a, data_frame("a", "rx"))
        medium.transmit(b, data_frame("b", "far"))
        sim.run(until=1.0)
        # rx is wiped before the loss draw; only far's delivery draws.
        assert len(draws) == 1


class TestBackoffDynamics:
    def test_wiped_unicast_doubles_window_and_idle_grant_resets(self, sim):
        medium = contended_medium(sim)
        state = medium.contention
        spec = state.spec
        state.note_collision("a", frame_failed=True)
        assert state._cw["a"] == spec.cw_min * 2
        state.note_collision("a", frame_failed=True)
        assert state._cw["a"] == spec.cw_min * 4
        # Capped at cw_max.
        for _ in range(20):
            state.note_collision("a", frame_failed=True)
        assert state._cw["a"] == spec.cw_max
        # An idle grant starts a fresh exchange.
        state.acquire("a", 1, 0.0, 0.0, 0.001)
        assert state._cw["a"] == spec.cw_min

    def test_broadcast_collision_keeps_window(self, sim):
        medium = contended_medium(sim)
        state = medium.contention
        state.note_collision("a", frame_failed=False)
        assert "a" not in state._cw
        assert state.collisions == 1

    def test_priority_access_leaves_data_window_alone(self, sim):
        medium = contended_medium(sim)
        state = medium.contention
        state.note_collision("a", frame_failed=True)
        widened = state._cw["a"]
        state.acquire("a", 1, 0.0, 0.0, 0.001, priority=True)
        assert state._cw["a"] == widened

    def test_priority_deferral_wakes_earlier_than_data(self, sim):
        medium = contended_medium(sim)
        state = medium.contention
        spec = state.spec
        granted, _, done = state.acquire("a", 1, 0.0, 0.0, 0.01)
        assert granted
        _, retry_mgmt, _ = state.acquire("m", 1, 10.0, 0.0, 0.001, priority=True)
        assert retry_mgmt <= done + spec.pifs_s + spec.cw_mgmt * spec.slot_time_s


class TestNicQueue:
    def test_per_sender_fifo_keeps_data_in_order(self, sim):
        medium = contended_medium(sim)
        a = FakeStation("a", x=10.0)
        rx = FakeStation("rx", x=20.0)
        medium.register(a)
        medium.register(rx)
        for i in range(4):
            medium.transmit(a, data_frame("a", "rx", size=200 + i))
        sim.run(until=1.0)
        assert [f.size for f, _ in rx.received] == [200, 201, 202, 203]

    def test_mgmt_frame_jumps_queued_data(self, sim):
        medium = contended_medium(sim)
        a = FakeStation("a", x=10.0)
        rx = FakeStation("rx", x=20.0)
        medium.register(a)
        medium.register(rx)
        for i in range(3):
            medium.transmit(a, data_frame("a", "rx", size=300 + i))
        medium.transmit(a, mgmt_frame("a", "rx"))
        sim.run(until=1.0)
        kinds = [f.kind for f, _ in rx.received]
        # The head data frame was already granted (idle medium) and
        # cannot be recalled; the handshake overtakes the *queued* data.
        assert kinds[:2] == [FrameKind.DATA, FrameKind.AUTH_REQUEST]
        sizes = [f.size for f, _ in rx.received if f.kind is FrameKind.DATA]
        assert sizes == [300, 301, 302]

    def test_mgmt_frame_preempts_deferring_data_head(self, sim):
        medium = contended_medium(sim)
        o = FakeStation("o", x=5.0)
        a = FakeStation("a", x=10.0)
        rx = FakeStation("rx", x=20.0)
        for s in (o, a, rx):
            medium.register(s)
        # Another station holds the air, so a's data head *defers*...
        medium.transmit(o, data_frame("o", "rx", size=8000))
        medium.transmit(a, data_frame("a", "rx", size=500))
        # ...and the handshake that arrives next preempts it outright.
        medium.transmit(a, mgmt_frame("a", "rx"))
        sim.run(until=1.0)
        from_a = [f.kind for f, _ in rx.received if f.src == "a"]
        assert from_a == [FrameKind.AUTH_REQUEST, FrameKind.DATA]

    def test_stale_retry_ignores_repromoted_head(self):
        """A preempted head's surviving retry event must stay inert even
        when the head has been re-promoted and is deferring *again* when
        the event finally fires.

        Frame identity cannot catch that case — the same frame object is
        legitimately back in ``_tx_contending`` — so retries validate a
        per-sender chain generation.  Before that token existed, the
        stale event matched and forked a second concurrent contention
        chain for the head (an extra acquire/deferral off-schedule,
        perturbing the backoff model and the contention RNG stream).

        The interleaving needs the sensed world to differ between the
        head's two attempts, so the sender teleports into a far cell
        (two bins away: mutually un-sensed) where a long foreign flight
        is in progress.  Seed 11 draws a first-deferral backoff >= 1
        slot, which makes the stale event outlive the management frame's
        grant + delivery + re-promotion; the pinned deferral count below
        fails (4, not 3) without the generation check.
        """
        sim = Simulator(seed=11)
        # 1 ms slots stretch data backoff well past the mgmt frame's
        # turnaround; cw_mgmt=1 makes the mgmt grant time deterministic.
        spec = ContentionSpec(slot_time_s=1e-3, cw_mgmt=1)
        medium = contended_medium(sim, spec=spec, contention_vector=False)
        p = FakeStation("p", x=250.0)  # two cells away: hidden from cell 0
        o = FakeStation("o", x=10.0)
        a = FakeStation("a", x=12.0)
        rx = FakeStation("rx", x=20.0)
        for s in (p, o, a, rx):
            medium.register(s)
        # A long foreign flight occupies the far cell for ~0.5 s...
        medium.transmit(p, data_frame("p", "pz", size=700000))
        # ...while o holds the near cell, so a's data head defers there.
        medium.transmit(o, data_frame("o", "orx", size=5500))
        t1 = medium.contention._busy[(1, 0, 0)]  # o's flight end
        d = data_frame("a", "rx", size=500)
        medium.transmit(a, d)
        # The handshake preempts the deferring head: d re-queues, and the
        # retry event scheduled for d's first attempt goes stale.
        medium.transmit(a, mgmt_frame("a", "rx"))
        # Teleport a (and its receiver) into the far cell after the mgmt
        # frame's grant (t1 + 30 us) but before its delivery, so d's
        # re-promotion senses the long flight and defers again.
        def move():
            a.x = 250.0
            rx.x = 240.0

        sim.schedule_at(t1 + 40e-6, move)
        sim.run(until=2.0)
        # Exactly three deferrals: d's first attempt, the mgmt frame's,
        # and d's re-promotion.  The stale retry must not add a fourth.
        assert medium.contention.deferrals == 3
        # And d goes on the air exactly once.
        assert len([f for f, _ in rx.received if f is d]) == 1
        assert medium._tx_queues == {}
        assert medium._tx_contending == {}

    def test_stale_generation_token_no_ops(self, sim):
        """Directly firing a retry with an outdated generation does nothing."""
        medium = contended_medium(sim)
        o = FakeStation("o", x=5.0)
        a = FakeStation("a", x=10.0)
        rx = FakeStation("rx", x=20.0)
        for s in (o, a, rx):
            medium.register(s)
        medium.transmit(o, data_frame("o", "rx", size=8000))
        d = data_frame("a", "rx", size=500)
        medium.transmit(a, d)  # defers behind o's flight
        stale_gen = medium._tx_gen["a"]
        medium.transmit(a, mgmt_frame("a", "rx"))  # preempts: gen bumps
        assert medium._tx_gen["a"] == stale_gen + 1
        before = medium.contention.deferrals
        medium._retry_contended("a", d, 0.0, stale_gen)
        assert medium.contention.deferrals == before
        assert d in medium._tx_queues["a"]

    def test_unregistered_sender_drops_queue(self, sim):
        medium = contended_medium(sim)
        a = FakeStation("a", x=10.0)
        rx = FakeStation("rx", x=20.0)
        medium.register(a)
        medium.register(rx)
        for i in range(3):
            medium.transmit(a, data_frame("a", "rx"))
        medium.unregister("a")
        sim.run(until=1.0)
        assert rx.received == []
        assert medium._tx_queues == {}


class TestDeterminism:
    def run_once(self, seed):
        sim = Simulator(seed=seed)
        medium = contended_medium(sim, loss_rate=0.1)
        stations = [
            FakeStation(f"s{i}", x=30.0 * i, channel=1) for i in range(8)
        ]
        for s in stations:
            medium.register(s)
        for step in range(5):
            for s in stations:
                sim.schedule_at(
                    0.002 * step,
                    lambda s=s: medium.transmit(
                        s, data_frame(s.station_id, f"s{(int(s.station_id[1:]) + 1) % 8}")
                    ),
                )
        sim.run(until=2.0)
        state = medium.contention
        return (
            state.grants,
            state.deferrals,
            state.collisions,
            medium.frames_delivered,
            medium.frames_lost,
            sorted(state.airtime_s_by_sender.items()),
        )

    def test_same_seed_same_trace(self):
        assert self.run_once(7) == self.run_once(7)


class TestBeaconStagger:
    def test_stagger_draws_per_bssid_phases(self):
        sim = Simulator(seed=5)
        world = World(
            sim, loss_rate=0.0, contention=ContentionSpec(beacon_stagger=True)
        )
        ap_a = world.add_ap(channel=1, position=(10.0, 0.0))
        ap_b = world.add_ap(channel=1, position=(20.0, 0.0))
        assert ap_a.beacon_stagger and ap_b.beacon_stagger
        phase_a = sim.rng(f"beacon.stagger.{ap_a.bssid}")
        phase_b = sim.rng(f"beacon.stagger.{ap_b.bssid}")
        assert phase_a is not phase_b

    def test_stagger_off_matches_absent_spec(self):
        def beacon_times(contention):
            sim = Simulator(seed=5)
            world = World(sim, loss_rate=0.0, contention=contention)
            world.add_ap(channel=1, position=(10.0, 0.0))
            world.add_ap(channel=1, position=(20.0, 0.0))
            rx = FakeStation("rx", x=15.0)
            times = []
            original = rx.on_frame
            rx.on_frame = lambda f, r: times.append((sim.now, f.src)) or original(f, r)
            world.medium.register(rx)
            sim.run(until=1.0)
            return times

        assert beacon_times(None) == beacon_times(
            ContentionSpec(enabled=False, beacon_stagger=False)
        )


class TestBacklogTelemetry:
    def test_backlog_gauge_tracks_wait(self):
        sim = Simulator(seed=7, telemetry=Telemetry(enabled=True, key=("backlog", 0)))
        medium = Medium(sim, loss_rate=0.0)
        a = FakeStation("a", x=10.0)
        rx = FakeStation("rx", x=20.0)
        medium.register(a)
        medium.register(rx)
        medium.transmit(a, data_frame("a", "rx"))
        medium.transmit(a, data_frame("a", "rx"))
        assert medium._obs_backlog.high_water > 0.0

    def test_backlog_warning_trips_once_per_channel(self):
        sim = Simulator(seed=8, telemetry=Telemetry(enabled=True, key=("backlog", 1)))
        medium = Medium(sim, loss_rate=0.0)
        a = FakeStation("a", x=10.0)
        rx = FakeStation("rx", x=20.0)
        medium.register(a)
        medium.register(rx)
        # One frame occupying > BACKLOG_WARN_S of airtime, then two more
        # queued behind it: both wait past the threshold, one warning.
        big = int(medium.data_rate_bps * (BACKLOG_WARN_S + 0.5) / 8.0)
        medium.transmit(a, data_frame("a", "rx", size=big))
        medium.transmit(a, data_frame("a", "rx"))
        medium.transmit(a, data_frame("a", "rx"))
        assert medium._obs_backlog_warnings.value == 1


class TestAccounting:
    def test_airtime_and_collision_telemetry_export(self):
        tele = Telemetry(enabled=True, key=("contention", 0))
        sim = Simulator(seed=3, telemetry=tele)
        medium = contended_medium(sim)
        a = FakeStation("a", x=95.0)
        b = FakeStation("b", x=295.0)
        rx = FakeStation("rx", x=195.0)
        far = FakeStation("far", x=345.0)
        for s in (a, b, rx, far):
            medium.register(s)
        medium.transmit(a, data_frame("a", "rx"))
        medium.transmit(b, data_frame("b", "far"))
        sim.run(until=1.0)
        state = medium.contention
        assert state.airtime_s_by_channel[1] == pytest.approx(
            sum(state.airtime_s_by_sender.values())
        )
        assert state.collision_rate() > 0.0
        state.export_telemetry(1.0)
        snapshot = tele.snapshot().deterministic()
        names = {name for name, _value, _high in snapshot.gauges}
        assert "contention.airtime_share.channel.1" in names
        assert "contention.airtime_share.sender.a" in names
        # The channel/sender prefixes keep the namespaces disjoint: a
        # station that happens to be called "ch1" must not shadow the
        # channel-1 gauge.
        assert "contention.airtime_share.ch1" not in names
        assert "contention.collision_rate" in names
        assert "contention.collisions.a" in names
        assert snapshot.counter_value("contention.collisions") >= 1.0

    def test_busy_until_reports_latest_cell_horizon(self, sim):
        medium = contended_medium(sim)
        state = medium.contention
        _, _, done_near = state.acquire("a", 1, 0.0, 0.0, 0.001)
        _, _, done_far = state.acquire("b", 1, 900.0, 0.0, 0.05)
        assert medium.channel_busy_until(1) == max(done_near, done_far)
        assert medium.channel_busy_until(6) == 0.0


class TestContentionOffIsInert:
    def test_disabled_spec_builds_no_state(self, sim):
        medium = Medium(sim, contention=ContentionSpec(enabled=False))
        assert medium.contention is None
        assert medium.contention_spec == ContentionSpec(enabled=False)

    def test_contention_stream_only_exists_when_on(self):
        sim = Simulator(seed=9)
        Medium(sim, contention=None)
        assert "medium.contention" not in sim._streams
        sim2 = Simulator(seed=9)
        Medium(sim2, contention=ContentionSpec())
        assert "medium.contention" in sim2._streams
