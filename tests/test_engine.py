"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import PeriodicProcess, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_simultaneous_events_run_in_scheduling_order(self, sim):
        log = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self, sim):
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_run_until_stops_before_later_events(self, sim):
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(5.0, log.append, "late")
        sim.run(until=2.0)
        assert log == ["early"]
        assert sim.now == 2.0

    def test_run_until_advances_clock_even_with_empty_queue(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_remaining_events_run_on_second_call(self, sim):
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(5.0, log.append, "b")
        sim.run(until=2.0)
        sim.run(until=6.0)
        assert log == ["a", "b"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nan_time_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_at(math.nan, lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert log == [1.0, 2.0, 3.0]

    def test_event_budget_guards_against_storms(self, sim):
        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(RuntimeError):
            sim.run()


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        handle.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()

    def test_pending_lifecycle(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending
        assert handle.fired

    def test_cancelled_handle_not_pending(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        assert not handle.pending
        assert not handle.fired

    def test_pending_events_counts_only_live_events(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events() == 1
        del keep


class TestRandomStreams:
    def test_streams_are_independent(self):
        sim = Simulator(seed=7)
        a_then_b = [sim.rng("a").random(), sim.rng("b").random()]
        sim2 = Simulator(seed=7)
        b_then_a = [sim2.rng("b").random(), sim2.rng("a").random()]
        assert a_then_b[0] == b_then_a[1]
        assert a_then_b[1] == b_then_a[0]

    def test_same_seed_same_sequence(self):
        first = Simulator(seed=42).rng("x")
        second = Simulator(seed=42).rng("x")
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        a = Simulator(seed=1).rng("x").random()
        b = Simulator(seed=2).rng("x").random()
        assert a != b

    def test_stream_is_cached(self, sim):
        assert sim.rng("same") is sim.rng("same")


class TestPeriodicProcess:
    def test_fires_at_period(self, sim):
        ticks = []
        PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_phase_controls_first_firing(self, sim):
        ticks = []
        PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now), phase=0.25)
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_halts_future_ticks(self, sim):
        ticks = []
        process = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, process.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not process.running

    def test_stop_from_within_callback(self, sim):
        ticks = []
        holder = {}

        def tick():
            ticks.append(sim.now)
            if len(ticks) == 2:
                holder["p"].stop()

        holder["p"] = PeriodicProcess(sim, 1.0, tick)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]

    def test_zero_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)


class TestDeterminismProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_execution_order_is_sorted_and_stable(self, delays):
        sim = Simulator(seed=0)
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, lambda i=index, d=delay: fired.append((d, i)))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestTupleHeapProperties:
    """Properties the tuple-heap rewrite must preserve."""

    @settings(max_examples=30, deadline=None)
    @given(
        times=st.lists(
            st.sampled_from([0.5, 1.0, 1.5, 2.0]), min_size=1, max_size=40
        )
    )
    def test_fifo_among_simultaneous_events(self, times):
        """Events at equal times fire in scheduling order (stable ties)."""
        sim = Simulator(seed=0)
        fired = []
        for index, time in enumerate(times):
            sim.schedule(time, lambda t=time, i=index: fired.append((t, i)))
        sim.run()
        expected = sorted(
            ((t, i) for i, t in enumerate(times)), key=lambda pair: pair
        )
        assert fired == expected

    @settings(max_examples=30, deadline=None)
    @given(
        plan=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_pending_count_matches_naive_scan(self, plan):
        """The O(1) live counter agrees with a full queue scan."""
        sim = Simulator(seed=0)
        handles = []
        for delay, cancel in plan:
            handle = sim.schedule(delay, lambda: None)
            handles.append(handle)
            if cancel:
                handle.cancel()
        live = sum(1 for h in handles if h.pending)
        assert sim.pending_events() == live
        sim.run(until=25.0)
        still_live = sum(1 for h in handles if h.pending)
        assert sim.pending_events() == still_live

    def test_compaction_drops_cancelled_entries_and_preserves_order(self):
        sim = Simulator(seed=0)
        fired = []
        keepers = [
            sim.schedule(10.0 + i, lambda i=i: fired.append(i)) for i in range(10)
        ]
        cancelled = [sim.schedule(5.0, lambda: fired.append("bad"))
                     for _ in range(200)]
        for handle in cancelled:
            handle.cancel()
        # Most of the heap was dead weight, so compaction must have run and
        # physically removed cancelled entries; below the 64-entry floor the
        # remainder is left for run() to skip.
        assert sim.compactions >= 1
        assert len(sim._queue) < 64
        assert sim.pending_events() == len(keepers)
        sim.run()
        assert fired == list(range(10))
        del keepers

    def test_cancel_is_idempotent_and_counted_once(self):
        sim = Simulator(seed=0)
        handle = sim.schedule(1.0, lambda: None)
        other = sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        handle.cancel()
        assert sim.pending_events() == 1
        sim.run()
        assert other.fired

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator(seed=0)
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending_events() == 0
        handle.cancel()
        assert sim.pending_events() == 0

    def test_cancel_inside_callback_respected(self):
        """A callback cancelling a same-time event prevents its firing."""
        sim = Simulator(seed=0)
        fired = []
        victim = sim.schedule(1.0, lambda: fired.append("victim"))

        def killer():
            fired.append("killer")
            victim.cancel()

        # killer scheduled after victim at the same time: victim fires first.
        sim.schedule(1.0, killer)
        later = sim.schedule(2.0, lambda: fired.append("late"))
        early_killer = sim.schedule(1.5, lambda: later.cancel())
        sim.run()
        assert fired == ["victim", "killer"]
        assert early_killer.fired and not later.fired

    def test_compaction_during_run_keeps_schedule_intact(self):
        """Mass cancellation from inside a callback (compaction mid-run)."""
        sim = Simulator(seed=0)
        fired = []
        doomed = [sim.schedule(50.0, lambda: fired.append("doomed"))
                  for _ in range(300)]
        survivors = [
            sim.schedule(10.0 + i, lambda i=i: fired.append(i)) for i in range(5)
        ]

        def purge():
            for handle in doomed:
                handle.cancel()

        sim.schedule(1.0, purge)
        sim.run()
        assert fired == list(range(5))
        assert sim.compactions >= 1
        assert all(h.fired for h in survivors)
