"""Byte-identity: Reno behind the CC interface matches the legacy path.

The refactor's contract: extracting congestion control into
:mod:`repro.sim.cc` must not change a single byte of any default-transport
result.  Three equivalent selections — ``transport=None`` (the historical
default), an explicit ``TransportSpec()`` (what ``--cc reno`` builds), and
the deprecated ``TcpParams`` shim — must produce identical metrics *and*
identical telemetry snapshots across the table2/fig8 grids.
"""

from __future__ import annotations

import pickle
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.common import TownTrialSpec, run_town_trial_spec
from repro.experiments.fig7_tcp_fraction import measure_lab_throughput
from repro.experiments.town_runs import standard_factories
from repro.sim.cc import TransportSpec
from repro.sim.engine import Simulator
from repro.sim.frames import TcpSegment
from repro.sim.tcp import TcpParams, TcpReceiver, TcpSender

TABLE2_LABELS = tuple(standard_factories())


def run_cell(label: str, seed: int, transport):
    spec = TownTrialSpec(
        factory=standard_factories()[label],
        label=label,
        seed=seed,
        duration_s=40.0,
        telemetry=True,
        transport=transport,
    )
    return run_town_trial_spec(spec)


def strip_telemetry(metrics):
    """The metric fields alone (telemetry compared separately)."""
    from dataclasses import replace

    return replace(metrics, telemetry=None)


class TestTable2GridIdentity:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        label=st.sampled_from(TABLE2_LABELS),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_explicit_reno_is_byte_identical_to_default(self, label, seed):
        default = run_cell(label, seed, transport=None)
        explicit = run_cell(label, seed, transport=TransportSpec())
        assert pickle.dumps(strip_telemetry(default)) == pickle.dumps(
            strip_telemetry(explicit)
        )
        # Telemetry too: per-CC instruments register only for non-default
        # transports, so the exports match byte for byte.
        assert default.telemetry is not None
        assert pickle.dumps(default.telemetry.deterministic()) == pickle.dumps(
            explicit.telemetry.deterministic()
        )

    def test_legacy_params_spec_matches_transport_spec(self):
        """TransportSpec.from_params lifts the old knobs losslessly."""
        params = TcpParams(mss=1000, rto_min_s=0.3)
        lifted = TransportSpec.from_params(params)
        assert lifted.params() == params
        assert lifted == TransportSpec(mss=1000, rto_min_s=0.3)


class TestFig8Identity:
    @pytest.mark.parametrize("dwell_ms", [66.0, 300.0])
    def test_lab_throughput_identical(self, dwell_ms):
        from repro.core.schedule import OperationMode

        period_s = 3.0 * dwell_ms / 1e3
        mode = OperationMode.equal_split((1, 6, 11), period_s)
        default = measure_lab_throughput(mode, measure_s=20.0)
        explicit = measure_lab_throughput(
            mode, measure_s=20.0, transport=TransportSpec()
        )
        assert default == explicit


class TestSegmentTraceIdentity:
    """At the TCP layer: the shim path, the transport path, and the default
    all emit the identical segment trace under identical loss."""

    def run_pipe(self, build_sender):
        sim = Simulator(seed=3)
        trace = []
        holder = {}

        def down(segment: TcpSegment) -> None:
            trace.append(
                (sim.now, segment.seq, segment.payload_bytes, segment.retransmit)
            )
            if (segment.seq // 1400) % 7 == 3 and not segment.retransmit:
                return  # deterministic drop pattern
            sim.schedule(0.05, receiver.on_segment, segment)

        def up(ack: TcpSegment) -> None:
            sim.schedule(0.05, holder["sender"].on_ack, ack)

        receiver = TcpReceiver(
            sim, "f", "c", "s", send_ack=up, on_deliver=lambda n: None
        )
        holder["sender"] = build_sender(sim, down)
        holder["sender"].start()
        sim.run(until=30.0)
        return trace

    def test_all_three_construction_paths_identical(self):
        def default(sim, down):
            return TcpSender(sim, "f", "s", "c", transmit=down, total_bytes=80_000)

        def via_transport(sim, down):
            return TcpSender(
                sim, "f", "s", "c", transmit=down, total_bytes=80_000,
                transport=TransportSpec(),
            )

        def via_params_shim(sim, down):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                return TcpSender(
                    sim, "f", "s", "c", transmit=down, total_bytes=80_000,
                    params=TcpParams(),
                )

        traces = [
            self.run_pipe(build)
            for build in (default, via_transport, via_params_shim)
        ]
        assert traces[0] == traces[1] == traces[2]
        assert len(traces[0]) > 50  # the run actually did something
