"""Tests for the statistics toolkit and report rendering."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.reporting import format_cdf, format_series, format_table, kv_block
from repro.analysis.stats import (
    Summary,
    bootstrap_mean_ci,
    cdf_at,
    ecdf,
    percentile,
    summarize,
)


class TestEcdf:
    def test_simple(self):
        xs, ys = ecdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ys == [pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0)]

    def test_empty(self):
        assert ecdf([]) == ([], [])

    def test_cdf_at_points(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, [0.5, 2.0, 10.0]) == [0.0, 0.5, 1.0]

    def test_cdf_at_empty_values(self):
        result = cdf_at([], [1.0])
        assert math.isnan(result[0])

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1),
        point=st.floats(min_value=-200, max_value=200, allow_nan=False),
    )
    def test_cdf_matches_direct_count(self, values, point):
        expected = sum(1 for v in values if v <= point) / len(values)
        assert cdf_at(values, [point])[0] == pytest.approx(expected)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_single_value(self):
        assert percentile([7.0], 30) == 7.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummarize:
    def test_known_sample(self):
        summary = summarize([2.0, 4.0, 6.0, 8.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(5.0)
        assert summary.median == pytest.approx(5.0)
        assert summary.minimum == 2.0
        assert summary.maximum == 8.0

    def test_empty_sample(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_std_of_constant_is_zero(self):
        assert summarize([3.0, 3.0, 3.0]).std == 0.0


class TestBootstrap:
    def test_ci_brackets_the_mean(self):
        values = [float(i) for i in range(50)]
        lo, hi = bootstrap_mean_ci(values, resamples=300, seed=1)
        mean = sum(values) / len(values)
        assert lo <= mean <= hi

    def test_empty_sample(self):
        lo, hi = bootstrap_mean_ci([])
        assert math.isnan(lo) and math.isnan(hi)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)

    def test_deterministic_for_seed(self):
        values = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_mean_ci(values, seed=3) == bootstrap_mean_ci(values, seed=3)


class TestReporting:
    def test_table_contains_headers_and_cells(self):
        text = format_table(["name", "value"], [("alpha", 1), ("beta", 2)], title="T")
        assert "T" in text and "name" in text and "alpha" in text and "2" in text

    def test_table_rows_aligned(self):
        text = format_table(["a", "b"], [("xxxxxx", 1), ("y", 22)])
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:]}) <= 2  # consistent widths

    def test_series_renders_pairs(self):
        text = format_series("s", [1.0, 2.0], [10.0, 20.0])
        assert "(1.000, 10.0)" in text

    def test_cdf_renders_points(self):
        text = format_cdf("joins", [1.0, 2.0, 3.0], [2.0])
        assert "P(<= 2.000s)=0.667" in text

    def test_kv_block(self):
        text = kv_block("Block", [("key", 1.5), ("longer-key", "v")])
        assert "Block" in text and "longer-key" in text

    def test_nan_rendering(self):
        text = format_series("s", [1.0], [float("nan")])
        assert "nan" in text
