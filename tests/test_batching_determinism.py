"""Batched vs unbatched hot paths must agree bit-for-bit.

The PR-3 tentpole (frame-event batching, TCP segment coalescing, open-bin
recorder arithmetic, fleet sharding) is only admissible because it is
semantics-preserving: every metric the experiments report must be
bit-identical to the unbatched path.  These tests run whole town trials —
with and without fault plans — under both implementations and compare the
full metric surface; ``events_processed`` is deliberately excluded (the
batched path accounts logical events, so totals match only modulo no-op
timer fires, which is the one documented divergence).
"""

from __future__ import annotations

import pytest

from repro.core.schedule import OperationMode
from repro.experiments.common import run_town_trial
from repro.experiments.fleet import _run_fleet, run_sharded_trial
from repro.experiments.town_runs import spider_factory, stock_factory
from repro.sim.faults import ApFlap, DhcpStall, FaultPlan, RandomOutages
from repro.sim.radio import BATCH_ENV

TRIAL_S = 90.0


def _fingerprint(metrics):
    """Everything a trial reports, minus the event counter."""
    return {
        "throughput": metrics.average_throughput_kBps,
        "connectivity": metrics.connectivity_pct,
        "connections": metrics.connection_durations_s,
        "disruptions": metrics.disruption_durations_s,
        "instantaneous": metrics.instantaneous_kBps,
        "links": metrics.links_established,
        "joins": [
            (
                a.bssid,
                a.channel,
                a.started_at,
                a.associated,
                a.leased,
                a.verified,
                a.join_time_s,
            )
            for a in metrics.join_log.attempts
        ],
    }


def _trial(monkeypatch, batch, factory, seed=0, faults=None):
    monkeypatch.setenv(BATCH_ENV, "1" if batch else "0")
    return run_town_trial(
        factory, "det", seed=seed, duration_s=TRIAL_S, faults=faults
    )


class TestBatchedBitIdentity:
    def test_spider_single_channel(self, monkeypatch):
        factory = spider_factory(OperationMode.single_channel(1), 7)
        a = _fingerprint(_trial(monkeypatch, False, factory))
        b = _fingerprint(_trial(monkeypatch, True, factory))
        assert a == b

    def test_spider_multi_channel(self, monkeypatch):
        factory = spider_factory(OperationMode.equal_split((1, 6, 11), 0.6), 4)
        a = _fingerprint(_trial(monkeypatch, False, factory, seed=3))
        b = _fingerprint(_trial(monkeypatch, True, factory, seed=3))
        assert a == b

    def test_stock_client(self, monkeypatch):
        a = _fingerprint(_trial(monkeypatch, False, stock_factory(), seed=1))
        b = _fingerprint(_trial(monkeypatch, True, stock_factory(), seed=1))
        assert a == b

    def test_under_fault_plan(self, monkeypatch):
        """Fault-driven state changes land between queued deliveries; the
        horizon logic must still replay the exact unbatched interleaving."""
        plan = FaultPlan(
            events=(
                ApFlap(start_s=10.0, count=3, down_s=4.0, up_s=6.0),
                DhcpStall(at_s=25.0, duration_s=10.0),
                RandomOutages(start_s=0.0, end_s=TRIAL_S, rate_per_min=2.0),
            )
        )
        factory = spider_factory(OperationMode.single_channel(1), 7)
        a = _fingerprint(_trial(monkeypatch, False, factory, seed=2, faults=plan))
        b = _fingerprint(_trial(monkeypatch, True, factory, seed=2, faults=plan))
        assert a == b

    def test_batched_path_is_deterministic(self, monkeypatch):
        factory = spider_factory(OperationMode.single_channel(1), 7)
        a = _fingerprint(_trial(monkeypatch, True, factory, seed=8))
        b = _fingerprint(_trial(monkeypatch, True, factory, seed=8))
        assert a == b


class TestShardedFleetBitIdentity:
    @pytest.mark.parametrize("n_vehicles", [1, 3])
    def test_sharded_equals_unsharded(self, n_vehicles):
        direct = _run_fleet(n_vehicles, seed=0, duration_s=60.0, town_preset="amherst")
        sharded = run_sharded_trial(
            n_vehicles, seed=0, duration_s=60.0, workers=2
        )
        assert sharded == direct  # dataclass equality: bit-for-bit floats

    def test_sharded_serial_equals_parallel(self):
        serial = run_sharded_trial(3, seed=1, duration_s=60.0, workers=1)
        parallel = run_sharded_trial(3, seed=1, duration_s=60.0, workers=3)
        assert serial == parallel
