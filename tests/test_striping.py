"""Tests for the striped-download extension."""

from __future__ import annotations

import pytest

from repro.core.striping import StripedDownload
from repro.sim.engine import Simulator
from repro.sim.frames import Frame, FrameKind
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


def joined_iface(sim, world, ap, nic):
    iface = nic.add_interface()
    iface.channel, iface.bssid = ap.channel, ap.bssid
    ap.on_frame(
        Frame(kind=FrameKind.ASSOC_REQUEST, src=iface.mac, dst=ap.bssid, size=80, channel=ap.channel),
        -40.0,
    )
    iface.link_associated = True
    from repro.sim.frames import DhcpMessage, DhcpType

    ap.dhcp.handle(
        DhcpMessage(DhcpType.DISCOVER, hash(iface.mac) % 10_000, iface.mac),
        lambda m, d: None,
    )
    iface.ip = ap.dhcp.lease_for(iface.mac)
    iface.gateway_ip = ap.dhcp.gateway_ip
    iface.routable = True
    return iface


@pytest.fixture
def two_links(sim, world):
    ap_a = make_lab_ap(world, channel=1, backhaul_bps=2e6, x=5.0)
    ap_b = make_lab_ap(world, channel=1, backhaul_bps=2e6, x=8.0)
    nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "str", initial_channel=1)
    return (
        joined_iface(sim, world, ap_a, nic),
        joined_iface(sim, world, ap_b, nic),
    )


class TestChunking:
    def test_chunks_partition_object(self, sim, world):
        stripe = StripedDownload(sim, world, total_bytes=1_000_000, chunk_bytes=300_000)
        assert [c.size for c in stripe.chunks] == [300_000, 300_000, 300_000, 100_000]

    def test_invalid_sizes_rejected(self, sim, world):
        with pytest.raises(ValueError):
            StripedDownload(sim, world, total_bytes=0)
        with pytest.raises(ValueError):
            StripedDownload(sim, world, total_bytes=100, chunk_bytes=0)


class TestTransfer:
    def test_single_link_completes_object(self, sim, world, two_links):
        iface, _ = two_links
        done = []
        stripe = StripedDownload(
            sim, world, total_bytes=500_000, chunk_bytes=125_000,
            on_complete=lambda dt: done.append(dt),
        )
        stripe.attach_link(iface)
        sim.run(until=30.0)
        assert stripe.done
        assert stripe.bytes_completed == 500_000
        assert done and done[0] > 0

    def test_two_links_finish_faster_than_one(self, sim, world, two_links):
        iface_a, iface_b = two_links

        def run(links):
            local_sim = sim  # noqa: F841 - clarity only
            stripe = StripedDownload(sim, world, total_bytes=800_000, chunk_bytes=100_000)
            for link in links:
                stripe.attach_link(link)
            sim.run(until=sim.now + 60.0)
            return stripe.elapsed_s()

        both = run([iface_a, iface_b])
        single = run([iface_a])
        assert both is not None and single is not None
        assert both < single

    def test_progress_reporting(self, sim, world, two_links):
        iface, _ = two_links
        stripe = StripedDownload(sim, world, total_bytes=400_000, chunk_bytes=100_000)
        stripe.attach_link(iface)
        sim.run(until=1.0)
        midway = stripe.progress()
        sim.run(until=30.0)
        assert 0.0 <= midway <= 1.0
        assert stripe.progress() == 1.0

    def test_bytes_callback_counts_everything(self, sim, world, two_links):
        iface_a, iface_b = two_links
        counted = []
        stripe = StripedDownload(
            sim, world, total_bytes=400_000, chunk_bytes=100_000,
            on_bytes=counted.append,
        )
        stripe.attach_link(iface_a)
        stripe.attach_link(iface_b)
        sim.run(until=30.0)
        assert sum(counted) == 400_000


class TestLinkChurn:
    def test_dead_link_requeues_chunk(self, sim, world, two_links):
        iface_a, iface_b = two_links
        stripe = StripedDownload(sim, world, total_bytes=600_000, chunk_bytes=100_000)
        stripe.attach_link(iface_a)
        stripe.attach_link(iface_b)
        sim.schedule(0.5, stripe.detach_link, iface_b)
        sim.run(until=60.0)
        assert stripe.done
        assert stripe.bytes_completed == 600_000
        assert stripe.chunk_retries >= 1

    def test_late_attach_joins_the_work(self, sim, world, two_links):
        iface_a, iface_b = two_links
        stripe = StripedDownload(sim, world, total_bytes=800_000, chunk_bytes=100_000)
        stripe.attach_link(iface_a)
        sim.schedule(1.0, stripe.attach_link, iface_b)
        sim.run(until=60.0)
        assert stripe.done
        fetched_by_b = sum(
            1 for c in stripe.chunks if c.assigned_iface == iface_b.index
        )
        assert fetched_by_b >= 1

    def test_cancel_stops_flows(self, sim, world, two_links):
        iface_a, _ = two_links
        stripe = StripedDownload(sim, world, total_bytes=2_000_000, chunk_bytes=100_000)
        stripe.attach_link(iface_a)
        sim.run(until=1.0)
        stripe.cancel()
        assert not stripe.done
        assert world.server.flows == {}

    def test_unroutable_iface_ignored(self, sim, world, two_links):
        iface_a, _ = two_links
        iface_a.routable = False
        stripe = StripedDownload(sim, world, total_bytes=100_000)
        stripe.attach_link(iface_a)
        sim.run(until=5.0)
        assert not stripe.done
        assert stripe.bytes_completed == 0
