"""Tests for the timeout-grid configuration (Table 3 / Figs. 14-15 shared)."""

from __future__ import annotations

import pytest

from repro.experiments.timeout_grid import STANDARD_GRID, TimeoutConfig, run_grid


class TestGridDefinitions:
    def test_every_paper_row_present(self):
        for label in (
            "ch1, ll=100ms, dhcp=600ms, 7if",
            "ch1, ll=100ms, dhcp=400ms, 7if",
            "ch1, ll=100ms, dhcp=200ms, 7if",
            "3ch, ll=100ms, dhcp=200ms, 7if",
            "ch1, default timers, 7if",
            "3ch, default timers, 7if",
            "ch1, default timers, 1if",
            "2ch(1,6), default timers, 7if",
        ):
            assert label in STANDARD_GRID, label

    def test_reduced_configs_carry_reduced_timers(self):
        config = STANDARD_GRID["ch1, ll=100ms, dhcp=200ms, 7if"].spider_config()
        assert config.ll_timeout_s == pytest.approx(0.1)
        assert config.dhcp_timeout_s == pytest.approx(0.2)
        assert config.use_lease_cache

    def test_default_configs_match_stock_timers(self):
        config = STANDARD_GRID["ch1, default timers, 7if"].spider_config()
        assert config.ll_timeout_s == pytest.approx(1.0)
        assert config.dhcp_timeout_s == pytest.approx(1.0)
        assert config.dhcp_idle_after_failure_s == pytest.approx(60.0)
        assert not config.use_lease_cache

    def test_interface_counts_respected(self):
        assert STANDARD_GRID["ch1, default timers, 1if"].spider_config().num_interfaces == 1
        assert STANDARD_GRID["ch1, default timers, 7if"].spider_config().num_interfaces == 7

    def test_channel_sets_match_labels(self):
        assert STANDARD_GRID["3ch, default timers, 7if"].mode.channels == [1, 6, 11]
        assert STANDARD_GRID["2ch(1,6), default timers, 7if"].mode.channels == [1, 6]
        assert STANDARD_GRID["ch1, default timers, 7if"].mode.channels == [1]


class TestGridExecution:
    def test_selected_labels_only(self):
        grid = run_grid(
            labels=("ch1, ll=100ms, dhcp=200ms, 7if",), seeds=(0,), duration_s=50.0
        )
        assert set(grid) == {"ch1, ll=100ms, dhcp=200ms, 7if"}

    def test_results_carry_join_logs(self):
        grid = run_grid(
            labels=("ch1, ll=100ms, dhcp=200ms, 7if",), seeds=(0,), duration_s=50.0
        )
        metrics = grid["ch1, ll=100ms, dhcp=200ms, 7if"]
        assert metrics.trials[0].join_log is not None
