"""Unit and property tests for the analytical join model (Eq. 1-7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.join_model import (
    JoinModelParams,
    expected_join_fraction,
    join_probability,
    join_probability_series,
    q_round_pair,
    q_segment,
)
from repro.model.join_sim import simulate_join_probability

PAPER = JoinModelParams(
    period_s=0.5,
    switch_delay_s=7e-3,
    request_spacing_s=0.1,
    beta_min_s=0.5,
    beta_max_s=5.0,
    loss_rate=0.1,
)


class TestParams:
    def test_defaults_valid(self):
        JoinModelParams()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            JoinModelParams(period_s=0.0)
        with pytest.raises(ValueError):
            JoinModelParams(loss_rate=1.0)
        with pytest.raises(ValueError):
            JoinModelParams(beta_min_s=2.0, beta_max_s=1.0)
        with pytest.raises(ValueError):
            JoinModelParams(switch_delay_s=-0.1)

    def test_requests_per_round_formula(self):
        params = JoinModelParams(period_s=0.5, switch_delay_s=7e-3, request_spacing_s=0.1)
        # ceil((0.5*0.5 - 0.007)/0.1) = ceil(2.43) = 3
        assert params.requests_per_round(0.5) == 3
        assert params.requests_per_round(1.0) == 5

    def test_no_requests_when_dwell_below_switch_delay(self):
        params = JoinModelParams(period_s=0.5, switch_delay_s=0.06, request_spacing_s=0.1)
        assert params.requests_per_round(0.1) == 0

    def test_with_beta_max(self):
        assert PAPER.with_beta_max(8.0).beta_max_s == 8.0


class TestQSegment:
    def test_probability_bounds(self):
        for m in (1, 2):
            for n in (m, m + 1, m + 5):
                for k in (1, 2, 3):
                    q = q_segment(PAPER, 0.4, m, n, k)
                    assert 0.0 <= q <= 1.0

    def test_n_before_m_is_zero(self):
        assert q_segment(PAPER, 0.5, 3, 2, 1) == 0.0

    def test_far_future_round_unreachable(self):
        # Response latency <= k*c + beta_max; far-away rounds can't match.
        assert q_segment(PAPER, 0.5, 1, 100, 1) == 0.0

    def test_degenerate_beta_point_mass(self):
        params = JoinModelParams(beta_min_s=1.0, beta_max_s=1.0)
        total = sum(q_segment(params, 1.0, 1, n, 1) for n in range(1, 10))
        assert total == pytest.approx(1.0)

    def test_full_time_on_channel_covers_all_arrivals(self):
        # With f=1 the on-window is the whole round: any response time in
        # some round n succeeds, so summing q over n approaches 1.
        total = sum(q_segment(PAPER, 1.0, 1, n, 1) for n in range(1, 50))
        assert total == pytest.approx(1.0, abs=0.05)


class TestJoinProbability:
    def test_zero_fraction_never_joins(self):
        assert join_probability(PAPER, 0.0, 4.0) == 0.0

    def test_zero_time_never_joins(self):
        assert join_probability(PAPER, 0.5, 0.0) == 0.0

    def test_full_attention_with_short_beta_always_joins(self):
        params = JoinModelParams(beta_min_s=0.1, beta_max_s=0.3, loss_rate=0.0)
        assert join_probability(params, 1.0, 10.0) == pytest.approx(1.0, abs=1e-6)

    def test_monotone_in_fraction(self):
        probabilities = [join_probability(PAPER, f, 4.0) for f in (0.1, 0.3, 0.5, 0.8, 1.0)]
        assert probabilities == sorted(probabilities)

    def test_monotone_in_time(self):
        probabilities = [join_probability(PAPER, 0.3, t) for t in (1.0, 2.0, 4.0, 8.0)]
        assert probabilities == sorted(probabilities)

    def test_decreasing_in_beta_max(self):
        values = [
            join_probability(PAPER.with_beta_max(bm), 0.25, 4.0)
            for bm in (1.0, 3.0, 5.0, 10.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_decreasing_in_loss(self):
        from dataclasses import replace

        lossless = join_probability(replace(PAPER, loss_rate=0.0), 0.25, 4.0)
        lossy = join_probability(replace(PAPER, loss_rate=0.4), 0.25, 4.0)
        assert lossless > lossy

    def test_series_is_cumulative(self):
        series = join_probability_series(PAPER, 0.4, 4.0)
        assert series[0] == 0.0
        assert all(b >= a for a, b in zip(series, series[1:]))
        assert len(series) == int(4.0 / PAPER.period_s) + 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            join_probability(PAPER, -0.1, 4.0)
        with pytest.raises(ValueError):
            join_probability(PAPER, 1.1, 4.0)
        with pytest.raises(ValueError):
            join_probability(PAPER, 0.5, -1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        rounds=st.integers(min_value=0, max_value=12),
    )
    def test_probability_always_in_unit_interval(self, fraction, rounds):
        p = join_probability(PAPER, fraction, rounds * PAPER.period_s)
        assert 0.0 <= p <= 1.0


class TestExpectedJoinFraction:
    def test_bounds(self):
        value = expected_join_fraction(PAPER, 0.5, 10.0)
        assert 0.0 <= value <= 1.0

    def test_zero_horizon(self):
        assert expected_join_fraction(PAPER, 0.5, 0.0) == 0.0

    def test_increases_with_fraction(self):
        low = expected_join_fraction(PAPER, 0.1, 10.0)
        high = expected_join_fraction(PAPER, 0.9, 10.0)
        assert high > low

    def test_long_horizon_approaches_one(self):
        params = JoinModelParams(beta_min_s=0.5, beta_max_s=1.0, loss_rate=0.0)
        assert expected_join_fraction(params, 1.0, 300.0) > 0.95


class TestModelVsSimulation:
    """The Fig. 2 validation, at test scale."""

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 1.0])
    def test_agreement_within_sampling_error(self, fraction):
        model = join_probability(PAPER, fraction, 4.0)
        sim = simulate_join_probability(
            PAPER, fraction, 4.0, runs=12, trials_per_run=100, seed=3
        )
        assert abs(model - sim.mean) < max(4.0 * sim.std / (12 ** 0.5), 0.05)

    def test_simulation_respects_bounds(self):
        result = simulate_join_probability(PAPER, 0.4, 4.0, runs=5, trials_per_run=50)
        assert 0.0 <= result.mean <= 1.0
        assert result.std >= 0.0

    def test_simulation_deterministic_for_seed(self):
        a = simulate_join_probability(PAPER, 0.4, 4.0, runs=5, trials_per_run=50, seed=9)
        b = simulate_join_probability(PAPER, 0.4, 4.0, runs=5, trials_per_run=50, seed=9)
        assert a.mean == b.mean

    def test_simulation_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_join_probability(PAPER, 0.4, 4.0, runs=0)
