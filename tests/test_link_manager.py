"""Unit/integration tests for the link-management module."""

from __future__ import annotations

import pytest

from repro.core.link_manager import LinkManager, SpiderConfig
from repro.core.schedule import OperationMode
from repro.sim.engine import Simulator
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


def make_lmm(sim, world, num_interfaces=2, channel=1, **config_overrides):
    from dataclasses import replace

    nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "lmm", initial_channel=channel)
    config = SpiderConfig.spider_defaults(
        OperationMode.single_channel(channel), num_interfaces=num_interfaces
    )
    if config_overrides:
        config = replace(config, **config_overrides)
    events = {"up": [], "down": []}
    lmm = LinkManager(
        sim,
        world,
        nic,
        config,
        on_link_up=lambda iface: events["up"].append(iface.bssid),
        on_link_down=lambda iface: events["down"].append(iface.bssid),
    )
    return nic, lmm, events


class TestJoinPipeline:
    def test_full_join_establishes_link(self, sim, world):
        ap = make_lab_ap(world)
        nic, lmm, events = make_lmm(sim, world)
        sim.run(until=5.0)
        assert lmm.established_count == 1
        assert events["up"] == [ap.bssid]
        iface = lmm.established_ifaces()[0]
        assert iface.routable and iface.ip is not None

    def test_attempt_logged_with_all_stages(self, sim, world):
        make_lab_ap(world)
        nic, lmm, events = make_lmm(sim, world)
        sim.run(until=5.0)
        attempt = lmm.join_log.attempts[0]
        assert attempt.associated and attempt.leased and attempt.verified
        assert attempt.join_time_s is not None

    def test_utility_rewarded_on_success(self, sim, world):
        ap = make_lab_ap(world)
        nic, lmm, events = make_lmm(sim, world)
        sim.run(until=5.0)
        assert lmm.tracker.utility(ap.bssid) == pytest.approx(1.0)

    def test_no_two_interfaces_bind_same_ap(self, sim, world):
        make_lab_ap(world)
        nic, lmm, events = make_lmm(sim, world, num_interfaces=3)
        sim.run(until=8.0)
        bssids = [iface.bssid for iface in nic.interfaces if iface.bound]
        assert len(bssids) == len(set(bssids)) == 1

    def test_two_aps_joined_in_parallel(self, sim, world):
        make_lab_ap(world, x=5.0)
        make_lab_ap(world, x=8.0)
        nic, lmm, events = make_lmm(sim, world, num_interfaces=3)
        sim.run(until=8.0)
        assert lmm.established_count == 2

    def test_interfaces_created_to_config_count(self, sim, world):
        nic, lmm, events = make_lmm(sim, world, num_interfaces=5)
        assert len(nic.interfaces) == 5

    def test_off_mode_channels_ignored(self, sim, world):
        make_lab_ap(world, channel=6)  # not on the scheduled channel 1
        nic, lmm, events = make_lmm(sim, world, channel=1)
        sim.run(until=5.0)
        assert lmm.established_count == 0


class TestFailureHandling:
    def test_dhcp_failure_scores_associated_and_blacklists(self, sim, world):
        ap = world.add_ap(
            channel=1, position=(10, 0), dhcp_response_delay=lambda: 30.0
        )
        nic, lmm, events = make_lmm(sim, world, dhcp_budget_s=0.5)
        sim.run(until=4.0)
        assert lmm.established_count == 0
        assert lmm.tracker.utility(ap.bssid) < 1.0
        assert ap.bssid in lmm._blacklist

    def test_blacklisted_ap_retried_after_expiry(self, sim, world):
        delays = iter([30.0] + [0.2] * 50)
        ap = world.add_ap(
            channel=1, position=(10, 0), dhcp_response_delay=lambda: next(delays)
        )
        nic, lmm, events = make_lmm(
            sim, world, dhcp_budget_s=0.5, dhcp_idle_after_failure_s=2.0
        )
        sim.run(until=15.0)
        assert lmm.established_count == 1  # second attempt succeeded

    def test_dead_link_torn_down_and_reported(self, sim, world):
        ap = make_lab_ap(world)
        nic, lmm, events = make_lmm(sim, world)
        sim.run(until=5.0)
        assert lmm.established_count == 1
        # Kill the AP entirely: pings start failing.
        ap.stop()
        world.medium.unregister(ap.bssid)
        sim.run(until=20.0)
        assert lmm.established_count == 0
        assert events["down"] == [ap.bssid]
        iface = nic.interfaces[0]
        assert not iface.bound

    def test_stop_cancels_everything(self, sim, world):
        make_lab_ap(world)
        nic, lmm, events = make_lmm(sim, world)
        sim.run(until=5.0)
        lmm.stop()
        sim.run(until=10.0)
        assert lmm.established_count == 0


class TestLeaseCacheIntegration:
    def test_second_join_uses_cache(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.5)
        nic, lmm, events = make_lmm(sim, world, dead_blacklist_s=0.5)
        sim.run(until=5.0)
        first = lmm.join_log.attempts[0]
        assert not first.used_cache
        # Drop the link by silencing the AP briefly, then restore.
        world.medium.unregister(ap.bssid)
        sim.run(until=12.0)
        world.medium.register(ap)
        sim.run(until=25.0)
        cached_attempts = [a for a in lmm.join_log.attempts if a.used_cache and a.leased]
        assert cached_attempts
        assert cached_attempts[0].dhcp_time_s < 0.3

    def test_cache_disabled_by_config(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.3)
        nic, lmm, events = make_lmm(sim, world, use_lease_cache=False, dead_blacklist_s=0.5)
        sim.run(until=5.0)
        world.medium.unregister(ap.bssid)
        sim.run(until=12.0)
        world.medium.register(ap)
        sim.run(until=25.0)
        assert all(not a.used_cache for a in lmm.join_log.attempts)


class TestSelectionPolicies:
    def test_rssi_policy_prefers_nearest(self, sim, world):
        near = make_lab_ap(world, x=5.0)
        make_lab_ap(world, x=80.0)
        nic, lmm, events = make_lmm(
            sim, world, num_interfaces=1, selection_policy="rssi"
        )
        sim.run(until=5.0)
        assert events["up"] == [near.bssid]

    def test_random_policy_joins_something(self, sim, world):
        make_lab_ap(world, x=5.0)
        make_lab_ap(world, x=8.0)
        nic, lmm, events = make_lmm(
            sim, world, num_interfaces=1, selection_policy="random"
        )
        sim.run(until=5.0)
        assert lmm.established_count == 1

    def test_unknown_policy_raises(self, sim, world):
        make_lab_ap(world)
        nic, lmm, events = make_lmm(sim, world, selection_policy="bogus")
        with pytest.raises(ValueError):
            sim.run(until=2.0)

    def test_utility_policy_avoids_proven_bad_ap(self, sim, world):
        bad = world.add_ap(channel=1, position=(5, 0), dhcp_response_delay=lambda: 30.0)
        good = make_lab_ap(world, x=50.0)
        nic, lmm, events = make_lmm(
            sim, world, num_interfaces=1, dhcp_budget_s=0.5, dhcp_idle_after_failure_s=0.5
        )
        sim.run(until=30.0)
        # After failing on `bad`, utility falls and `good` wins thereafter.
        assert events["up"] and events["up"][0] == good.bssid
        assert lmm.tracker.utility(bad.bssid) < lmm.tracker.utility(good.bssid)
