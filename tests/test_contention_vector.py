"""Array-backed contention state: toggle, fallback, and byte-identity.

The PR-10 tentpole (:mod:`repro.sim.contention_vec`) is only admissible
because it is semantics-preserving: every grant, deferral, backoff draw,
collision, and deterministic telemetry counter must match the scalar
:class:`~repro.sim.contention.ContentionState` bit for bit.  These tests
pin the unit contract (env decode, numpy fallback and its obs counter,
sense/interference equivalence on hand-built geometries including the
capture boundary), the O(channels) ``busy_until`` regression, and the
trial-scale contract: hypothesis-driven contended dense-town runs whose
results *and* deterministic telemetry exports are compared byte for byte
across the scalar and vector paths.
"""

from __future__ import annotations

import json
import math
import os
from contextlib import contextmanager

import pytest

from repro.obs.telemetry import Telemetry
from repro.sim import contention_vec
from repro.sim.contention import ContentionSpec, ContentionState
from repro.sim.contention_vec import (
    CONTENTION_VECTOR_ENV,
    VEC_MIN_FLIGHTS,
    ContentionVecState,
    make_contention_state,
    vector_contention_enabled,
)
from repro.sim.engine import Simulator
from repro.sim.frames import Frame, FrameKind
from repro.sim.radio import Medium


def data_frame(src, dst, channel=1, size=1452):
    return Frame(kind=FrameKind.DATA, src=src, dst=dst, size=size, channel=channel)


class FakeStation:
    def __init__(self, station_id, x=0.0, y=0.0, channel=1):
        self.station_id = station_id
        self.x, self.y = x, y
        self.channel = channel
        self.received = []
        self.failed = []

    def position(self):
        return (self.x, self.y)

    def tuned_channel(self):
        return self.channel

    def accepts(self, dst):
        return dst == self.station_id

    def on_frame(self, frame, rssi):
        self.received.append((frame.src, frame.kind, rssi))

    def on_delivery_failed(self, frame):
        self.failed.append(frame.src)


def contended_medium(sim, contention_vector=None, loss_rate=0.0):
    return Medium(
        sim,
        loss_rate=loss_rate,
        contention=ContentionSpec(),
        contention_vector=contention_vector,
    )


class TestEnvToggle:
    def test_default_is_on(self):
        assert vector_contention_enabled(None) is True

    @pytest.mark.parametrize("token", ["0", "off", "OFF", "false", "no", " 0 "])
    def test_falsey_tokens_disable(self, token):
        assert vector_contention_enabled(token) is False

    @pytest.mark.parametrize("token", ["1", "on", "true", "yes", "", "anything"])
    def test_other_tokens_enable(self, token):
        assert vector_contention_enabled(token) is True


class TestMakeContentionState:
    def _medium(self):
        sim = Simulator(seed=7)
        return Medium(sim, contention=ContentionSpec())

    def test_pinned_scalar(self):
        state, fell_back = make_contention_state(
            self._medium(), ContentionSpec(), vector=False
        )
        assert type(state) is ContentionState
        assert not state.is_vector
        assert not fell_back

    @pytest.mark.skipif(
        contention_vec._np is None, reason="vector state requires numpy"
    )
    def test_pinned_vector(self):
        state, fell_back = make_contention_state(
            self._medium(), ContentionSpec(), vector=True
        )
        assert isinstance(state, ContentionVecState)
        assert state.is_vector
        assert not fell_back

    def test_env_off_pins_scalar(self, monkeypatch):
        monkeypatch.setenv(CONTENTION_VECTOR_ENV, "0")
        state, fell_back = make_contention_state(self._medium(), ContentionSpec())
        assert type(state) is ContentionState
        assert not fell_back

    def test_missing_numpy_falls_back(self, monkeypatch):
        monkeypatch.setattr(contention_vec, "_np", None)
        state, fell_back = make_contention_state(
            self._medium(), ContentionSpec(), vector=True
        )
        assert type(state) is ContentionState
        assert fell_back

    def test_missing_numpy_scalar_pin_is_not_a_fallback(self, monkeypatch):
        monkeypatch.setattr(contention_vec, "_np", None)
        state, fell_back = make_contention_state(
            self._medium(), ContentionSpec(), vector=False
        )
        assert not fell_back


class TestFallbackCounter:
    def test_fallback_counted_on_medium(self, monkeypatch):
        monkeypatch.setattr(contention_vec, "_np", None)
        tele = Telemetry(enabled=True, key=("cv-fallback",))
        sim = Simulator(seed=0, telemetry=tele)
        medium = contended_medium(sim, contention_vector=True)
        assert medium.vector_contention is False
        assert tele.counter("contention.vector_fallbacks").value == 1

    @pytest.mark.skipif(
        contention_vec._np is None, reason="vector state requires numpy"
    )
    def test_no_fallback_with_numpy(self):
        tele = Telemetry(enabled=True, key=("cv-ok",))
        sim = Simulator(seed=0, telemetry=tele)
        medium = contended_medium(sim, contention_vector=True)
        assert medium.vector_contention is True
        assert tele.counter("contention.vector_fallbacks").value == 0

    def test_fallback_counter_is_not_deterministic(self, monkeypatch):
        """The fallback count depends on the host (numpy present or not),
        so it must be excluded from the deterministic projection."""
        monkeypatch.setattr(contention_vec, "_np", None)
        tele = Telemetry(enabled=True, key=("cv-det",))
        sim = Simulator(seed=0, telemetry=tele)
        contended_medium(sim, contention_vector=True)
        det = tele.snapshot().deterministic()
        names = {name for name, _ in det.counters}
        assert "contention.vector_fallbacks" not in names


needs_numpy = pytest.mark.skipif(
    contention_vec._np is None, reason="vector state requires numpy"
)


@needs_numpy
class TestSenseGridEquivalence:
    """Hand-built geometry: grids and dicts must sense the same air."""

    def _states(self):
        states = []
        for vector in (False, True):
            sim = Simulator(seed=3)
            medium = contended_medium(sim, contention_vector=vector)
            states.append(medium.contention)
        return states

    def test_booked_neighbourhood_senses_identically(self):
        scalar, vector = self._states()
        bookings = [(1, 50.0, 0.0, 0.011), (1, 350.0, 0.0, 0.007), (6, 50.0, 0.0, 0.02)]
        for channel, x, y, airtime in bookings:
            for state in (scalar, vector):
                granted, start, done = state.acquire("s", channel, x, y, airtime)
                assert granted
        for channel in (1, 6, 11):
            for cx in range(-2, 8):
                for cy in range(-2, 3):
                    assert scalar._sense(channel, cx, cy) == vector._sense(
                        channel, cx, cy
                    ), (channel, cx, cy)
            assert scalar.busy_until(channel) == vector.busy_until(channel)

    def test_grid_growth_preserves_bookings(self):
        _, vector = self._states()
        # Book far apart so the channel grid must regrow, then re-sense
        # the original cell: growth must preserve the propagated max.
        granted, _, done_a = vector.acquire("a", 1, 0.0, 0.0, 0.01)
        assert granted
        granted, _, done_b = vector.acquire("b", 1, 5000.0, 5000.0, 0.02)
        assert granted
        assert vector._sense(1, 0, 0) == done_a
        assert vector._sense(1, 50, 50) == done_b
        assert vector.busy_until(1) == max(done_a, done_b)

    def test_sense_returns_python_floats(self):
        _, vector = self._states()
        vector.acquire("a", 1, 0.0, 0.0, 0.01)
        sensed = vector._sense(1, 0, 0)
        assert type(sensed) is float  # np.float64 must never leak out


@needs_numpy
class TestInterferenceEquivalence:
    """The capture-bound prefilter must agree with the exact scalar scan,
    including exactly on the capture boundary."""

    def _states(self, flights):
        states = []
        for vector in (False, True):
            sim = Simulator(seed=5)
            medium = contended_medium(sim, contention_vector=vector)
            state = medium.contention
            for cell, cell_flights in flights.items():
                state._inflight[cell] = list(cell_flights)
            states.append(state)
        return states

    def _agree(self, states, sender_id, channel, rx, ry, start, done, distance):
        scalar, vector = states
        a = scalar.interfered(sender_id, channel, rx, ry, start, done, distance)
        b = vector.interfered(sender_id, channel, rx, ry, start, done, distance)
        assert a == b, (rx, ry, distance)
        return a

    def test_exact_capture_boundary(self):
        # Sender 30 m out: capture bound = min(100, 2.5 * 30) = 75 m.
        # An interferer at exactly 75 m is inside (<=); at the next float
        # out it is not.  Both states must make the same call.
        states = self._states(
            {(1, 0, 0): [(0.0, 0.001, "far", 75.0, 0.0)]}
        )
        assert self._agree(states, "s", 1, 0.0, 0.0, 0.0, 0.0005, 30.0) is True
        states = self._states(
            {(1, 0, 0): [(0.0, 0.001, "far", math.nextafter(75.0, 100.0), 0.0)]}
        )
        assert self._agree(states, "s", 1, 0.0, 0.0, 0.0, 0.0005, 30.0) is False

    def test_colocated_sender_zero_capture(self):
        # Receiver on top of its sender: capture bound collapses to 0 —
        # only an interferer at the exact same point can wipe it.
        at_rx = {(1, 0, 0): [(0.0, 0.001, "far", 10.0, 20.0)]}
        states = self._states(at_rx)
        assert self._agree(states, "s", 1, 10.0, 20.0, 0.0, 0.0005, 0.0) is True
        near = {(1, 0, 0): [(0.0, 0.001, "far", 10.0 + 1e-9, 20.0)]}
        states = self._states(near)
        assert self._agree(states, "s", 1, 10.0, 20.0, 0.0, 0.0005, 0.0) is False

    def test_own_flights_and_nonoverlapping_windows_ignored(self):
        flights = [
            (0.0, 0.001, "s", 1.0, 0.0),  # own transmission
            (0.002, 0.003, "far", 1.0, 0.0),  # starts after done
            (-0.002, -0.001, "far", 1.0, 0.0),  # ended before start
        ]
        states = self._states({(1, 0, 0): flights})
        assert self._agree(states, "s", 1, 0.0, 0.0, 0.0, 0.0015, 40.0) is False

    def test_numpy_path_engages_and_agrees(self):
        # Enough overlapping foreign flights to cross VEC_MIN_FLIGHTS:
        # the vector state screens with arrays, the scalar state walks —
        # answers must agree for receivers straddling the reach boundary.
        n = VEC_MIN_FLIGHTS + 4
        flights = [
            (0.0, 0.001, f"f{i}", 200.0 + 3.0 * i, 0.0) for i in range(n)
        ]
        states = self._states({(1, 2, 0): flights})
        scalar, vector = states
        for rx in (200.0, 230.0, 260.0, 290.0):
            a = scalar.interfered("s", 1, rx, 0.0, 0.0, 0.0005, 38.0)
            b = vector.interfered("s", 1, rx, 0.0, 0.0, 0.0005, 38.0)
            assert a == b, rx

    def test_interfered_rows_matches_single_calls(self):
        n = VEC_MIN_FLIGHTS + 4
        flights = [
            (0.0, 0.001, f"f{i}", 200.0 + 3.0 * i, 0.0) for i in range(n)
        ]
        states = self._states({(1, 2, 0): flights})
        rows = [
            (i, None, -50.0, False, rx, 0.0, d)
            for i, (rx, d) in enumerate(
                [(205.0, 10.0), (230.0, 38.0), (260.0, 38.0), (295.0, 90.0)]
            )
        ]
        for state in states:
            batched = state.interfered_rows("s", 1, rows, 0.0, 0.0005)
            singles = [
                state.interfered("s", 1, r[4], r[5], 0.0, 0.0005, r[6])
                for r in rows
            ]
            assert batched == singles


class TestBusyUntilComplexity:
    class _NoIterDict(dict):
        """A _busy stand-in that forbids whole-table walks."""

        def values(self):  # pragma: no cover - the assertion is the point
            raise AssertionError("busy_until must not walk _busy")

        def items(self):  # pragma: no cover
            raise AssertionError("busy_until must not walk _busy")

        def __iter__(self):  # pragma: no cover
            raise AssertionError("busy_until must not walk _busy")

    def test_scalar_busy_until_is_o_channels(self):
        sim = Simulator(seed=9)
        medium = contended_medium(sim, contention_vector=False)
        state = medium.contention
        dones = []
        for i in range(40):
            granted, _, done = state.acquire(f"s{i}", 1, 1000.0 * i, 0.0, 0.01 + i * 1e-4)
            assert granted
            dones.append(done)
        state._busy = self._NoIterDict(state._busy)
        assert state.busy_until(1) == max(dones)
        assert state.busy_until(6) == 0.0

    @needs_numpy
    def test_vector_busy_until_matches_scalar(self):
        results = []
        for vector in (False, True):
            sim = Simulator(seed=9)
            medium = contended_medium(sim, contention_vector=vector)
            state = medium.contention
            for i in range(10):
                state.acquire(f"s{i}", 1, 400.0 * i, 0.0, 0.005)
                state.acquire(f"m{i}", 6, 400.0 * i, 0.0, 0.002)
            results.append((state.busy_until(1), state.busy_until(6), state.busy_until(11)))
        assert results[0] == results[1]


@needs_numpy
class TestEndToEndTraceEquality:
    """Whole contended runs on hand-built worlds, scalar vs vector."""

    def _run(self, vector, loss_rate=0.3, seed=11):
        sim = Simulator(seed=seed)
        medium = contended_medium(sim, contention_vector=vector, loss_rate=loss_rate)
        stations = []
        # A corridor of cells with hidden-terminal geometry plus two
        # bystander receivers per cell — enough traffic to defer, carry
        # flights, and wipe receivers on both paths.
        for i in range(6):
            x = 95.0 + 105.0 * i
            stations.append(FakeStation(f"tx{i}", x=x))
            stations.append(FakeStation(f"rx{i}", x=x + 60.0))
        for s in stations:
            medium.register(s)
        for burst in range(3):
            for i in range(6):
                medium.transmit(
                    stations[2 * i], data_frame(f"tx{i}", f"rx{i}", size=600 + 200 * burst)
                )
        sim.run(until=2.0)
        state = medium.contention
        return (
            [(s.station_id, s.received, s.failed) for s in stations],
            medium.frames_delivered,
            medium.frames_lost,
            medium.frames_collided,
            state.grants,
            state.deferrals,
            state.collisions,
            dict(state.collisions_by_sender),
            {c: round(v, 12) for c, v in state.airtime_s_by_channel.items()},
        )

    def test_traces_identical(self):
        assert self._run(False) == self._run(True)

    def test_traces_identical_lossless(self):
        assert self._run(False, loss_rate=0.0, seed=4) == self._run(
            True, loss_rate=0.0, seed=4
        )


# ----------------------------------------------------------------------
# Trial scale: whole contended town drives, scalar vs array-backed state.

from dataclasses import replace  # noqa: E402

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.schedule import OperationMode  # noqa: E402
from repro.experiments.api import to_jsonable  # noqa: E402
from repro.experiments.common import TownTrialSpec, run_town_trial_spec  # noqa: E402
from repro.experiments.dense_town import (  # noqa: E402
    DenseTownSpec,
    _vector_env,
    run_dense_trial,
    run_spec,
)
from repro.experiments.town_runs import spider_factory  # noqa: E402
from repro.obs.export import build_payload, collect_snapshots  # noqa: E402
from repro.sim import radio  # noqa: E402
from repro.sim.faults import ApFlap, DhcpStall, FaultPlan, RandomOutages  # noqa: E402


@contextmanager
def _both_paths_env(vector):
    """Pin the medium AND contention path envs for one trial body.

    ``_vector_env`` covers ``REPRO_MEDIUM_VECTOR`` only; the envelope
    property runs identical specs (``vector=None``/``contention_vector=
    None``) both ways so the serialized spec matches byte for byte, which
    means both toggles must come from the environment.
    """
    before = os.environ.get(CONTENTION_VECTOR_ENV)
    os.environ[CONTENTION_VECTOR_ENV] = "1" if vector else "0"
    try:
        with _vector_env(vector):
            yield
    finally:
        if before is None:
            os.environ.pop(CONTENTION_VECTOR_ENV, None)
        else:
            os.environ[CONTENTION_VECTOR_ENV] = before

#: Small-but-contended: dense enough that flights stack, defers fire, and
#: the vectorized medium engages at the real thresholds, small enough to
#: run twice per regime.
CONTENDED_DENSE = DenseTownSpec(
    duration_s=1.5,
    town="city",
    n_vehicles=3,
    loop_length_m=1500.0,
    ap_density_per_km=80.0,
    telemetry=True,
    contention=ContentionSpec(),
)


def _dense_pair(spec, seed=0):
    """One contended dense trial per code path, same seed."""
    scalar = run_dense_trial(
        replace(spec, vector=False, contention_vector=False), seed=seed
    )
    vector = run_dense_trial(
        replace(spec, vector=True, contention_vector=True), seed=seed
    )
    return scalar, vector


@needs_numpy
class TestContendedTrialBitIdentity:
    """Dense-town regimes: results AND deterministic telemetry match."""

    def _assert_identical(self, spec, seed=0):
        scalar, vector = _dense_pair(spec, seed=seed)
        assert scalar == vector  # dataclass equality: bit-for-bit floats
        assert scalar.telemetry is not None
        assert scalar.frames_delivered > 0

    def test_static_fleet(self):
        """Speed 0: every sender re-contends from a frozen position, so
        the sense grid and flight cells never churn spatially."""
        self._assert_identical(replace(CONTENDED_DENSE, speed_mps=0.0))

    def test_mobile_fleet(self):
        self._assert_identical(CONTENDED_DENSE, seed=1)

    def test_clustered_lossy_world(self):
        """Clustered AP drops pile flights into few cells (deep scans on
        both paths) while loss draws interleave with backoff draws."""
        self._assert_identical(
            replace(CONTENDED_DENSE, clustered=True, loss_rate=0.25), seed=2
        )

    def test_staggered_vs_colocated_starts(self):
        """The stagger regime both ways: the default drive staggers
        ``start_arc_m`` around the loop; pinning the loop short packs the
        staggered vehicles into adjacent cells instead, so both the
        spread and the crowded geometry must agree."""
        self._assert_identical(replace(CONTENDED_DENSE, loop_length_m=900.0), seed=3)


@needs_numpy
class TestContendedFaultPlanIdentity:
    """A full fault plan on a contended amherst drive, both paths."""

    def _run(self, monkeypatch, vector):
        monkeypatch.setenv(radio.VECTOR_ENV, "1" if vector else "0")
        monkeypatch.setenv(CONTENTION_VECTOR_ENV, "1" if vector else "0")
        monkeypatch.setattr(radio, "VECTOR_MIN_STATIONS", 0)
        plan = FaultPlan(
            events=(
                ApFlap(start_s=5.0, count=2, down_s=3.0, up_s=4.0),
                DhcpStall(at_s=12.0, duration_s=6.0),
                RandomOutages(start_s=0.0, end_s=30.0, rate_per_min=2.0),
            )
        )
        spec = TownTrialSpec(
            factory=spider_factory(OperationMode.single_channel(1), 7),
            label="contended-faults",
            seed=2,
            duration_s=30.0,
            telemetry=True,
            contention=ContentionSpec(),
            faults=plan,
        )
        return run_town_trial_spec(spec)

    def test_fault_plan_trace_identical(self, monkeypatch):
        import pickle

        scalar = self._run(monkeypatch, False)
        vector = self._run(monkeypatch, True)
        assert pickle.dumps(replace(scalar, telemetry=None)) == pickle.dumps(
            replace(vector, telemetry=None)
        )
        assert scalar.telemetry is not None
        assert pickle.dumps(scalar.telemetry.deterministic()) == pickle.dumps(
            vector.telemetry.deterministic()
        )


@needs_numpy
class TestContendedRandomGridProperty:
    """Hypothesis: contended byte-identity over arbitrary dense grids.

    The strongest form of the contract: the whole experiment envelope
    (JSON) and the deterministic telemetry export payload are serialized
    and compared as bytes, over random world geometry, loss, clustering,
    and fleet size — the same surface users diff between runs.
    """

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=3),
        loop_length_m=st.sampled_from([1200.0, 1500.0, 1800.0]),
        ap_density_per_km=st.sampled_from([60.0, 80.0, 100.0]),
        loss_rate=st.sampled_from([0.0, 0.1, 0.25]),
        clustered=st.booleans(),
        n_vehicles=st.integers(min_value=2, max_value=3),
    )
    def test_random_contended_grid_byte_identity(
        self, seed, loop_length_m, ap_density_per_km, loss_rate, clustered, n_vehicles
    ):
        spec = DenseTownSpec(
            seeds=(seed,),
            duration_s=1.2,
            town="city",
            n_vehicles=n_vehicles,
            loop_length_m=loop_length_m,
            ap_density_per_km=ap_density_per_km,
            loss_rate=loss_rate,
            clustered=clustered,
            telemetry=True,
            contention=ContentionSpec(),
        )
        dumps = {}
        for vector in (False, True):
            with _both_paths_env(vector):
                envelope = run_spec(spec)
            assert envelope.ok
            dumps[vector] = (
                json.dumps(to_jsonable(envelope), sort_keys=True).encode(),
                json.dumps(
                    build_payload(collect_snapshots(envelope.value)), sort_keys=True
                ).encode(),
            )
        assert dumps[False] == dumps[True]
