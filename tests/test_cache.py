"""Tests for the content-addressed trial-result cache (``repro.cache``).

The cache's contract is absolute: a warm run must be *byte-identical* to a
cold run — same ``TrialResult`` envelopes, same merged telemetry, same JSON
— and any behavioral change to the simulation code must invalidate every
stale entry.  These tests pin the keying algebra, the storage layer's
crash-safety, the runner wiring (serial, parallel, sharded), the
hypothesis-level cold/warm equivalence, and fingerprint invalidation.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    TrialCache,
    activate,
    active_cache,
    cache_key,
    cache_stats,
    canonical_token,
    code_fingerprint,
    fingerprint_sources,
    iter_entries,
    prune_cache,
    resolve_cache,
    verify_cache,
)
from repro.obs.telemetry import Telemetry, merge_snapshots
from repro.obs.export import snapshot_to_jsonable
from repro.runner import ShardedJob, TrialJob, run_jobs, run_sharded


# ---------------------------------------------------------------------------
# Module-level job functions (cacheable: importable + stable addresses)
# ---------------------------------------------------------------------------
_CALLS = {"count": 0}


def _double(x):
    _CALLS["count"] += 1
    return x * 2


def _boom(x):
    raise ValueError(f"boom {x}")


def _tiny_trial(seed, duration):
    """A deterministic stand-in for a town trial, telemetry included."""
    tele = Telemetry(enabled=True, key=("tiny", seed))
    tele.counter("tiny.trials").inc()
    tele.counter("tiny.work").inc(seed * 3 + 1)
    tele.histogram("tiny.duration_s").observe(duration)
    return {
        "seed": seed,
        "duration": duration,
        "metric": (seed + 1) * duration,
        "telemetry": tele.snapshot(),
    }


def _shard_pids(shard, *args):
    return [os.getpid() for _ in shard]


@dataclass(frozen=True)
class _SpecLike:
    label: str
    seed: int = 0
    weights: tuple = (0.5, 1.5)


# ---------------------------------------------------------------------------
# Canonical tokens and keys
# ---------------------------------------------------------------------------
class TestCanonicalToken:
    def test_primitives_round_trip(self):
        for obj in (None, True, 3, -7, "x", 2.5, b"\x00\x01"):
            assert canonical_token(obj) == canonical_token(obj)

    def test_dict_order_independent(self):
        assert canonical_token({"a": 1, "b": 2}) == canonical_token(
            {"b": 2, "a": 1}
        )

    def test_set_order_independent(self):
        assert canonical_token({"x", "y", "zz"}) == canonical_token(
            {"zz", "y", "x"}
        )

    def test_list_vs_tuple_distinct(self):
        assert canonical_token([1, 2]) != canonical_token((1, 2))

    def test_float_int_distinct(self):
        assert canonical_token(1.0) != canonical_token(1)

    def test_dataclass_includes_class_and_fields(self):
        token = canonical_token(_SpecLike(label="t2"))
        assert "_SpecLike" in token and "t2" in token
        assert canonical_token(_SpecLike(label="t2")) == token
        assert canonical_token(_SpecLike(label="t2", seed=1)) != token

    def test_function_by_qualified_name(self):
        assert canonical_token(_double) == canonical_token(_double)
        assert canonical_token(_double) != canonical_token(_boom)

    def test_trial_job_token_covers_args(self):
        a = canonical_token(TrialJob(_double, (1,)))
        b = canonical_token(TrialJob(_double, (2,)))
        assert a != b

    def test_key_depends_on_fingerprint(self):
        token = canonical_token(TrialJob(_double, (1,)))
        assert cache_key(token, "fp-a") != cache_key(token, "fp-b")

    def test_unpicklable_raises(self):
        with pytest.raises(Exception):
            canonical_token(lambda: None)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
class TestTrialCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        key = cache.key_for(TrialJob(_double, (21,)))
        assert cache.get(key) == (False, None)
        assert cache.put(key, {"answer": 42})
        hit, value = cache.get(key)
        assert hit and value == {"answer": 42}
        assert cache.stats["hits"] == 1 and cache.stats["misses"] == 1

    def test_corrupt_entry_is_a_miss_and_deleted(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        key = cache.key_for(TrialJob(_double, (1,)))
        cache.put(key, 2)
        path = cache.path_for(key)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit
        assert not path.exists()
        assert cache.stats["errors"] == 1

    def test_key_mismatch_rejected(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        key_a = cache.key_for(TrialJob(_double, (1,)))
        key_b = cache.key_for(TrialJob(_double, (2,)))
        cache.put(key_a, 2)
        # Copy A's bytes under B's address: stored key no longer matches.
        cache.path_for(key_b).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(key_b).write_bytes(cache.path_for(key_a).read_bytes())
        hit, _ = cache.get(key_b)
        assert not hit

    def test_uncacheable_job_keys_none(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        assert cache.key_for(TrialJob(lambda: None)) is None

    def test_telemetry_counters_exported(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        key = cache.key_for(TrialJob(_double, (1,)))
        cache.get(key)
        cache.put(key, 2)
        cache.get(key)
        counters = dict(cache.snapshot().counters)
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] == 1
        assert counters["cache.stores"] == 1
        assert counters["cache.bytes_read"] > 0

    def test_describe_mentions_hits_and_misses(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        assert "0 hit(s)" in cache.describe()


class TestResolveActivate:
    def test_explicit_cache_wins(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        assert resolve_cache(cache) is cache

    def test_false_disables_even_with_ambient(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        with activate(cache):
            assert resolve_cache(False) is None

    def test_none_picks_up_ambient(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        assert resolve_cache(None) is None or active_cache() is not None
        with activate(cache):
            assert resolve_cache(None) is cache
        assert active_cache() is None

    def test_env_enables(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = resolve_cache(None)
        assert cache is not None
        assert Path(cache.root) == (tmp_path / "envcache").resolve()

    def test_env_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_cache(None) is None

    def test_activate_none_is_noop(self):
        with activate(None):
            assert active_cache() is None


# ---------------------------------------------------------------------------
# Runner wiring
# ---------------------------------------------------------------------------
class TestRunJobsCaching:
    def test_warm_rerun_skips_execution(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        jobs = [TrialJob(_double, (i,), tag=i) for i in range(4)]
        _CALLS["count"] = 0
        cold = run_jobs(jobs, cache=cache)
        assert _CALLS["count"] == 4
        warm = run_jobs([TrialJob(_double, (i,), tag=i) for i in range(4)], cache=cache)
        assert _CALLS["count"] == 4  # no re-execution
        assert cold == warm
        assert cache.stats["hits"] == 4

    def test_failures_never_cached(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        first = run_jobs([TrialJob(_boom, (1,), tag="b")], cache=cache)
        second = run_jobs([TrialJob(_boom, (1,), tag="b")], cache=cache)
        assert not first[0].ok and not second[0].ok
        assert cache.stats["stores"] == 0
        assert cache.stats["misses"] == 2

    def test_parallel_cold_serial_warm_identical(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        jobs = lambda: [TrialJob(_tiny_trial, (i, 10.0), tag=i) for i in range(5)]
        cold = run_jobs(jobs(), workers=2, cache=cache)
        warm = run_jobs(jobs(), workers=1, cache=cache)
        assert [r.value for r in cold] == [r.value for r in warm]
        assert cache.stats["hits"] == 5

    def test_hit_envelope_matches_fresh_success(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        fresh = run_jobs([TrialJob(_double, (3,), tag="t")], cache=cache)[0]
        cached = run_jobs([TrialJob(_double, (3,), tag="t")], cache=cache)[0]
        assert fresh == cached  # ok/value/error/attempts/tag all equal

    def test_no_cache_keeps_legacy_path(self):
        _CALLS["count"] = 0
        run_jobs([TrialJob(_double, (1,))])
        run_jobs([TrialJob(_double, (1,))])
        assert _CALLS["count"] == 2

    def test_ambient_activation_reaches_run_jobs(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        with activate(cache):
            run_jobs([TrialJob(_double, (9,))])
            run_jobs([TrialJob(_double, (9,))])
        assert cache.stats["hits"] == 1


class TestRunShardedFallback:
    def test_single_core_runs_in_process(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_OVERCOMMIT", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        job = ShardedJob(fn=_shard_pids, items=tuple(range(6)), tag="pids")
        envelope = run_sharded(job, workers=4)
        assert envelope.ok
        assert envelope.value == [os.getpid()] * 6  # parent process, no pool

    def test_overcommit_escape_hatch(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_SHARD_OVERCOMMIT", "1")
        job = ShardedJob(fn=_shard_pids, items=tuple(range(4)), tag="pids")
        envelope = run_sharded(job, workers=2)
        assert envelope.ok
        assert any(pid != os.getpid() for pid in envelope.value)

    def test_clamped_results_equal_sharded(self, monkeypatch):
        job = ShardedJob(fn=_tiny_shard, items=tuple(range(7)), args=(3,))
        wide = run_sharded(job, workers=4)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        narrow = run_sharded(job, workers=4)
        assert wide.ok and narrow.ok and wide.value == narrow.value

    def test_sharded_cache_hits(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        job = ShardedJob(fn=_tiny_shard, items=tuple(range(5)), args=(2,), tag="s")
        cold = run_sharded(job, workers=2, cache=cache)
        warm = run_sharded(job, workers=2, cache=cache)
        assert cold == warm
        assert cache.stats["hits"] >= 1


def _tiny_shard(shard, offset):
    return [x * x + offset for x in shard]


# ---------------------------------------------------------------------------
# Cold vs warm equivalence (hypothesis property)
# ---------------------------------------------------------------------------
class TestColdWarmProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        grid=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),
                st.sampled_from([10.0, 30.0, 60.0]),
            ),
            min_size=1,
            max_size=8,
            unique=True,
        ),
        workers=st.sampled_from([1, 2]),
    )
    def test_cold_and_warm_runs_identical(self, tmp_path_factory, grid, workers):
        root = tmp_path_factory.mktemp("cache")
        cache = TrialCache(root, fingerprint="prop-fp")
        jobs = lambda: [
            TrialJob(_tiny_trial, (seed, duration), tag=(seed, duration))
            for seed, duration in grid
        ]
        cold = run_jobs(jobs(), workers=workers, cache=cache)
        warm = run_jobs(jobs(), workers=1, cache=cache)
        # Same TrialResult envelopes, element for element.
        assert cold == warm
        # Identical merged telemetry, down to the exported JSON bytes.
        cold_merged = merge_snapshots([r.value["telemetry"] for r in cold])
        warm_merged = merge_snapshots([r.value["telemetry"] for r in warm])
        assert cold_merged == warm_merged
        assert json.dumps(
            snapshot_to_jsonable(cold_merged), sort_keys=True
        ) == json.dumps(snapshot_to_jsonable(warm_merged), sort_keys=True)
        # Every job was computed exactly once across both runs.
        assert cache.stats["stores"] == len(grid)
        assert cache.stats["hits"] == len(grid)


# ---------------------------------------------------------------------------
# Fingerprint invalidation
# ---------------------------------------------------------------------------
class TestInvalidation:
    def test_editing_a_fingerprint_input_forces_a_miss(self, tmp_path):
        source = tmp_path / "fake_sim_module.py"
        source.write_text("RATE = 1.0\n")
        cache_v1 = TrialCache(
            tmp_path / "c", fingerprint=fingerprint_sources([source])
        )
        job = TrialJob(_double, (5,), tag="inv")
        key_v1 = cache_v1.key_for(job)
        assert run_jobs([job], cache=cache_v1)[0].value == 10
        assert cache_v1.get(key_v1)[0]

        source.write_text("RATE = 2.0\n")  # a behavioral edit
        cache_v2 = TrialCache(
            tmp_path / "c", fingerprint=fingerprint_sources([source])
        )
        key_v2 = cache_v2.key_for(job)
        assert key_v2 != key_v1
        assert cache_v2.get(key_v2) == (False, None)  # stale entry never hits

    def test_code_fingerprint_is_stable_and_covers_sim(self):
        assert code_fingerprint() == code_fingerprint()
        import repro.sim as sim_pkg

        sim_root = Path(sim_pkg.__path__[0])
        sources = sorted(sim_root.rglob("*.py"))
        assert sources, "repro.sim sources must exist for fingerprinting"
        # A different package set fingerprints differently.
        assert code_fingerprint(("repro.sim",)) != code_fingerprint(
            ("repro.core",)
        )

    def test_cc_module_is_inside_the_fingerprinted_tree(self):
        """The CC subsystem must invalidate cached trials when edited."""
        import repro.sim as sim_pkg
        from repro.cache import DEFAULT_FINGERPRINT_PACKAGES

        assert "repro.sim" in DEFAULT_FINGERPRINT_PACKAGES
        assert (Path(sim_pkg.__path__[0]) / "cc.py").is_file()

    def test_cc_byte_change_alters_fingerprint(self, tmp_path):
        import repro.sim as sim_pkg

        source = Path(sim_pkg.__path__[0]) / "cc.py"
        copy = tmp_path / "cc.py"
        copy.write_bytes(source.read_bytes())
        before = fingerprint_sources([copy])
        copy.write_bytes(source.read_bytes() + b"\n# behavioral tweak\n")
        assert fingerprint_sources([copy]) != before

    def test_transport_spec_changes_canonical_token(self):
        from repro.experiments.common import TownTrialSpec
        from repro.sim.cc import TransportSpec

        def spec(transport):
            return TownTrialSpec(
                factory=_double, label="t", seed=0, transport=transport
            )

        default = canonical_token(spec(None))
        reno = canonical_token(spec(TransportSpec()))
        cubic = canonical_token(spec(TransportSpec(cc="cubic")))
        split = canonical_token(spec(TransportSpec(split=True)))
        assert len({default, reno, cubic, split}) == 4


# ---------------------------------------------------------------------------
# Maintenance helpers (stats / prune / verify)
# ---------------------------------------------------------------------------
class TestMaintenance:
    def _seed_cache(self, root):
        cache = TrialCache(root, fingerprint="fp")
        for i in range(4):
            cache.put(cache.key_for(TrialJob(_double, (i,))), i * 2)
        return cache

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        self._seed_cache(tmp_path / "c")
        stats = cache_stats(tmp_path / "c")
        assert stats["entries"] == 4 and stats["bytes"] > 0

    def test_prune_all(self, tmp_path):
        self._seed_cache(tmp_path / "c")
        outcome = prune_cache(tmp_path / "c", drop_all=True)
        assert outcome["removed"] == 4 and outcome["kept"] == 0
        assert cache_stats(tmp_path / "c")["entries"] == 0

    def test_prune_by_age(self, tmp_path):
        cache = self._seed_cache(tmp_path / "c")
        entries = list(iter_entries(tmp_path / "c"))
        old = entries[0]
        os.utime(old.path, (old.mtime - 7200, old.mtime - 7200))
        outcome = prune_cache(tmp_path / "c", max_age_s=3600.0)
        assert outcome["removed"] == 1 and outcome["kept"] == 3

    def test_prune_by_size_evicts_lru_first(self, tmp_path):
        self._seed_cache(tmp_path / "c")
        entries = list(iter_entries(tmp_path / "c"))
        total = sum(e.size for e in entries)
        keep_budget = total - entries[0].size  # forces exactly one eviction
        outcome = prune_cache(tmp_path / "c", max_bytes=keep_budget)
        assert outcome["removed"] == 1
        assert cache_stats(tmp_path / "c")["bytes"] <= keep_budget

    def test_verify_clean_cache(self, tmp_path):
        self._seed_cache(tmp_path / "c")
        assert verify_cache(tmp_path / "c") == []

    def test_verify_flags_and_fixes_corruption(self, tmp_path):
        self._seed_cache(tmp_path / "c")
        victim = next(iter_entries(tmp_path / "c"))
        victim.path.write_bytes(b"garbage")
        problems = verify_cache(tmp_path / "c")
        assert len(problems) == 1 and "unreadable" in problems[0]
        assert verify_cache(tmp_path / "c", fix=True)  # deletes it
        assert verify_cache(tmp_path / "c") == []

    def test_verify_flags_key_mismatch(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        key = cache.key_for(TrialJob(_double, (1,)))
        cache.put(key, 2)
        path = cache.path_for(key)
        bogus = path.with_name("ab" * 32 + ".pkl")
        bogus.write_bytes(path.read_bytes())
        problems = verify_cache(tmp_path / "c")
        assert any("does not match" in p for p in problems)


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
class TestCacheCli:
    def test_stats_prune_verify(self, tmp_path, capsys):
        from repro.cache.__main__ import main

        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        cache.put(cache.key_for(TrialJob(_double, (1,))), 2)
        assert main(["stats", "--cache-dir", str(tmp_path / "c")]) == 0
        assert "entries   : 1" in capsys.readouterr().out
        assert main(["verify", "--cache-dir", str(tmp_path / "c")]) == 0
        assert main(["prune", "--cache-dir", str(tmp_path / "c"), "--all"]) == 0
        assert "pruned 1" in capsys.readouterr().out

    def test_prune_requires_a_policy(self, tmp_path, capsys):
        from repro.cache.__main__ import main

        assert main(["prune", "--cache-dir", str(tmp_path / "c")]) == 2

    def test_verify_exit_one_on_problems(self, tmp_path, capsys):
        from repro.cache.__main__ import main

        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        key = cache.key_for(TrialJob(_double, (1,)))
        cache.put(key, 2)
        cache.path_for(key).write_bytes(b"junk")
        assert main(["verify", "--cache-dir", str(tmp_path / "c")]) == 1
        assert main(["verify", "--cache-dir", str(tmp_path / "c"), "--fix"]) == 0
        assert main(["verify", "--cache-dir", str(tmp_path / "c")]) == 0

    def test_repro_cli_cache_flags(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = [
            "fig5",
            "--seed",
            "0",
            "--duration",
            "30",
            "--cache",
            "--cache-dir",
            str(tmp_path / "clicache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "miss" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert cold.out == warm.out  # rendered artifact byte-identical
        assert "hit" in warm.err


# ---------------------------------------------------------------------------
# End-to-end: a real town-trial grid, cold vs warm
# ---------------------------------------------------------------------------
class TestTownTrialsEndToEnd:
    def test_table2_style_grid_cold_warm_identical(self, tmp_path):
        from repro.core.schedule import OperationMode
        from repro.experiments.common import (
            TownTrialSpec,
            aggregate_town_trials,
        )
        from repro.experiments.town_runs import spider_factory, stock_factory

        specs = [
            TownTrialSpec(
                factory=factory,
                label=label,
                seed=seed,
                duration_s=40.0,
                telemetry=True,
            )
            for label, factory in (
                ("spider", spider_factory(OperationMode.single_channel(1), 2)),
                ("stock", stock_factory()),
            )
            for seed in (0, 1)
        ]
        cache = TrialCache(tmp_path / "c")
        cold = aggregate_town_trials(specs, cache=cache)
        warm = aggregate_town_trials(specs, cache=cache)
        assert cache.stats["stores"] == 4 and cache.stats["hits"] == 4
        for label in cold:
            c, w = cold[label], warm[label]
            assert [t.average_throughput_kBps for t in c.trials] == [
                t.average_throughput_kBps for t in w.trials
            ]
            assert [t.events_processed for t in c.trials] == [
                t.events_processed for t in w.trials
            ]
            cm, wm = c.merged_telemetry(), w.merged_telemetry()
            assert cm == wm
            assert json.dumps(
                snapshot_to_jsonable(cm), sort_keys=True
            ) == json.dumps(snapshot_to_jsonable(wm), sort_keys=True)


class TestSizeCap:
    """The LRU size budget: env parsing, auto-maintenance, and the lock."""

    def test_resolve_max_bytes_explicit_and_suffixes(self, monkeypatch):
        from repro.cache import CACHE_MAX_BYTES_ENV, resolve_cache_max_bytes

        assert resolve_cache_max_bytes(1234) == 1234
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "512k")
        assert resolve_cache_max_bytes() == 512 * 1024
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "2M")
        assert resolve_cache_max_bytes() == 2 * 1024 * 1024
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "1g")
        assert resolve_cache_max_bytes() == 1 << 30
        monkeypatch.delenv(CACHE_MAX_BYTES_ENV)
        assert resolve_cache_max_bytes() is None

    def test_resolve_max_bytes_garbage_warns(self, monkeypatch):
        from repro.cache import CACHE_MAX_BYTES_ENV, resolve_cache_max_bytes

        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "bogus")
        with pytest.warns(UserWarning):
            assert resolve_cache_max_bytes() is None
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "-5")
        with pytest.warns(UserWarning):
            assert resolve_cache_max_bytes() is None

    def test_put_auto_maintains_within_budget(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp", max_bytes=2000)
        for i in range(40):
            cache.put(cache.key_for(TrialJob(_double, (i,))), list(range(20)))
        cache.maintain()  # flush the tail below the maintenance threshold
        assert cache_stats(tmp_path / "c")["bytes"] <= 2000
        # The cache stayed useful: recent entries survive the evictions.
        assert cache_stats(tmp_path / "c")["entries"] > 0

    def test_uncapped_cache_never_maintains(self, tmp_path):
        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        assert cache.max_bytes is None
        for i in range(10):
            cache.put(cache.key_for(TrialJob(_double, (i,))), i)
        assert cache.maintain() is None
        assert cache_stats(tmp_path / "c")["entries"] == 10

    def test_cache_lock_serializes_maintainers(self, tmp_path):
        from repro.cache import cache_lock

        root = tmp_path / "c"
        root.mkdir()
        with cache_lock(root) as held:
            assert held
            # flock is per-fd: a second non-blocking acquire (another
            # pruner) must report contention, not deadlock.
            with cache_lock(root, blocking=False) as second:
                assert second is False
        with cache_lock(root, blocking=False) as again:
            assert again is True

    def test_prune_cli_uses_env_budget(self, tmp_path, monkeypatch, capsys):
        from repro.cache import CACHE_MAX_BYTES_ENV
        from repro.cache.__main__ import main as cache_main

        cache = TrialCache(tmp_path / "c", fingerprint="fp")
        for i in range(6):
            cache.put(cache.key_for(TrialJob(_double, (i,))), list(range(50)))
        before = cache_stats(tmp_path / "c")["bytes"]
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, str(before // 2))
        assert cache_main(["prune", "--cache-dir", str(tmp_path / "c")]) == 0
        assert cache_stats(tmp_path / "c")["bytes"] <= before // 2
        assert "pruned" in capsys.readouterr().out

    def test_prune_cli_without_any_budget_errors(self, tmp_path, monkeypatch, capsys):
        from repro.cache import CACHE_MAX_BYTES_ENV
        from repro.cache.__main__ import main as cache_main

        monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
        assert cache_main(["prune", "--cache-dir", str(tmp_path / "c")]) == 2
        assert "REPRO_CACHE_MAX_BYTES" in capsys.readouterr().err
