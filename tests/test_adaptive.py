"""Tests for the speed-adaptive scheduler (§4.8 extension)."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptiveScheduler
from repro.core.link_manager import SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import SpiderClient
from repro.sim.mobility import StaticPosition

from conftest import make_lab_ap


def make_client(sim, world, channels=(1, 6, 11)):
    config = SpiderConfig.spider_defaults(
        OperationMode.equal_split(channels, 0.6), num_interfaces=3
    )
    client = SpiderClient(
        sim, world, StaticPosition(0, 0), config, client_id="ad", enable_traffic=False
    )
    client.start()
    return client


class TestModeSelection:
    def test_fast_speed_locks_single_channel(self, sim, world):
        make_lab_ap(world, channel=6)
        client = make_client(sim, world)
        scheduler = AdaptiveScheduler(sim, client, speed_fn=lambda: 15.0)
        sim.run(until=30.0)
        assert client.config.mode.is_single_channel
        assert scheduler.mode_switches >= 1

    def test_slow_speed_uses_discovery_schedule(self, sim, world):
        make_lab_ap(world, channel=6)
        client = make_client(sim, world)
        AdaptiveScheduler(sim, client, speed_fn=lambda: 3.0)
        sim.run(until=30.0)
        assert not client.config.mode.is_single_channel

    def test_fast_single_channel_prefers_observed_best(self, sim, world):
        for x in (5.0, 8.0):
            make_lab_ap(world, channel=6, x=x)
        make_lab_ap(world, channel=1, x=60.0)
        client = make_client(sim, world)
        scheduler = AdaptiveScheduler(sim, client, speed_fn=lambda: 15.0)
        sim.run(until=40.0)
        assert scheduler.best_channel() == 6
        assert client.config.mode.channels == [6]

    def test_speed_threshold_boundary(self, sim, world):
        make_lab_ap(world, channel=6)
        client = make_client(sim, world)
        AdaptiveScheduler(
            sim, client, speed_fn=lambda: 10.0, speed_threshold_mps=10.0
        )
        sim.run(until=20.0)
        assert client.config.mode.is_single_channel  # >= threshold counts as fast


class TestStarvationEscape:
    def test_starved_fast_client_falls_back_to_discovery(self, sim, world):
        # No APs at all: single-channel mode can never connect.
        client = make_client(sim, world)
        scheduler = AdaptiveScheduler(
            sim, client, speed_fn=lambda: 15.0, starvation_s=5.0
        )
        sim.run(until=40.0)
        assert not client.config.mode.is_single_channel

    def test_speed_changes_flip_modes(self, sim, world):
        make_lab_ap(world, channel=6)
        client = make_client(sim, world)
        speed = {"v": 15.0}
        scheduler = AdaptiveScheduler(sim, client, speed_fn=lambda: speed["v"])
        sim.run(until=20.0)
        assert client.config.mode.is_single_channel
        speed["v"] = 2.0
        sim.run(until=40.0)
        assert not client.config.mode.is_single_channel
        assert scheduler.mode_switches >= 2

    def test_stop_freezes_mode(self, sim, world):
        make_lab_ap(world, channel=6)
        client = make_client(sim, world)
        scheduler = AdaptiveScheduler(sim, client, speed_fn=lambda: 15.0)
        sim.run(until=20.0)
        scheduler.stop()
        mode = client.config.mode
        sim.run(until=40.0)
        assert client.config.mode is mode
