"""Tests for the shared experiment harness."""

from __future__ import annotations

import pytest

from repro.core.schedule import OperationMode
from repro.experiments.common import (
    AggregatedMetrics,
    run_town_trial,
    run_town_trials,
)
from repro.experiments.town_runs import spider_factory, stock_factory


class TestRunTownTrial:
    def test_deterministic_for_seed(self):
        factory = spider_factory(OperationMode.single_channel(1), 2)
        a = run_town_trial(factory, "x", seed=3, duration_s=90.0)
        b = run_town_trial(factory, "x", seed=3, duration_s=90.0)
        assert a.average_throughput_kBps == b.average_throughput_kBps
        assert a.connectivity_pct == b.connectivity_pct
        assert a.events_processed == b.events_processed

    def test_different_seeds_differ(self):
        factory = spider_factory(OperationMode.single_channel(1), 2)
        a = run_town_trial(factory, "x", seed=1, duration_s=90.0)
        b = run_town_trial(factory, "x", seed=2, duration_s=90.0)
        assert a.events_processed != b.events_processed

    def test_metrics_are_consistent(self):
        factory = spider_factory(OperationMode.single_channel(1), 2)
        trial = run_town_trial(factory, "x", seed=0, duration_s=90.0)
        assert 0.0 <= trial.connectivity_pct <= 100.0
        total_time = sum(trial.connection_durations_s) + sum(
            trial.disruption_durations_s
        )
        assert total_time == pytest.approx(trial.duration_s, abs=1.5)

    def test_stock_factory_works_in_harness(self):
        trial = run_town_trial(stock_factory(), "stock", seed=0, duration_s=90.0)
        assert trial.label == "stock"
        assert trial.average_throughput_kBps >= 0.0


class TestAggregation:
    @pytest.fixture(scope="class")
    def metrics(self) -> AggregatedMetrics:
        factory = spider_factory(OperationMode.single_channel(1), 2)
        return run_town_trials(factory, "agg", seeds=(0, 1), duration_s=90.0)

    def test_averages_over_seeds(self, metrics):
        per_trial = [t.average_throughput_kBps for t in metrics.trials]
        assert metrics.average_throughput_kBps == pytest.approx(
            sum(per_trial) / len(per_trial)
        )

    def test_pooled_distributions_concatenate(self, metrics):
        assert len(metrics.connection_durations_s) == sum(
            len(t.connection_durations_s) for t in metrics.trials
        )

    def test_pooled_join_times_match_logs(self, metrics):
        assert len(metrics.pooled_join_times()) == sum(
            len(t.join_log.join_times()) for t in metrics.trials
        )

    def test_failure_rates_drop_nan(self, metrics):
        rates = metrics.dhcp_failure_rates()
        assert all(r == r for r in rates)
