"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.mobility import StaticPosition
from repro.sim.world import World


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def world(sim) -> World:
    """A lossless world for deterministic protocol tests."""
    return World(sim, loss_rate=0.0)


@pytest.fixture
def lossy_world(sim) -> World:
    return World(sim, loss_rate=0.1)


@pytest.fixture
def static_client_position() -> StaticPosition:
    return StaticPosition(0.0, 0.0)


def make_lab_ap(world, channel=1, backhaul_bps=2e6, dhcp_delay=0.2, x=10.0):
    """One AP close to the origin with a deterministic DHCP delay."""
    return world.add_ap(
        channel=channel,
        position=(x, 0.0),
        backhaul_rate_bps=backhaul_bps,
        dhcp_response_delay=lambda: dhcp_delay,
    )
