"""Tests for the fleet experiment."""

from __future__ import annotations

import pytest

from repro.experiments.fleet import FleetResult, FleetRow, run


class TestFleetRun:
    @pytest.fixture(scope="class")
    def result(self) -> FleetResult:
        return run(fleet_sizes=(1, 2), seeds=(0,), duration_s=120.0)

    def test_rows_match_requested_sizes(self, result):
        assert [r.vehicles for r in result.rows] == [1, 2]

    def test_aggregate_consistent_with_per_vehicle(self, result):
        for row in result.rows:
            assert row.aggregate_kBps == pytest.approx(
                row.per_vehicle_kBps * row.vehicles
            )

    def test_connectivity_bounded(self, result):
        for row in result.rows:
            assert 0.0 <= row.mean_connectivity_pct <= 100.0

    def test_render_contains_rows(self, result):
        text = result.render()
        assert "Fleet scaling" in text
        assert "kB/s" in text


class TestFleetPredicates:
    def test_aggregate_grows_predicate(self):
        growing = FleetResult(
            rows=[FleetRow(1, 100, 100, 20), FleetRow(2, 60, 120, 20)]
        )
        assert growing.aggregate_grows()
        shrinking = FleetResult(
            rows=[FleetRow(1, 100, 100, 20), FleetRow(2, 10, 20, 20)]
        )
        assert not shrinking.aggregate_grows()

    def test_graceful_decline_predicate(self):
        graceful = FleetResult(
            rows=[FleetRow(1, 100, 100, 20), FleetRow(5, 40, 200, 20)]
        )
        assert graceful.per_vehicle_declines_gracefully()
        collapsed = FleetResult(
            rows=[FleetRow(1, 100, 100, 20), FleetRow(5, 5, 25, 20)]
        )
        assert not collapsed.per_vehicle_declines_gracefully()
