"""Tests for the FatVAP-style AP-sliced driver (ablation baseline)."""

from __future__ import annotations

import pytest

from repro.core.fatvap import ApSlicedDriver
from repro.core.link_manager import SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import SpiderClient
from repro.sim.engine import Simulator
from repro.sim.frames import FrameKind
from repro.sim.mobility import StaticPosition
from repro.workloads.town import lab_topology


def make_client(sim, world, mobility, num_interfaces=2, slice_s=0.1):
    config = SpiderConfig.spider_defaults(
        OperationMode.single_channel(1), num_interfaces=num_interfaces
    )
    client = SpiderClient(sim, world, mobility, config, client_id="fv")
    client.driver.stop()
    client.driver = ApSlicedDriver(sim, client.nic, config.mode, slice_s=slice_s)
    return client


class TestApSlicedDriver:
    def test_joins_and_transfers(self):
        sim = Simulator(seed=3)
        world, aps, mobility = lab_topology(sim, [(1, 2e6)] * 2, loss_rate=0.0, dhcp_delay_s=0.2)
        client = make_client(sim, world, mobility)
        client.start()
        sim.run(until=30.0)
        assert client.lmm.established_count == 2
        assert client.recorder.total_bytes > 100_000

    def test_reservation_psms_the_other_same_channel_ap(self):
        sim = Simulator(seed=3)
        world, aps, mobility = lab_topology(sim, [(1, 2e6)] * 2, loss_rate=0.0, dhcp_delay_s=0.2)
        client = make_client(sim, world, mobility)
        psm_seen = {ap.bssid: 0 for ap in aps}
        for ap in aps:
            original = ap.on_frame

            def spy(frame, rssi, ap=ap, original=original):
                if frame.kind is FrameKind.PSM:
                    psm_seen[ap.bssid] += 1
                original(frame, rssi)

            ap.on_frame = spy
        client.start()
        sim.run(until=30.0)
        # Both APs share channel 1, yet each gets PSM'd when the other is
        # scheduled — Spider's per-channel design would never do this.
        assert all(count > 10 for count in psm_seen.values())

    def test_cross_channel_slicing_switches_the_card(self):
        sim = Simulator(seed=4)
        world, aps, mobility = lab_topology(
            sim, [(1, 2e6), (11, 2e6)], loss_rate=0.0, dhcp_delay_s=0.2
        )
        config = SpiderConfig.spider_defaults(
            OperationMode.equal_split((1, 11), 0.2), num_interfaces=2
        )
        client = SpiderClient(sim, world, mobility, config, client_id="fvx")
        client.driver.stop()
        client.driver = ApSlicedDriver(sim, client.nic, config.mode, slice_s=0.1)
        client.start()
        sim.run(until=30.0)
        assert client.lmm.established_count == 2
        assert client.nic.switches > 20

    def test_stop_halts_slicing(self):
        sim = Simulator(seed=5)
        world, aps, mobility = lab_topology(sim, [(1, 2e6)], loss_rate=0.0)
        client = make_client(sim, world, mobility, num_interfaces=1)
        client.start()
        sim.run(until=5.0)
        client.stop()
        switches = client.nic.switches
        sim.run(until=10.0)
        assert client.nic.switches == switches

    def test_double_start_rejected(self):
        sim = Simulator(seed=6)
        world, aps, mobility = lab_topology(sim, [(1, 2e6)], loss_rate=0.0)
        client = make_client(sim, world, mobility, num_interfaces=1)
        client.start()
        with pytest.raises(RuntimeError):
            client.driver.start()
