"""Unit tests for the medium's per-channel delivery batching.

PR 3 replaced one engine event per frame with a per-channel queue drained
from a single event.  These tests pin the queue semantics: delivery order,
per-frame arrival clocks, the event-horizon stop, the idle-flag reset, and
the environment toggle that selects the implementation.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.frames import Frame, FrameKind
from repro.sim.radio import (
    BATCH_ENV,
    PROPAGATION_DELAY_S,
    Medium,
    _batching_enabled_from_env,
)


class RecordingStation:
    """Station that records what arrives and when."""

    def __init__(self, station_id, x=0.0, y=0.0, channel=1):
        self.station_id = station_id
        self.x, self.y = x, y
        self.channel = channel
        self.sim = None
        self.received = []

    def position(self):
        return (self.x, self.y)

    def tuned_channel(self):
        return self.channel

    def accepts(self, dst):
        return dst == self.station_id

    def on_frame(self, frame, rssi):
        self.received.append((frame.src, frame.kind, frame.size, rssi, self.sim.now))


def mgmt_frame(src, dst, channel=1, size=80):
    return Frame(kind=FrameKind.BEACON, src=src, dst=dst, size=size, channel=channel)


def build(sim, batch):
    medium = Medium(sim, loss_rate=0.0, batch_delivery=batch)
    rx = RecordingStation("rx", x=30.0)
    rx.sim = sim
    tx = RecordingStation("tx")
    tx.sim = sim
    medium.register(tx)
    medium.register(rx)
    return medium, tx, rx


class TestBatchedDelivery:
    def test_matches_unbatched_byte_for_byte(self):
        """Back-to-back frames arrive with identical payloads, RSSI, and clocks."""
        traces = []
        for batch in (False, True):
            sim = Simulator(seed=7)
            medium, tx, rx = build(sim, batch)
            for i in range(5):
                medium.transmit(tx, mgmt_frame("tx", "rx", size=80 + i))
            sim.run(until=1.0)
            traces.append(rx.received)
        assert traces[0] == traces[1]
        assert len(traces[1]) == 5

    def test_delivery_in_completion_time_order(self):
        sim = Simulator(seed=1)
        medium, tx, rx = build(sim, True)
        for i in range(4):
            medium.transmit(tx, mgmt_frame("tx", "rx", size=100))
        sim.run(until=1.0)
        times = [t for *_rest, t in rx.received]
        assert times == sorted(times)
        assert len(set(times)) == 4  # channel serialization separates them

    def test_per_frame_arrival_clock(self):
        """Each queued frame is delivered at its own completion time, not
        the drain event's dispatch time."""
        sim = Simulator(seed=2)
        medium, tx, rx = build(sim, True)
        done_times = [
            medium.transmit(tx, mgmt_frame("tx", "rx")) for _ in range(3)
        ]
        sim.run(until=1.0)
        arrival_times = [t for *_rest, t in rx.received]
        expected = [d + PROPAGATION_DELAY_S for d in done_times]
        assert arrival_times == pytest.approx(expected, abs=0.0)

    def test_drain_respects_run_bound(self):
        """A frame due beyond ``run(until=...)`` stays queued, exactly as a
        per-frame event would stay in the heap."""
        sim = Simulator(seed=3)
        medium, tx, rx = build(sim, True)
        done = medium.transmit(tx, mgmt_frame("tx", "rx"))
        sim.run(until=done / 2)
        assert rx.received == []
        sim.run(until=done + 1.0)
        assert len(rx.received) == 1

    def test_queue_reschedules_after_going_idle(self):
        sim = Simulator(seed=4)
        medium, tx, rx = build(sim, True)
        medium.transmit(tx, mgmt_frame("tx", "rx"))
        sim.run(until=1.0)
        assert len(rx.received) == 1
        medium.transmit(tx, mgmt_frame("tx", "rx"))
        sim.run(until=2.0)
        assert len(rx.received) == 2

    def test_channels_are_independent_queues(self):
        sim = Simulator(seed=5)
        medium = Medium(sim, loss_rate=0.0, batch_delivery=True)
        stations = {}
        for chan in (1, 6):
            rx = RecordingStation(f"rx{chan}", x=30.0, channel=chan)
            rx.sim = sim
            tx = RecordingStation(f"tx{chan}", channel=chan)
            tx.sim = sim
            medium.register(tx)
            medium.register(rx)
            stations[chan] = (tx, rx)
        for chan, (tx, rx) in stations.items():
            medium.transmit(tx, mgmt_frame(tx.station_id, rx.station_id, channel=chan))
        sim.run(until=1.0)
        for chan, (_tx, rx) in stations.items():
            assert len(rx.received) == 1


class TestEnvironmentToggle:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert _batching_enabled_from_env()
        assert Medium(Simulator(seed=0)).batch_delivery

    @pytest.mark.parametrize("value", ["0", "off", "false", "no"])
    def test_disable_values(self, monkeypatch, value):
        monkeypatch.setenv(BATCH_ENV, value)
        assert not _batching_enabled_from_env()
        assert not Medium(Simulator(seed=0)).batch_delivery

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "0")
        assert Medium(Simulator(seed=0), batch_delivery=True).batch_delivery
