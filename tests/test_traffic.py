"""Unit tests for client applications: ping service, liveness, flows."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.frames import Frame, FrameKind
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.traffic import ClientFlow, LivenessMonitor, PingService
from repro.sim.world import World

from conftest import make_lab_ap


@pytest.fixture
def joined(sim, world):
    """A fully joined interface (associated + leased) on a lab AP."""
    ap = make_lab_ap(world, channel=1, dhcp_delay=0.1)
    nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
    iface = nic.add_interface()
    iface.channel = 1
    iface.bssid = ap.bssid
    ap.on_frame(
        Frame(kind=FrameKind.ASSOC_REQUEST, src=iface.mac, dst=ap.bssid, size=80, channel=1),
        -40.0,
    )
    iface.link_associated = True
    from repro.sim.frames import DhcpMessage, DhcpType

    ap.dhcp.handle(DhcpMessage(DhcpType.DISCOVER, 99, iface.mac), lambda m, d: None)
    iface.ip = ap.dhcp.lease_for(iface.mac)
    iface.gateway_ip = ap.dhcp.gateway_ip
    return ap, nic, iface


class TestPingService:
    def test_end_to_end_ping_round_trip(self, sim, world, joined):
        ap, nic, iface = joined
        service = PingService(sim, iface, target_ip=world.server.ip)
        replies = []
        service.send(lambda: replies.append(sim.now))
        sim.run(until=2.0)
        assert len(replies) == 1
        assert world.server.pings_echoed == 1

    def test_gateway_ping_round_trip(self, sim, world, joined):
        ap, nic, iface = joined
        service = PingService(sim, iface, target_ip=None)
        replies = []
        service.send(lambda: replies.append(sim.now))
        sim.run(until=2.0)
        assert len(replies) == 1
        assert world.server.pings_echoed == 0  # answered locally

    def test_gateway_ping_faster_than_end_to_end(self, sim, world, joined):
        ap, nic, iface = joined
        gw_service = PingService(sim, iface, target_ip=None)
        gw_rtt, e2e_rtt = [], []
        start = sim.now
        gw_service.send(lambda: gw_rtt.append(sim.now - start))
        sim.run(until=2.0)
        gw_service.close()
        e2e_service = PingService(sim, iface, target_ip=world.server.ip)
        start2 = sim.now
        e2e_service.send(lambda: e2e_rtt.append(sim.now - start2))
        sim.run(until=4.0)
        assert gw_rtt and e2e_rtt
        assert gw_rtt[0] < e2e_rtt[0]  # no wired round trip for the gateway

    def test_probe_reports_success(self, sim, world, joined):
        ap, nic, iface = joined
        outcomes = []
        PingService(sim, iface, target_ip=world.server.ip).probe(1.0, outcomes.append)
        sim.run(until=2.0)
        assert outcomes == [True]

    def test_probe_reports_timeout_when_unreachable(self, sim, world, joined):
        ap, nic, iface = joined
        nic.tune(11)  # walk away from the AP's channel
        sim.run(until=0.1)
        outcomes = []
        PingService(sim, iface, target_ip=world.server.ip).probe(0.5, outcomes.append)
        sim.run(until=2.0)
        assert outcomes == [False]

    def test_requires_joined_interface(self, sim, world):
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "x", initial_channel=1)
        iface = nic.add_interface()
        with pytest.raises(RuntimeError):
            PingService(sim, iface)

    def test_close_detaches_handler(self, sim, world, joined):
        ap, nic, iface = joined
        service = PingService(sim, iface, target_ip=None)
        service.close()
        assert FrameKind.PING_REPLY not in iface.handlers


class TestLivenessMonitor:
    def test_healthy_link_stays_alive(self, sim, world, joined):
        ap, nic, iface = joined
        service = PingService(sim, iface, target_ip=None)
        deaths = []
        LivenessMonitor(sim, service, on_dead=lambda: deaths.append(sim.now))
        sim.run(until=10.0)
        assert deaths == []

    def test_dead_link_detected_after_miss_threshold(self, sim, world, joined):
        ap, nic, iface = joined
        service = PingService(sim, iface, target_ip=None)
        deaths = []
        LivenessMonitor(sim, service, on_dead=lambda: deaths.append(sim.now))
        sim.schedule(2.0, ap.stop)
        sim.schedule(2.0, lambda: world.medium.unregister(ap.bssid))
        sim.run(until=20.0)
        assert len(deaths) == 1
        # 30 misses at 10 Hz is ~3 s of silence.
        assert 2.0 + 2.5 < deaths[0] < 2.0 + 5.0

    def test_recovery_resets_miss_counter(self, sim, world, joined):
        ap, nic, iface = joined
        service = PingService(sim, iface, target_ip=None)
        deaths = []
        monitor = LivenessMonitor(sim, service, on_dead=lambda: deaths.append(sim.now))
        # Interrupt for 1 s (10 misses), then restore: must not die.
        sim.schedule(2.0, nic.tune, 11)
        sim.schedule(3.0, nic.tune, 1)
        sim.run(until=15.0)
        assert deaths == []
        assert monitor.consecutive_misses == 0

    def test_stop_prevents_death_callback(self, sim, world, joined):
        ap, nic, iface = joined
        service = PingService(sim, iface, target_ip=None)
        deaths = []
        monitor = LivenessMonitor(sim, service, on_dead=lambda: deaths.append(1))
        sim.schedule(0.5, ap.stop)
        sim.schedule(0.5, lambda: world.medium.unregister(ap.bssid))
        sim.schedule(1.0, monitor.stop)
        sim.run(until=20.0)
        assert deaths == []


class TestClientFlow:
    def test_download_delivers_bytes(self, sim, world, joined):
        ap, nic, iface = joined
        counted = []
        flow = ClientFlow(sim, world, iface, on_bytes=counted.append)
        sim.run(until=10.0)
        assert sum(counted) > 100_000
        assert flow.bytes_delivered == sum(counted)

    def test_throughput_limited_by_backhaul(self, sim, world):
        ap = make_lab_ap(world, channel=1, backhaul_bps=8e5, dhcp_delay=0.1)  # 100 kB/s
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli2", initial_channel=1)
        iface = nic.add_interface()
        iface.channel, iface.bssid = 1, ap.bssid
        ap.on_frame(
            Frame(kind=FrameKind.ASSOC_REQUEST, src=iface.mac, dst=ap.bssid, size=80, channel=1),
            -40.0,
        )
        from repro.sim.frames import DhcpMessage, DhcpType

        ap.dhcp.handle(DhcpMessage(DhcpType.DISCOVER, 5, iface.mac), lambda m, d: None)
        iface.ip = ap.dhcp.lease_for(iface.mac)
        flow = ClientFlow(sim, world, iface)
        sim.run(until=20.0)
        rate = flow.bytes_delivered / 20.0
        assert rate < 110_000  # cannot beat the shaped backhaul

    def test_finite_download_completes(self, sim, world, joined):
        ap, nic, iface = joined
        flow = ClientFlow(sim, world, iface, total_bytes=40_000)
        sim.run(until=20.0)
        assert flow.bytes_delivered == 40_000

    def test_close_stops_flow_and_detaches(self, sim, world, joined):
        ap, nic, iface = joined
        flow = ClientFlow(sim, world, iface)
        sim.run(until=2.0)
        flow.close()
        delivered = flow.bytes_delivered
        sim.run(until=4.0)
        assert flow.bytes_delivered == delivered
        assert FrameKind.DATA not in iface.handlers
        assert flow.flow_id not in world.server.flows

    def test_requires_joined_interface(self, sim, world):
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "x", initial_channel=1)
        iface = nic.add_interface()
        with pytest.raises(RuntimeError):
            ClientFlow(sim, world, iface)

    def test_two_flows_share_one_ap_backhaul(self, sim, world, joined):
        ap, nic, iface = joined
        iface2 = nic.add_interface()
        iface2.channel, iface2.bssid = 1, ap.bssid
        ap.on_frame(
            Frame(kind=FrameKind.ASSOC_REQUEST, src=iface2.mac, dst=ap.bssid, size=80, channel=1),
            -40.0,
        )
        from repro.sim.frames import DhcpMessage, DhcpType

        ap.dhcp.handle(DhcpMessage(DhcpType.DISCOVER, 7, iface2.mac), lambda m, d: None)
        iface2.ip = ap.dhcp.lease_for(iface2.mac)
        flow1 = ClientFlow(sim, world, iface)
        flow2 = ClientFlow(sim, world, iface2)
        sim.run(until=20.0)
        total_rate = (flow1.bytes_delivered + flow2.bytes_delivered) / 20.0
        assert total_rate < ap.backhaul_rate_bps / 8.0 * 1.1
