"""Whole-system determinism: identical seeds yield identical histories.

Reproducibility is a first-class requirement for a simulator-based
reproduction: every published number must be regenerable bit-for-bit.
These tests run complete Spider sessions twice and compare full event
histories, not just summary statistics.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.link_manager import SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import SpiderClient
from repro.experiments.common import (
    TownTrialSpec,
    run_town_trial,
    run_town_trial_envelopes,
    run_town_trial_specs,
)
from repro.experiments.town_runs import spider_factory, stock_factory
from repro.sim.engine import Simulator
from repro.sim.faults import (
    ApFlap,
    ApOutage,
    BurstyLoss,
    DhcpNakBurst,
    DhcpStall,
    FaultPlan,
    LeaseExhaustion,
    RandomOutages,
)
from repro.workloads.town import build_town


def run_session(seed: int, duration_s: float = 150.0, mode_channels=(1, 6, 11)):
    sim = Simulator(seed=seed)
    town = build_town(sim, preset="amherst")
    config = SpiderConfig.spider_defaults(
        OperationMode.equal_split(mode_channels, 0.6), num_interfaces=4
    )
    client = SpiderClient(
        sim, town.world, town.make_vehicle_mobility(10.0), config, client_id="det"
    )
    client.start()
    sim.run(until=duration_s)
    history = [
        (
            a.bssid,
            a.channel,
            round(a.started_at, 9),
            a.associated,
            a.leased,
            a.verified,
            None if a.join_time_s is None else round(a.join_time_s, 9),
        )
        for a in client.join_log.attempts
    ]
    return {
        "history": history,
        "bytes": client.recorder.total_bytes,
        "timeline": client.recorder.timeline(duration_s),
        "events": sim.events_processed,
        "switches": client.nic.switches,
    }


class TestFullSystemDeterminism:
    def test_identical_seeds_identical_histories(self):
        a = run_session(seed=77)
        b = run_session(seed=77)
        assert a == b

    def test_different_seeds_diverge(self):
        a = run_session(seed=1)
        b = run_session(seed=2)
        assert a["history"] != b["history"] or a["bytes"] != b["bytes"]

    def test_determinism_survives_single_channel_mode(self):
        a = run_session(seed=5, mode_channels=(1,))
        b = run_session(seed=5, mode_channels=(1,))
        assert a == b

    def test_event_counts_scale_with_duration(self):
        short = run_session(seed=9, duration_s=60.0)
        long = run_session(seed=9, duration_s=150.0)
        assert long["events"] > short["events"]


_TIMES = st.floats(0.0, 15.0, allow_nan=False, allow_infinity=False)
_WINDOWS = st.floats(0.5, 6.0, allow_nan=False, allow_infinity=False)

_FAULT_EVENTS = st.one_of(
    st.builds(ApOutage, at_s=_TIMES, duration_s=_WINDOWS),
    st.builds(
        ApFlap,
        start_s=_TIMES,
        count=st.integers(1, 3),
        down_s=_WINDOWS,
        up_s=_WINDOWS,
    ),
    st.builds(DhcpStall, at_s=_TIMES, duration_s=_WINDOWS),
    st.builds(DhcpNakBurst, at_s=_TIMES, duration_s=_WINDOWS),
    st.builds(LeaseExhaustion, at_s=_TIMES, duration_s=_WINDOWS),
    st.builds(
        BurstyLoss,
        at_s=_TIMES,
        duration_s=_WINDOWS,
        h_bad=st.floats(0.3, 0.9, allow_nan=False, allow_infinity=False),
    ),
    st.builds(
        RandomOutages,
        start_s=st.just(0.0),
        end_s=st.floats(5.0, 20.0, allow_nan=False, allow_infinity=False),
        rate_per_min=st.floats(1.0, 6.0, allow_nan=False, allow_infinity=False),
    ),
)

_PLANS = st.lists(_FAULT_EVENTS, min_size=0, max_size=3).map(
    lambda events: FaultPlan.of(*events)
)


class TestFaultPlanDeterminism:
    """Injected faults must not cost the system its reproducibility."""

    def _specs(self, plan):
        return [
            TownTrialSpec(
                factory=spider_factory(OperationMode.single_channel(1), 4),
                label="det-spider",
                seed=11,
                duration_s=20.0,
                faults=plan,
            ),
            TownTrialSpec(
                factory=stock_factory(),
                label="det-stock",
                seed=11,
                duration_s=20.0,
                faults=plan,
            ),
        ]

    def test_same_seed_same_plan_bit_identical(self):
        plan = FaultPlan.of(
            RandomOutages(start_s=0.0, end_s=20.0, rate_per_min=4.0),
            DhcpNakBurst(at_s=5.0, duration_s=10.0),
        )
        a = run_town_trial_specs(self._specs(plan), workers=1)
        b = run_town_trial_specs(self._specs(plan), workers=1)
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_empty_plan_equals_no_plan(self):
        # The fault machinery must consume zero randomness when inactive:
        # a trial with an empty plan is bit-identical to one with none.
        factory = spider_factory(OperationMode.single_channel(1), 4)
        bare = run_town_trial(factory, "x", seed=3, duration_s=20.0)
        empty = run_town_trial(
            factory, "x", seed=3, duration_s=20.0, faults=FaultPlan()
        )
        assert pickle.dumps(bare) == pickle.dumps(empty)

    @settings(max_examples=5, deadline=None)
    @given(plan=_PLANS)
    def test_serial_and_parallel_agree_for_any_plan(self, plan):
        serial = run_town_trial_envelopes(self._specs(plan), workers=1)
        parallel = run_town_trial_envelopes(self._specs(plan), workers=2)
        assert all(r.ok for r in serial) and all(r.ok for r in parallel)
        assert pickle.dumps([r.value for r in serial]) == pickle.dumps(
            [r.value for r in parallel]
        )
