"""Whole-system determinism: identical seeds yield identical histories.

Reproducibility is a first-class requirement for a simulator-based
reproduction: every published number must be regenerable bit-for-bit.
These tests run complete Spider sessions twice and compare full event
histories, not just summary statistics.
"""

from __future__ import annotations

import pytest

from repro.core.link_manager import SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import SpiderClient
from repro.sim.engine import Simulator
from repro.workloads.town import build_town


def run_session(seed: int, duration_s: float = 150.0, mode_channels=(1, 6, 11)):
    sim = Simulator(seed=seed)
    town = build_town(sim, preset="amherst")
    config = SpiderConfig.spider_defaults(
        OperationMode.equal_split(mode_channels, 0.6), num_interfaces=4
    )
    client = SpiderClient(
        sim, town.world, town.make_vehicle_mobility(10.0), config, client_id="det"
    )
    client.start()
    sim.run(until=duration_s)
    history = [
        (
            a.bssid,
            a.channel,
            round(a.started_at, 9),
            a.associated,
            a.leased,
            a.verified,
            None if a.join_time_s is None else round(a.join_time_s, 9),
        )
        for a in client.join_log.attempts
    ]
    return {
        "history": history,
        "bytes": client.recorder.total_bytes,
        "timeline": client.recorder.timeline(duration_s),
        "events": sim.events_processed,
        "switches": client.nic.switches,
    }


class TestFullSystemDeterminism:
    def test_identical_seeds_identical_histories(self):
        a = run_session(seed=77)
        b = run_session(seed=77)
        assert a == b

    def test_different_seeds_diverge(self):
        a = run_session(seed=1)
        b = run_session(seed=2)
        assert a["history"] != b["history"] or a["bytes"] != b["bytes"]

    def test_determinism_survives_single_channel_mode(self):
        a = run_session(seed=5, mode_channels=(1,))
        b = run_session(seed=5, mode_channels=(1,))
        assert a == b

    def test_event_counts_scale_with_duration(self):
        short = run_session(seed=9, duration_s=60.0)
        long = run_session(seed=9, duration_s=150.0)
        assert long["events"] > short["events"]
