"""Vectorized vs scalar delivery must agree bit-for-bit at trial scale.

The PR-6 tentpole (array-backed candidate selection in
``repro.sim.medium_vec``) is only admissible because it is
semantics-preserving: every metric, every loss draw, every telemetry
counter must be bit-identical to the scalar delivery scan.  These tests
run whole town trials — fault plans included — under both paths and
compare the full metric surface, then pin the contract where it is
actually consumed: the ``dense_town`` experiment's TrialResult envelope
and telemetry export serialized to JSON, compared byte-for-byte
(``filecmp`` on the written artifacts), including over
hypothesis-generated random dense worlds.

The unit-level contract (env toggle, numpy fallback, candidate-order
equivalence on hand-built worlds) lives in ``tests/test_medium_vector``.
"""

from __future__ import annotations

import filecmp
import json
from dataclasses import replace

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import OperationMode
from repro.experiments.api import to_jsonable
from repro.experiments.common import run_town_trial
from repro.experiments.dense_town import (
    DenseTownSpec,
    _vector_env,
    run_dense_trial,
    run_spec,
)
from repro.experiments.town_runs import spider_factory
from repro.obs.export import build_payload, collect_snapshots, write_payload
from repro.sim import radio
from repro.sim.faults import ApFlap, DhcpStall, FaultPlan, RandomOutages
from repro.sim.radio import VECTOR_ENV

TRIAL_S = 60.0

#: A small-but-dense world: enough APs that the vector path engages at the
#: real ``VECTOR_MIN_STATIONS`` threshold, small enough to run twice per
#: test without dominating the suite.
SMALL_DENSE = DenseTownSpec(
    duration_s=2.0,
    town="city",
    n_vehicles=3,
    loop_length_m=1500.0,
    ap_density_per_km=80.0,
    telemetry=True,
)


def _fingerprint(metrics):
    """Everything a town trial reports, minus the event counter."""
    return {
        "throughput": metrics.average_throughput_kBps,
        "connectivity": metrics.connectivity_pct,
        "connections": metrics.connection_durations_s,
        "disruptions": metrics.disruption_durations_s,
        "instantaneous": metrics.instantaneous_kBps,
        "links": metrics.links_established,
        "joins": [
            (
                a.bssid,
                a.channel,
                a.started_at,
                a.associated,
                a.leased,
                a.verified,
                a.join_time_s,
            )
            for a in metrics.join_log.attempts
        ],
    }


def _trial(monkeypatch, vector, factory, seed=0, faults=None):
    monkeypatch.setenv(VECTOR_ENV, "1" if vector else "0")
    return run_town_trial(
        factory, "det", seed=seed, duration_s=TRIAL_S, faults=faults
    )


class TestTownTrialBitIdentity:
    """Whole amherst trials, vector path forced on via a zero threshold."""

    @pytest.fixture(autouse=True)
    def _engage_vector_everywhere(self, monkeypatch):
        monkeypatch.setattr(radio, "VECTOR_MIN_STATIONS", 0)

    def test_spider_single_channel(self, monkeypatch):
        factory = spider_factory(OperationMode.single_channel(1), 7)
        a = _fingerprint(_trial(monkeypatch, False, factory))
        b = _fingerprint(_trial(monkeypatch, True, factory))
        assert a == b

    def test_spider_multi_channel(self, monkeypatch):
        factory = spider_factory(OperationMode.equal_split((1, 6, 11), 0.6), 4)
        a = _fingerprint(_trial(monkeypatch, False, factory, seed=3))
        b = _fingerprint(_trial(monkeypatch, True, factory, seed=3))
        assert a == b

    def test_under_fault_plan(self, monkeypatch):
        """AP fail/recover reassigns registration sequence numbers and the
        bursty-loss chain perturbs the draw stream; the vector index must
        track both without disturbing a single draw."""
        plan = FaultPlan(
            events=(
                ApFlap(start_s=10.0, count=3, down_s=4.0, up_s=6.0),
                DhcpStall(at_s=25.0, duration_s=10.0),
                RandomOutages(start_s=0.0, end_s=TRIAL_S, rate_per_min=2.0),
            )
        )
        factory = spider_factory(OperationMode.single_channel(1), 7)
        a = _fingerprint(_trial(monkeypatch, False, factory, seed=2, faults=plan))
        b = _fingerprint(_trial(monkeypatch, True, factory, seed=2, faults=plan))
        assert a == b


class TestDenseTownBitIdentity:
    """The contract at the scale it was built for, on real thresholds."""

    def test_rows_identical_with_telemetry(self):
        scalar = run_dense_trial(replace(SMALL_DENSE, vector=False), seed=0)
        vector = run_dense_trial(replace(SMALL_DENSE, vector=True), seed=0)
        assert scalar == vector  # dataclass equality: bit-for-bit floats
        assert scalar.telemetry is not None

    def test_envelope_and_telemetry_export_byte_identical(self, tmp_path):
        """The artifacts users diff — ``--json-out`` and ``--telemetry``
        files — must be byte-identical, enforced with ``filecmp``."""
        spec = replace(SMALL_DENSE, vector=None)  # identical spec both runs
        paths = {}
        for label, vector in (("scalar", False), ("vector", True)):
            with _vector_env(vector):
                envelope = run_spec(spec)
            assert envelope.ok
            trial_path = tmp_path / f"{label}.json"
            trial_path.write_text(
                json.dumps(to_jsonable(envelope), sort_keys=True, indent=2)
            )
            telemetry_path = tmp_path / f"{label}-telemetry.json"
            write_payload(str(telemetry_path), collect_snapshots(envelope.value))
            paths[label] = (trial_path, telemetry_path)
        assert filecmp.cmp(paths["scalar"][0], paths["vector"][0], shallow=False)
        assert filecmp.cmp(paths["scalar"][1], paths["vector"][1], shallow=False)

    def test_vector_path_is_deterministic(self):
        a = run_dense_trial(replace(SMALL_DENSE, vector=True), seed=5)
        b = run_dense_trial(replace(SMALL_DENSE, vector=True), seed=5)
        assert a == b


class TestRandomGridProperty:
    """Hypothesis: byte-identity holds over arbitrary dense town grids."""

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        loop_length_m=st.sampled_from([1200.0, 1500.0, 1800.0]),
        ap_density_per_km=st.sampled_from([60.0, 80.0, 100.0]),
        loss_rate=st.sampled_from([0.0, 0.1, 0.25]),
        clustered=st.booleans(),
        n_vehicles=st.integers(min_value=2, max_value=3),
    )
    def test_random_grid_byte_identity(
        self, seed, loop_length_m, ap_density_per_km, loss_rate, clustered, n_vehicles
    ):
        spec = DenseTownSpec(
            seeds=(seed,),
            duration_s=1.5,
            town="city",
            n_vehicles=n_vehicles,
            loop_length_m=loop_length_m,
            ap_density_per_km=ap_density_per_km,
            loss_rate=loss_rate,
            clustered=clustered,
            telemetry=True,
        )
        dumps = {}
        for vector in (False, True):
            with _vector_env(vector):
                envelope = run_spec(spec)
            assert envelope.ok
            dumps[vector] = (
                json.dumps(to_jsonable(envelope), sort_keys=True).encode(),
                json.dumps(
                    build_payload(collect_snapshots(envelope.value)), sort_keys=True
                ).encode(),
            )
        assert dumps[False] == dumps[True]
