"""Multiple clients sharing one world: contention and independence."""

from __future__ import annotations

import pytest

from repro.core.spider import SpiderClient
from repro.sim.engine import Simulator
from repro.sim.mobility import StaticPosition
from repro.sim.world import World

from conftest import make_lab_ap


class TestTwoClientsOneAp:
    def test_both_join_and_share_backhaul(self):
        sim = Simulator(seed=12)
        world = World(sim, loss_rate=0.02)
        ap = make_lab_ap(world, backhaul_bps=2e6)
        clients = [
            SpiderClient.single_channel_multi_ap(
                sim, world, StaticPosition(0, float(i)), channel=1,
                num_interfaces=1, client_id=f"car{i}",
            )
            for i in range(2)
        ]
        for client in clients:
            client.start()
        sim.run(until=30.0)
        assert all(c.links_established == 1 for c in clients)
        total_rate = sum(c.recorder.total_bytes for c in clients) / 30.0
        # Shared 2 Mb/s backhaul = 250 kB/s ceiling for the pair.
        assert total_rate < 2e6 / 8.0 * 1.1
        # Both clients get a share — neither starves.
        for client in clients:
            assert client.recorder.total_bytes > 100_000

    def test_clients_get_distinct_ips(self):
        sim = Simulator(seed=13)
        world = World(sim, loss_rate=0.0)
        make_lab_ap(world)
        clients = [
            SpiderClient.single_channel_multi_ap(
                sim, world, StaticPosition(0, float(i)), channel=1,
                num_interfaces=1, client_id=f"car{i}",
            )
            for i in range(3)
        ]
        for client in clients:
            client.start()
        sim.run(until=15.0)
        ips = {c.nic.interfaces[0].ip for c in clients}
        assert len(ips) == 3 and None not in ips


class TestTwoClientsTwoAps:
    def test_airtime_shared_on_common_channel(self):
        sim = Simulator(seed=14)
        world = World(sim, loss_rate=0.02)
        make_lab_ap(world, backhaul_bps=8e6, x=5.0)
        make_lab_ap(world, backhaul_bps=8e6, x=8.0)
        clients = []
        for i in range(2):
            client = SpiderClient.single_channel_multi_ap(
                sim, world, StaticPosition(0, float(i)), channel=1,
                num_interfaces=2, client_id=f"car{i}",
            )
            client.start()
            clients.append(client)
        sim.run(until=30.0)
        total_bps = sum(c.recorder.total_bytes for c in clients) * 8.0 / 30.0
        # Both clients' aggregate cannot exceed the 11 Mb/s channel.
        assert total_bps < 11e6

    def test_independent_channels_do_not_interfere(self):
        sim = Simulator(seed=15)
        world = World(sim, loss_rate=0.02)
        make_lab_ap(world, channel=1, backhaul_bps=2e6, x=5.0)
        make_lab_ap(world, channel=11, backhaul_bps=2e6, x=8.0)
        alone_rates = []
        for pair in (False, True):
            sim2 = Simulator(seed=16)
            world2 = World(sim2, loss_rate=0.02)
            make_lab_ap(world2, channel=1, backhaul_bps=2e6, x=5.0)
            make_lab_ap(world2, channel=11, backhaul_bps=2e6, x=8.0)
            a = SpiderClient.single_channel_multi_ap(
                sim2, world2, StaticPosition(0, 0), channel=1,
                num_interfaces=1, client_id="a",
            )
            a.start()
            if pair:
                b = SpiderClient.single_channel_multi_ap(
                    sim2, world2, StaticPosition(0, 1), channel=11,
                    num_interfaces=1, client_id="b",
                )
                b.start()
            sim2.run(until=30.0)
            alone_rates.append(a.recorder.total_bytes)
        solo, with_neighbour = alone_rates
        assert with_neighbour == pytest.approx(solo, rel=0.05)
