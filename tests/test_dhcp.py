"""Unit tests for the DHCP server, client state machine, and lease cache."""

from __future__ import annotations

import pytest

from repro.sim.dhcp import (
    DhcpClient,
    DhcpClientState,
    DhcpServer,
    Lease,
    LeaseCache,
)
from repro.sim.engine import Simulator
from repro.sim.frames import DhcpMessage, DhcpType
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


@pytest.fixture
def joined_iface(sim, world):
    """An interface already associated with a lab AP."""
    ap = make_lab_ap(world, channel=1, dhcp_delay=0.2)
    nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
    iface = nic.add_interface()
    iface.channel = 1
    iface.bssid = ap.bssid
    # Associate at the AP side so uplink data is accepted.
    from repro.sim.frames import Frame, FrameKind

    ap.on_frame(
        Frame(kind=FrameKind.ASSOC_REQUEST, src=iface.mac, dst=ap.bssid, size=80, channel=1),
        -40.0,
    )
    return ap, nic, iface


def run_client(sim, iface, ap, results, **kwargs):
    client = DhcpClient(
        sim,
        iface,
        server_bssid=ap.bssid,
        on_success=lambda ip, gw, dt, cached: results.append(("ok", ip, gw, dt, cached)),
        on_failure=lambda reason: results.append(("fail", reason)),
        **kwargs,
    )
    client.start()
    return client


class TestFullExchange:
    def test_lease_acquired(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        results = []
        run_client(sim, iface, ap, results)
        sim.run(until=5.0)
        assert results and results[0][0] == "ok"

    def test_lease_time_close_to_server_delay(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        results = []
        run_client(sim, iface, ap, results)
        sim.run(until=5.0)
        elapsed = results[0][3]
        assert 0.2 <= elapsed < 0.5  # server readiness 0.2 s plus handshakes

    def test_iface_gets_ip_and_gateway(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        run_client(sim, iface, ap, [])
        sim.run(until=5.0)
        assert iface.ip is not None
        assert iface.ip.startswith(ap.dhcp.subnet)
        assert iface.gateway_ip == ap.dhcp.gateway_ip

    def test_same_client_gets_stable_ip(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        results = []
        run_client(sim, iface, ap, results)
        sim.run(until=5.0)
        first_ip = results[0][1]
        results.clear()
        run_client(sim, iface, ap, results)
        sim.run(until=10.0)
        assert results[0][1] == first_ip

    def test_fresh_exchange_does_not_use_cache_flag(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        results = []
        run_client(sim, iface, ap, results)
        sim.run(until=5.0)
        assert results[0][4] is False

    def test_state_bound_at_end(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        client = run_client(sim, iface, ap, [])
        sim.run(until=5.0)
        assert client.state is DhcpClientState.BOUND

    def test_double_start_rejected(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        client = run_client(sim, iface, ap, [])
        with pytest.raises(RuntimeError):
            client.start()


class TestBudgetAndFailure:
    def test_slow_server_exhausts_budget(self, sim, world):
        ap = world.add_ap(
            channel=1, position=(10, 0), dhcp_response_delay=lambda: 10.0
        )
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        iface.channel = 1
        iface.bssid = ap.bssid
        results = []
        run_client(sim, iface, ap, results, attempt_budget_s=1.0)
        sim.run(until=5.0)
        assert results and results[0][0] == "fail"

    def test_failure_reports_state(self, sim, world):
        ap = world.add_ap(channel=1, position=(10, 0), dhcp_response_delay=lambda: 10.0)
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        iface.channel = 1
        iface.bssid = ap.bssid
        results = []
        run_client(sim, iface, ap, results, attempt_budget_s=0.5)
        sim.run(until=5.0)
        assert "selecting" in results[0][1]

    def test_abort_suppresses_callbacks(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        results = []
        client = run_client(sim, iface, ap, results)
        client.abort()
        sim.run(until=5.0)
        assert results == []

    def test_invalid_parameters_rejected(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        with pytest.raises(ValueError):
            DhcpClient(sim, iface, server_bssid=ap.bssid, timeout_s=0)
        with pytest.raises(ValueError):
            DhcpClient(sim, iface, server_bssid=ap.bssid, attempt_budget_s=0)


class TestReadinessSemantics:
    """Retransmitted DISCOVERs must not re-roll the server's latency."""

    def test_retransmissions_do_not_speed_up_offer(self, sim, world):
        delays = iter([2.0, 0.05, 0.05, 0.05])  # only the first draw counts
        ap = world.add_ap(
            channel=1, position=(10, 0), dhcp_response_delay=lambda: next(delays)
        )
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        iface.channel = 1
        iface.bssid = ap.bssid
        results = []
        run_client(sim, iface, ap, results, timeout_s=0.1, attempt_budget_s=5.0)
        sim.run(until=10.0)
        assert results[0][0] == "ok"
        assert results[0][3] >= 2.0  # bounded below by the first draw

    def test_new_transaction_redraws_latency(self, sim, world):
        draws = []

        def delay():
            value = 0.1 * (len(draws) + 1)
            draws.append(value)
            return value

        ap = world.add_ap(channel=1, position=(10, 0), dhcp_response_delay=delay)
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        iface.channel = 1
        iface.bssid = ap.bssid
        run_client(sim, iface, ap, [])
        sim.run(until=5.0)
        iface.ip = None
        run_client(sim, iface, ap, [])
        sim.run(until=10.0)
        assert len(draws) == 2


class TestLeaseCachePath:
    def _lease_once(self, sim, ap, iface):
        results = []
        run_client(sim, iface, ap, results)
        sim.run(until=5.0)
        return results[0]

    def test_cached_request_skips_discover(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        first = self._lease_once(sim, ap, iface)
        cached = Lease(ip=first[1], gateway_ip=first[2], expires_at=sim.now + 600)
        results = []
        run_client(sim, iface, ap, results, cached=cached)
        sim.run(until=10.0)
        ok, ip, gw, elapsed, used_cache = results[0]
        assert ok == "ok" and used_cache and ip == first[1]
        assert elapsed < 0.2  # no OFFER wait

    def test_stale_cached_ip_falls_back_to_discover(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        # An address owned by someone else forces a NAK.
        ap.dhcp._leases["other"] = f"{ap.dhcp.subnet}.99"
        ap.dhcp._ips_in_use[f"{ap.dhcp.subnet}.99"] = "other"
        cached = Lease(
            ip=f"{ap.dhcp.subnet}.99", gateway_ip=ap.dhcp.gateway_ip, expires_at=1e9
        )
        results = []
        run_client(sim, iface, ap, results, cached=cached)
        sim.run(until=10.0)
        ok, ip, gw, elapsed, used_cache = results[0]
        assert ok == "ok" and not used_cache
        assert ip != f"{ap.dhcp.subnet}.99"

    def test_cached_ip_from_prior_epoch_readmitted_when_free(self, sim, joined_iface):
        ap, nic, iface = joined_iface
        free_ip = f"{ap.dhcp.subnet}.42"
        cached = Lease(ip=free_ip, gateway_ip=ap.dhcp.gateway_ip, expires_at=1e9)
        results = []
        run_client(sim, iface, ap, results, cached=cached)
        sim.run(until=10.0)
        assert results[0][0] == "ok"
        assert results[0][1] == free_ip


class TestLeaseCacheStore:
    def test_put_get_roundtrip(self, sim):
        cache = LeaseCache(sim)
        cache.put("ap1", "10.0.0.5", "10.0.0.1", lease_time_s=100)
        lease = cache.get("ap1")
        assert lease is not None and lease.ip == "10.0.0.5"
        assert cache.hits == 1

    def test_expired_lease_not_returned(self, sim):
        cache = LeaseCache(sim)
        cache.put("ap1", "10.0.0.5", "10.0.0.1", lease_time_s=10)
        sim.schedule(20.0, lambda: None)
        sim.run()
        assert cache.get("ap1") is None
        assert cache.misses == 1

    def test_invalidate(self, sim):
        cache = LeaseCache(sim)
        cache.put("ap1", "10.0.0.5", "10.0.0.1", lease_time_s=100)
        cache.invalidate("ap1")
        assert cache.get("ap1") is None

    def test_miss_counts(self, sim):
        cache = LeaseCache(sim)
        assert cache.get("never") is None
        assert cache.misses == 1

    def test_len(self, sim):
        cache = LeaseCache(sim)
        cache.put("a", "1", "2", 100)
        cache.put("b", "1", "2", 100)
        assert len(cache) == 2


class TestServerInternals:
    def make_server(self, sim):
        return DhcpServer(sim, subnet="10.9.0", response_delay=lambda: 0.1)

    def test_pool_exhaustion_is_silent(self, sim):
        server = DhcpServer(
            sim, subnet="10.9.0", response_delay=lambda: 0.1, pool_size=1
        )
        replies = []
        server.handle(
            DhcpMessage(DhcpType.DISCOVER, 1, "mac-a"), lambda m, d: replies.append(m)
        )
        server.handle(
            DhcpMessage(DhcpType.DISCOVER, 2, "mac-b"), lambda m, d: replies.append(m)
        )
        offers = [m for m in replies if m.dhcp_type is DhcpType.OFFER]
        assert len(offers) == 1

    def test_mac_for_ip_reverse_lookup(self, sim):
        server = self.make_server(sim)
        server.handle(DhcpMessage(DhcpType.DISCOVER, 1, "mac-a"), lambda m, d: None)
        ip = server.lease_for("mac-a")
        assert server.mac_for_ip(ip) == "mac-a"
        assert server.mac_for_ip(server.gateway_ip) is None
        assert server.mac_for_ip("10.9.0.250") is None

    def test_request_for_foreign_subnet_nacked(self, sim):
        server = self.make_server(sim)
        replies = []
        server.handle(
            DhcpMessage(DhcpType.REQUEST, 1, "mac-a", offered_ip="192.168.0.5"),
            lambda m, d: replies.append(m),
        )
        assert replies[0].dhcp_type is DhcpType.NAK
