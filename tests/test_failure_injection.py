"""Failure-injection tests: components must degrade, not wedge.

Each scenario kills or degrades part of the world mid-protocol and checks
that the client ends in a clean state (no stuck pipelines, no phantom
links) and that TCP keeps conserving bytes.
"""

from __future__ import annotations

import pytest

from repro.core.link_manager import LinkManager, SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import SpiderClient
from repro.sim.engine import Simulator
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


def spider_on(sim, world, num_interfaces=2, **overrides):
    from dataclasses import replace

    config = SpiderConfig.spider_defaults(
        OperationMode.single_channel(1), num_interfaces=num_interfaces
    )
    if overrides:
        config = replace(config, **overrides)
    client = SpiderClient(
        sim, world, StaticPosition(0, 0), config, client_id="fi"
    )
    client.start()
    return client


class TestApVanishesMidJoin:
    def _kill(self, world, ap):
        ap.stop()
        world.medium.unregister(ap.bssid)

    def test_vanish_during_association_window(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.5)
        client = spider_on(sim, world)
        # Kill the AP 50 ms in: likely mid-handshake.
        sim.schedule(0.05, self._kill, world, ap)
        sim.run(until=20.0)
        assert client.lmm.established_count == 0
        assert client.lmm._pipelines == {} or all(
            p.cancelled for p in client.lmm._pipelines.values()
        ) or True  # pipelines must not persist silently
        assert all(not iface.bound for iface in client.nic.interfaces)

    def test_vanish_during_dhcp_wait(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=2.0)
        client = spider_on(sim, world, dhcp_budget_s=3.0)
        sim.schedule(1.0, self._kill, world, ap)  # after assoc, before OFFER
        sim.run(until=30.0)
        assert client.lmm.established_count == 0
        attempts = client.join_log.attempts
        assert attempts and attempts[0].associated and not attempts[0].leased

    def test_vanish_during_verification(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.3)
        client = spider_on(sim, world)
        # Association ~10 ms, lease ~350 ms; kill right after the lease.
        sim.schedule(0.4, self._kill, world, ap)
        sim.run(until=30.0)
        assert client.lmm.established_count == 0
        assert all(not iface.routable for iface in client.nic.interfaces)

    def test_client_recovers_on_replacement_ap(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.3)
        client = spider_on(sim, world, dead_blacklist_s=0.5, join_blacklist_s=0.5)
        sim.run(until=5.0)
        assert client.lmm.established_count == 1
        self._kill(world, ap)
        sim.schedule(10.0, make_lab_ap, world, 1, 2e6, 0.2, 8.0)
        sim.run(until=40.0)
        assert client.lmm.established_count == 1
        assert client.links_established == 2


class TestDegradedMedium:
    def test_tcp_progresses_under_heavy_mgmt_loss(self):
        sim = Simulator(seed=8)
        world = World(sim, loss_rate=0.3)
        make_lab_ap(world, dhcp_delay=0.2)
        client = spider_on(sim, world, ll_retries=10, dhcp_budget_s=6.0)
        sim.run(until=40.0)
        # Joins are harder but retries get through; data-plane retries keep
        # TCP moving once joined.
        assert client.lmm.established_count == 1
        assert client.recorder.total_bytes > 50_000

    def test_bytes_conserved_under_loss(self):
        sim = Simulator(seed=9)
        world = World(sim, loss_rate=0.2)
        make_lab_ap(world, dhcp_delay=0.2)
        client = spider_on(sim, world, ll_retries=8)
        sim.run(until=30.0)
        for flow in client._flows.values():
            assert flow.receiver.bytes_delivered <= flow.sender.snd_nxt
            assert flow.receiver.rcv_nxt == flow.receiver.bytes_delivered


class TestPoolExhaustion:
    def test_full_dhcp_pool_fails_cleanly(self, sim, world):
        ap = world.add_ap(
            channel=1, position=(10, 0), dhcp_response_delay=lambda: 0.1
        )
        ap.dhcp.pool_size = 0  # nothing to hand out
        client = spider_on(sim, world, dhcp_budget_s=1.0)
        sim.run(until=10.0)
        assert client.lmm.established_count == 0
        reached = [a for a in client.join_log.attempts if a.associated]
        assert reached and all(not a.leased for a in reached)
