"""Failure-injection tests: components must degrade, not wedge.

Each scenario kills or degrades part of the world mid-protocol and checks
that the client ends in a clean state (no stuck pipelines, no phantom
links) and that TCP keeps conserving bytes.
"""

from __future__ import annotations

import pytest

from repro.core.link_manager import LinkManager, SpiderConfig
from repro.core.schedule import OperationMode
from repro.core.spider import SpiderClient
from repro.sim.engine import Simulator
from repro.sim.faults import ApFlap, FaultPlan, install_faults
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


def spider_on(sim, world, num_interfaces=2, **overrides):
    from dataclasses import replace

    config = SpiderConfig.spider_defaults(
        OperationMode.single_channel(1), num_interfaces=num_interfaces
    )
    if overrides:
        config = replace(config, **overrides)
    client = SpiderClient(
        sim, world, StaticPosition(0, 0), config, client_id="fi"
    )
    client.start()
    return client


class TestApVanishesMidJoin:
    def _kill(self, world, ap):
        ap.stop()
        world.medium.unregister(ap.bssid)

    def test_vanish_during_association_window(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.5)
        client = spider_on(sim, world)
        # Kill the AP 50 ms in: likely mid-handshake.
        sim.schedule(0.05, self._kill, world, ap)
        sim.run(until=20.0)
        assert client.lmm.established_count == 0
        assert client.lmm._pipelines == {} or all(
            p.cancelled for p in client.lmm._pipelines.values()
        ) or True  # pipelines must not persist silently
        assert all(not iface.bound for iface in client.nic.interfaces)

    def test_vanish_during_dhcp_wait(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=2.0)
        client = spider_on(sim, world, dhcp_budget_s=3.0)
        sim.schedule(1.0, self._kill, world, ap)  # after assoc, before OFFER
        sim.run(until=30.0)
        assert client.lmm.established_count == 0
        attempts = client.join_log.attempts
        assert attempts and attempts[0].associated and not attempts[0].leased

    def test_vanish_during_verification(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.3)
        client = spider_on(sim, world)
        # Association ~10 ms, lease ~350 ms; kill right after the lease.
        sim.schedule(0.4, self._kill, world, ap)
        sim.run(until=30.0)
        assert client.lmm.established_count == 0
        assert all(not iface.routable for iface in client.nic.interfaces)

    def test_client_recovers_on_replacement_ap(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.3)
        client = spider_on(sim, world, dead_blacklist_s=0.5, join_blacklist_s=0.5)
        sim.run(until=5.0)
        assert client.lmm.established_count == 1
        self._kill(world, ap)
        sim.schedule(10.0, make_lab_ap, world, 1, 2e6, 0.2, 8.0)
        sim.run(until=40.0)
        assert client.lmm.established_count == 1
        assert client.links_established == 2


class TestDegradedMedium:
    def test_tcp_progresses_under_heavy_mgmt_loss(self):
        sim = Simulator(seed=8)
        world = World(sim, loss_rate=0.3)
        make_lab_ap(world, dhcp_delay=0.2)
        client = spider_on(sim, world, ll_retries=10, dhcp_budget_s=6.0)
        sim.run(until=40.0)
        # Joins are harder but retries get through; data-plane retries keep
        # TCP moving once joined.
        assert client.lmm.established_count == 1
        assert client.recorder.total_bytes > 50_000

    def test_bytes_conserved_under_loss(self):
        sim = Simulator(seed=9)
        world = World(sim, loss_rate=0.2)
        make_lab_ap(world, dhcp_delay=0.2)
        client = spider_on(sim, world, ll_retries=8)
        sim.run(until=30.0)
        for flow in client._flows.values():
            assert flow.receiver.bytes_delivered <= flow.sender.snd_nxt
            assert flow.receiver.rcv_nxt == flow.receiver.bytes_delivered


class TestApFlapDuringJoin:
    """A FaultPlan-driven flapping AP must not wedge the join pipeline."""

    def test_flap_mid_join_recovers_cleanly(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.5)
        # First failure lands at t=0.5: mid-DHCP for the join that starts
        # on the first LMM tick.  Three full down/up cycles, then stable.
        install_faults(
            sim,
            world,
            FaultPlan.of(
                ApFlap(start_s=0.5, count=3, down_s=1.0, up_s=1.0, bssid=ap.bssid)
            ),
        )
        client = spider_on(sim, world, num_interfaces=1)
        sim.run(until=30.0)
        assert ap.failures == 3 and not ap.failed
        assert client.lmm.established_count == 1
        assert not client.lmm._pipelines
        assert any(a.failure_reason for a in client.join_log.attempts)

    def test_flap_leaves_interfaces_consistent(self, sim, world):
        ap = make_lab_ap(world, dhcp_delay=0.3)
        install_faults(
            sim,
            world,
            FaultPlan.of(
                ApFlap(start_s=1.0, count=4, down_s=2.0, up_s=0.5, bssid=ap.bssid)
            ),
        )
        client = spider_on(sim, world, num_interfaces=2)
        sim.run(until=40.0)
        bound = [iface for iface in client.nic.interfaces if iface.bound]
        assert len(bound) == client.lmm.established_count == 1


class TestNakInvalidatesLeaseCache:
    def test_cached_lease_dropped_on_nak(self, sim, world):
        ap = make_lab_ap(world)
        client = spider_on(sim, world, num_interfaces=1)
        sim.run(until=3.0)
        lmm = client.lmm
        assert lmm.established_count == 1
        assert ap.bssid in lmm.lease_cache._cache  # lease remembered
        # The server loses its lease database: every re-REQUEST is NAKed,
        # so the remembered binding must be dropped, not retried forever.
        ap.dhcp.force_nak(until_s=30.0)
        ap.fail()
        sim.schedule_at(4.0, ap.recover)
        sim.run(until=12.0)
        assert client.join_log.nak_count() > 0
        assert ap.bssid not in lmm.lease_cache._cache


class TestBlacklistBackoff:
    def test_terms_inflate_geometrically_then_cap(self, sim, world):
        lmm = spider_on(sim, world, num_interfaces=1).lmm
        bssid = "aa:bb:cc"
        assert lmm._next_blacklist_s(bssid, 2.0) == 2.0
        for expected in (4.0, 8.0, 16.0, 30.0, 30.0):
            lmm._blacklist_ap(bssid, 2.0)
            assert lmm._next_blacklist_s(bssid, 2.0) == expected

    def test_cap_never_reduces_a_long_base_term(self, sim, world):
        # A stock client's deliberate 60 s idle must survive the 30 s cap.
        lmm = spider_on(sim, world, num_interfaces=1).lmm
        lmm._blacklist_ap("aa:bb:cc", 60.0)
        assert lmm._next_blacklist_s("aa:bb:cc", 60.0) == 60.0

    def test_streak_decays_after_quiet_period(self, sim, world):
        client = spider_on(sim, world, num_interfaces=1)
        lmm = client.lmm
        lmm._blacklist_ap("aa:bb:cc", 2.0)
        lmm._blacklist_ap("aa:bb:cc", 2.0)
        assert lmm._next_blacklist_s("aa:bb:cc", 2.0) == 8.0
        sim.run(until=lmm.config.blacklist_decay_s + 1.0)
        assert lmm._next_blacklist_s("aa:bb:cc", 2.0) == 2.0

    def test_success_clears_the_streak(self, sim, world):
        ap = make_lab_ap(world)
        client = spider_on(sim, world, num_interfaces=1)
        client.lmm._fail_streak[ap.bssid] = (3, 0.0)
        sim.run(until=3.0)
        assert client.lmm.established_count == 1
        assert ap.bssid not in client.lmm._fail_streak


class TestParoleWhenDisconnected:
    def _strand(self, sim, world, ap, client):
        """Blacklist the only AP with an inflated 16 s term (2 s base)."""
        lmm = client.lmm
        lmm._fail_streak[ap.bssid] = (3, sim.now)
        lmm._blacklist_ap(ap.bssid, 2.0)
        assert lmm._blacklist[ap.bssid] == pytest.approx(sim.now + 16.0)

    def test_parole_rejoins_after_base_term(self, sim, world):
        ap = make_lab_ap(world)
        client = spider_on(sim, world, num_interfaces=1)
        self._strand(sim, world, ap, client)
        sim.run(until=1.9)
        assert client.lmm.established_count == 0  # base term still running
        sim.run(until=6.0)
        assert client.lmm.established_count == 1  # paroled at ~2 s, not 16

    def test_parole_disabled_waits_out_inflated_term(self, sim, world):
        ap = make_lab_ap(world)
        client = spider_on(
            sim, world, num_interfaces=1, parole_when_disconnected=False
        )
        self._strand(sim, world, ap, client)
        sim.run(until=15.9)
        assert client.lmm.established_count == 0
        sim.run(until=20.0)
        assert client.lmm.established_count == 1


class TestPoolExhaustion:
    def test_full_dhcp_pool_fails_cleanly(self, sim, world):
        ap = world.add_ap(
            channel=1, position=(10, 0), dhcp_response_delay=lambda: 0.1
        )
        ap.dhcp.pool_size = 0  # nothing to hand out
        client = spider_on(sim, world, dhcp_budget_s=1.0)
        sim.run(until=10.0)
        assert client.lmm.established_count == 0
        reached = [a for a in client.join_log.attempts if a.associated]
        assert reached and all(not a.leased for a in reached)
