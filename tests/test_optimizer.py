"""Tests for the throughput-maximization framework (Eq. 8-10)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.join_model import JoinModelParams, expected_join_fraction
from repro.model.optimizer import (
    ChannelState,
    dividing_speed,
    optimal_schedule,
    sweep_speeds,
)

FAST_PARAMS = JoinModelParams(beta_min_s=0.5, beta_max_s=5.0)


class TestChannelState:
    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            ChannelState(1, joined_bps=-1.0)


class TestOptimalSchedule:
    def test_single_joined_channel_gets_capped_time(self):
        channels = [ChannelState(1, joined_bps=0.5 * 11e6)]
        result = optimal_schedule(channels, 20.0, params=FAST_PARAMS, grid_steps=10)
        # Eq. 9: f1 <= B1j/Bw = 0.5.
        assert result.fraction(1) == pytest.approx(0.5, abs=0.05)

    def test_fully_provisioned_channel_takes_everything(self):
        channels = [ChannelState(1, joined_bps=11e6)]
        result = optimal_schedule(channels, 20.0, params=FAST_PARAMS, grid_steps=10)
        assert result.fraction(1) >= 0.95

    def test_empty_channel_gets_nothing(self):
        channels = [ChannelState(1, joined_bps=5e6), ChannelState(2)]
        result = optimal_schedule(channels, 20.0, params=FAST_PARAMS, grid_steps=10)
        assert result.fraction(2) == pytest.approx(0.0, abs=0.01)

    def test_eq9_constraint_holds_at_optimum(self):
        channels = [
            ChannelState(1, joined_bps=0.75 * 11e6),
            ChannelState(2, available_bps=0.25 * 11e6),
        ]
        result = optimal_schedule(channels, 40.0, params=FAST_PARAMS, grid_steps=10)
        for state in channels:
            f = result.fraction(state.channel)
            joined_fraction = (
                expected_join_fraction(FAST_PARAMS, f, 40.0) if f > 0 else 0.0
            )
            cap = (state.joined_bps + joined_fraction * state.available_bps) / 11e6
            assert f <= cap + 1e-6

    def test_eq10_switching_budget_holds(self):
        channels = [
            ChannelState(1, joined_bps=6e6),
            ChannelState(2, joined_bps=6e6),
        ]
        result = optimal_schedule(channels, 20.0, params=FAST_PARAMS, grid_steps=10)
        overhead = FAST_PARAMS.switch_delay_s / FAST_PARAMS.period_s
        used = sum(
            f + (overhead if f > 0 else 0.0) for f in result.fractions.values()
        )
        assert used <= 1.0 + 1e-6

    def test_total_equals_sum_of_channels(self):
        channels = [ChannelState(1, joined_bps=4e6), ChannelState(2, joined_bps=4e6)]
        result = optimal_schedule(channels, 20.0, params=FAST_PARAMS, grid_steps=10)
        assert result.total_throughput_bps == pytest.approx(
            sum(result.throughput_bps.values())
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            optimal_schedule([], 20.0)
        with pytest.raises(ValueError):
            optimal_schedule([ChannelState(1)], 0.0)

    @settings(max_examples=10, deadline=None)
    @given(
        joined_share=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        available_share=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_fractions_always_feasible(self, joined_share, available_share):
        channels = [
            ChannelState(1, joined_bps=joined_share * 11e6),
            ChannelState(2, available_bps=available_share * 11e6),
        ]
        result = optimal_schedule(channels, 10.0, params=FAST_PARAMS, grid_steps=6, refine_rounds=1)
        assert sum(result.fractions.values()) <= 1.0 + 1e-6
        assert all(0.0 <= f <= 1.0 for f in result.fractions.values())


class TestSpeedBehaviour:
    def test_slow_speed_visits_join_channel(self):
        channels = [
            ChannelState(1, joined_bps=0.5 * 11e6),
            ChannelState(2, available_bps=0.5 * 11e6),
        ]
        results = dict(
            (speed, result)
            for speed, result in sweep_speeds(
                channels, [2.5, 20.0], params=FAST_PARAMS, grid_steps=10
            )
        )
        assert results[2.5].fraction(2) > results[20.0].fraction(2)

    def test_dividing_speed_exists_for_weak_secondary(self):
        channels = [
            ChannelState(1, joined_bps=0.75 * 11e6),
            ChannelState(2, available_bps=0.25 * 11e6),
        ]
        divide = dividing_speed(
            channels,
            params=JoinModelParams(beta_min_s=0.5, beta_max_s=10.0),
            speed_grid=[2.5, 5.0, 10.0, 20.0, 40.0],
        )
        assert divide < math.inf

    def test_sweep_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            sweep_speeds([ChannelState(1, joined_bps=1e6)], [0.0])
