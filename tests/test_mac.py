"""Unit tests for the association state machine (against a real AP)."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.frames import Frame, FrameKind
from repro.sim.mac import AssociationState, Associator
from repro.sim.mobility import StaticPosition
from repro.sim.nic import WifiNic
from repro.sim.world import World

from conftest import make_lab_ap


@pytest.fixture
def setup(sim, world):
    ap = make_lab_ap(world, channel=1)
    nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
    iface = nic.add_interface()
    return ap, nic, iface


def make_associator(sim, iface, ap, results, **kwargs):
    return Associator(
        sim,
        iface,
        bssid=ap.bssid,
        channel=ap.channel,
        on_success=lambda dt: results.append(("ok", dt)),
        on_failure=lambda reason: results.append(("fail", reason)),
        **kwargs,
    )


class TestHappyPath:
    def test_association_completes(self, sim, setup):
        ap, nic, iface = setup
        results = []
        make_associator(sim, iface, ap, results).start()
        sim.run(until=2.0)
        assert results and results[0][0] == "ok"
        assert ap.is_associated(iface.mac)

    def test_association_time_reported(self, sim, setup):
        ap, nic, iface = setup
        results = []
        make_associator(sim, iface, ap, results).start()
        sim.run(until=2.0)
        elapsed = results[0][1]
        assert 0.0 < elapsed < 0.1  # two handshakes of a few ms each

    def test_state_transitions(self, sim, setup):
        ap, nic, iface = setup
        results = []
        associator = make_associator(sim, iface, ap, results)
        assert associator.state is AssociationState.IDLE
        associator.start()
        assert associator.state is AssociationState.AUTHENTICATING
        sim.run(until=2.0)
        assert associator.state is AssociationState.ASSOCIATED

    def test_iface_bound_to_bssid_and_channel(self, sim, setup):
        ap, nic, iface = setup
        make_associator(sim, iface, ap, []).start()
        assert iface.bssid == ap.bssid
        assert iface.channel == ap.channel

    def test_handlers_detached_after_success(self, sim, setup):
        ap, nic, iface = setup
        make_associator(sim, iface, ap, []).start()
        sim.run(until=2.0)
        assert FrameKind.AUTH_RESPONSE not in iface.handlers
        assert FrameKind.ASSOC_RESPONSE not in iface.handlers

    def test_double_start_rejected(self, sim, setup):
        ap, nic, iface = setup
        associator = make_associator(sim, iface, ap, [])
        associator.start()
        with pytest.raises(RuntimeError):
            associator.start()


class TestFailurePaths:
    def test_unreachable_ap_times_out(self, sim, world):
        far_ap = world.add_ap(channel=1, position=(1e4, 0.0))
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        results = []
        make_associator(sim, iface, far_ap, results, timeout_s=0.1).start()
        sim.run(until=5.0)
        assert results and results[0][0] == "fail"

    def test_retry_budget_respected(self, sim, world):
        far_ap = world.add_ap(channel=1, position=(1e4, 0.0))
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        results = []
        associator = make_associator(
            sim, iface, far_ap, results, timeout_s=0.1, max_retries=2
        )
        associator.start()
        sim.run(until=5.0)
        assert associator.retries_used == 2
        # fail occurs after (retries + 1) timeouts
        assert results[0][0] == "fail"

    def test_loss_recovered_by_retry(self, sim):
        world = World(sim, loss_rate=0.4)
        ap = make_lab_ap(world, channel=1)
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        iface = nic.add_interface()
        results = []
        make_associator(sim, iface, ap, results, timeout_s=0.1, max_retries=10).start()
        sim.run(until=10.0)
        assert results and results[0][0] == "ok"

    def test_abort_suppresses_callbacks(self, sim, setup):
        ap, nic, iface = setup
        results = []
        associator = make_associator(sim, iface, ap, results)
        associator.start()
        associator.abort()
        sim.run(until=2.0)
        assert results == []
        assert associator.state is AssociationState.FAILED

    def test_response_from_wrong_ap_ignored(self, sim, setup):
        ap, nic, iface = setup
        results = []
        associator = make_associator(sim, iface, ap, results)
        associator.start()
        # Inject a forged auth response from another BSSID.
        forged = Frame(
            kind=FrameKind.AUTH_RESPONSE, src="evil", dst=iface.mac, size=80, channel=1
        )
        nic.on_frame(forged, -40.0)
        assert associator.state is AssociationState.AUTHENTICATING

    def test_invalid_timeout_rejected(self, sim, setup):
        ap, nic, iface = setup
        with pytest.raises(ValueError):
            Associator(sim, iface, bssid=ap.bssid, channel=1, timeout_s=0.0)


class TestTimeoutScaling:
    def test_reduced_timeouts_fail_faster(self, sim, world):
        far_ap = world.add_ap(channel=1, position=(1e4, 0.0))
        nic = WifiNic(sim, world.medium, StaticPosition(0, 0), "cli", initial_channel=1)
        results = {}
        for label, timeout in (("fast", 0.1), ("slow", 1.0)):
            iface = nic.add_interface()
            bucket = []
            results[label] = bucket
            started = sim.now
            Associator(
                sim,
                iface,
                bssid=far_ap.bssid,
                channel=1,
                timeout_s=timeout,
                on_failure=lambda r, b=bucket, s=started: b.append(sim.now - s),
            ).start()
        sim.run(until=30.0)
        assert results["fast"][0] < results["slow"][0]
