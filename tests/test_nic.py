"""Unit tests for the client NIC, virtual interfaces, and scan table."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.frames import BROADCAST, Frame, FrameKind
from repro.sim.mobility import StaticPosition
from repro.sim.nic import ScanTable, WifiNic
from repro.sim.radio import Medium


@pytest.fixture
def medium(sim):
    return Medium(sim, loss_rate=0.0)


@pytest.fixture
def nic(sim, medium):
    return WifiNic(sim, medium, StaticPosition(0, 0), nic_id="nic1", initial_channel=1)


def beacon(bssid, channel, ssid="net"):
    return Frame(
        kind=FrameKind.BEACON,
        src=bssid,
        dst=BROADCAST,
        size=80,
        channel=channel,
        bssid=bssid,
        payload={"ssid": ssid},
    )


class TestInterfaces:
    def test_interfaces_get_unique_macs(self, nic):
        macs = {nic.add_interface().mac for _ in range(4)}
        assert len(macs) == 4

    def test_accepts_interface_macs_and_own_id(self, nic):
        iface = nic.add_interface()
        assert nic.accepts(iface.mac)
        assert nic.accepts("nic1")
        assert not nic.accepts("stranger")

    def test_unicast_dispatch_to_interface_handler(self, sim, medium, nic):
        iface = nic.add_interface()
        got = []
        iface.handlers[FrameKind.AUTH_RESPONSE] = lambda f, rssi: got.append(f)
        nic.on_frame(
            Frame(kind=FrameKind.AUTH_RESPONSE, src="ap", dst=iface.mac, size=80, channel=1),
            -50.0,
        )
        assert len(got) == 1

    def test_frame_for_unknown_mac_ignored(self, nic):
        nic.add_interface()
        nic.on_frame(
            Frame(kind=FrameKind.DATA, src="ap", dst="nobody:if9", size=80, channel=1),
            -50.0,
        )  # must not raise

    def test_send_requires_bound_channel(self, nic):
        iface = nic.add_interface()
        with pytest.raises(RuntimeError):
            iface.send(Frame(kind=FrameKind.DATA, src=iface.mac, dst="x", size=10))

    def test_reset_binding_clears_state(self, nic):
        iface = nic.add_interface()
        iface.channel = 1
        iface.bssid = "ap"
        iface.ip = "10.0.0.2"
        iface.link_associated = True
        iface.routable = True
        iface.handlers[FrameKind.DATA] = lambda f, r: None
        iface.reset_binding()
        assert not iface.bound
        assert iface.ip is None
        assert not iface.link_associated
        assert not iface.routable
        assert iface.handlers == {}

    def test_sniffer_sees_all_frames(self, nic):
        seen = []
        nic.sniffers.append(lambda f, rssi: seen.append(f.kind))
        nic.on_frame(beacon("ap1", 1), -40.0)
        assert seen == [FrameKind.BEACON]


class TestQueueing:
    def test_on_channel_frame_transmits_immediately(self, sim, medium, nic):
        iface = nic.add_interface()
        iface.channel = 1
        iface.send_mgmt(FrameKind.AUTH_REQUEST, "ap")
        assert medium.frames_sent == 1
        assert nic.queued_frames(1) == 0

    def test_off_channel_frame_is_queued(self, sim, medium, nic):
        iface = nic.add_interface()
        iface.channel = 6
        iface.send_mgmt(FrameKind.AUTH_REQUEST, "ap")
        assert medium.frames_sent == 0
        assert nic.queued_frames(6) == 1

    def test_queue_flushes_on_tune(self, sim, medium, nic):
        iface = nic.add_interface()
        iface.channel = 6
        iface.send_mgmt(FrameKind.AUTH_REQUEST, "ap")
        nic.tune(6)
        sim.run()
        assert medium.frames_sent == 1
        assert nic.queued_frames(6) == 0

    def test_queue_overflow_drops_oldest(self, sim, medium):
        nic = WifiNic(
            sim, medium, StaticPosition(0, 0), nic_id="q", initial_channel=1, queue_depth=3
        )
        iface = nic.add_interface()
        iface.channel = 6
        for _ in range(5):
            iface.send_mgmt(FrameKind.AUTH_REQUEST, "ap")
        assert nic.queued_frames(6) == 3
        assert nic.frames_dropped_queue_full == 2

    def test_frames_sent_during_reset_are_queued(self, sim, medium, nic):
        iface = nic.add_interface()
        iface.channel = 6
        nic.tune(6)  # reset in progress
        iface.send_mgmt(FrameKind.AUTH_REQUEST, "ap")
        assert medium.frames_sent == 0
        sim.run()
        assert medium.frames_sent == 1


class TestTuning:
    def test_tune_changes_channel_after_reset(self, sim, nic):
        nic.tune(11)
        assert nic.tuned_channel() is None  # resetting
        sim.run()
        assert nic.current_channel == 11
        assert nic.tuned_channel() == 11

    def test_tune_to_same_channel_is_instant(self, sim, nic):
        fired = []
        nic.tune(1, lambda: fired.append(sim.now))
        assert fired == [0.0]
        assert nic.switches == 0

    def test_tune_completion_callback_runs_after_reset(self, sim, nic):
        fired = []
        nic.tune(6, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(nic.reset_s)]

    def test_tune_during_reset_rejected(self, sim, nic):
        nic.tune(6)
        with pytest.raises(RuntimeError):
            nic.tune(11)

    def test_switch_counter_increments(self, sim, nic):
        nic.tune(6)
        sim.run()
        nic.tune(11)
        sim.run()
        assert nic.switches == 2

    def test_probe_request_broadcasts_on_current_channel(self, sim, medium, nic):
        nic.send_probe_request()
        assert medium.frames_sent == 1


class TestScanTable:
    def test_observe_creates_entry(self, sim, nic):
        nic.on_frame(beacon("ap1", 1, ssid="coffee"), -50.0)
        entry = nic.scan_table.get("ap1")
        assert entry is not None
        assert entry.ssid == "coffee"
        assert entry.channel == 1

    def test_rssi_smoothing_uses_ewma(self):
        table = ScanTable()
        table.observe(beacon("ap1", 1), -40.0, now=0.0)
        table.observe(beacon("ap1", 1), -80.0, now=1.0)
        entry = table.get("ap1")
        assert -80.0 < entry.rssi < -40.0
        assert entry.sightings == 2

    def test_fresh_entries_sorted_by_rssi(self):
        table = ScanTable()
        table.observe(beacon("weak", 1), -80.0, now=0.0)
        table.observe(beacon("strong", 1), -40.0, now=0.0)
        entries = table.fresh_entries(now=1.0)
        assert [e.bssid for e in entries] == ["strong", "weak"]

    def test_stale_entries_pruned(self):
        table = ScanTable(max_age_s=5.0)
        table.observe(beacon("old", 1), -50.0, now=0.0)
        table.observe(beacon("new", 1), -50.0, now=8.0)
        entries = table.fresh_entries(now=9.0)
        assert [e.bssid for e in entries] == ["new"]
        assert table.get("old") is None  # pruned as a side effect

    def test_channel_filter(self):
        table = ScanTable()
        table.observe(beacon("a1", 1), -50.0, now=0.0)
        table.observe(beacon("a6", 6), -50.0, now=0.0)
        entries = table.fresh_entries(now=0.5, channels=[6])
        assert [e.bssid for e in entries] == ["a6"]

    def test_len_counts_entries(self):
        table = ScanTable()
        table.observe(beacon("a", 1), -50.0, now=0.0)
        table.observe(beacon("b", 1), -50.0, now=0.0)
        assert len(table) == 2

    def test_probe_responses_feed_the_table(self, nic):
        frame = Frame(
            kind=FrameKind.PROBE_RESPONSE,
            src="ap9",
            dst="nic1",
            size=80,
            channel=1,
            bssid="ap9",
            payload={"ssid": "s"},
        )
        nic.on_frame(frame, -55.0)
        assert nic.scan_table.get("ap9") is not None
