"""Unit tests for the TCP Reno model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.frames import TcpSegment
from repro.sim.tcp import TcpParams, TcpReceiver, TcpSender, TransportSpec


class Pipe:
    """Deterministic sender→receiver pipe with controllable behaviour."""

    def __init__(self, sim, one_way_s=0.05, drop=None):
        self.sim = sim
        self.one_way_s = one_way_s
        self.drop = drop or (lambda segment: False)
        self.sender: TcpSender = None
        self.receiver: TcpReceiver = None
        self.delivered_bytes = 0
        self.segments_seen = []

    def build(self, total_bytes=None, params=None, transport=None, on_complete=None):
        if transport is None:
            transport = TransportSpec.from_params(params or TcpParams())
        self.sender = TcpSender(
            self.sim,
            flow_id="f1",
            src_ip="server",
            dst_ip="client",
            transmit=self._down,
            transport=transport,
            total_bytes=total_bytes,
            on_complete=on_complete,
        )
        self.receiver = TcpReceiver(
            self.sim,
            flow_id="f1",
            src_ip="client",
            dst_ip="server",
            send_ack=self._up,
            on_deliver=self._count,
        )
        return self.sender, self.receiver

    def _count(self, n):
        self.delivered_bytes += n

    def _down(self, segment: TcpSegment) -> None:
        self.segments_seen.append(segment)
        if self.drop(segment):
            return
        self.sim.schedule(self.one_way_s, self.receiver.on_segment, segment)

    def _up(self, ack: TcpSegment) -> None:
        self.sim.schedule(self.one_way_s, self.sender.on_ack, ack)


class TestBasicTransfer:
    def test_finite_transfer_completes(self, sim):
        pipe = Pipe(sim)
        done = []
        sender, receiver = pipe.build(total_bytes=50_000, on_complete=lambda: done.append(sim.now))
        sender.start()
        sim.run(until=60.0)
        assert done
        assert receiver.bytes_delivered == 50_000
        assert sender.closed

    def test_delivery_callback_counts_all_bytes(self, sim):
        pipe = Pipe(sim)
        sender, _ = pipe.build(total_bytes=30_000)
        sender.start()
        sim.run(until=60.0)
        assert pipe.delivered_bytes == 30_000

    def test_infinite_flow_keeps_sending(self, sim):
        pipe = Pipe(sim)
        sender, receiver = pipe.build(total_bytes=None)
        sender.start()
        sim.run(until=5.0)
        assert receiver.bytes_delivered > 100_000

    def test_delivered_never_exceeds_sent(self, sim):
        pipe = Pipe(sim)
        sender, receiver = pipe.build()
        sender.start()
        sim.run(until=3.0)
        assert receiver.bytes_delivered <= sender.snd_nxt

    def test_close_stops_transmission(self, sim):
        pipe = Pipe(sim)
        sender, _ = pipe.build()
        sender.start()
        sim.run(until=1.0)
        sent_before = sender.segments_sent
        sender.close()
        sim.run(until=3.0)
        assert sender.segments_sent == sent_before


class TestSlowStartAndCongestionAvoidance:
    def test_cwnd_grows_exponentially_in_slow_start(self, sim):
        pipe = Pipe(sim, one_way_s=0.1)
        params = TcpParams(initial_cwnd_segments=1.0, initial_ssthresh_segments=1000.0)
        sender, _ = pipe.build(params=params)
        sender.start()
        sim.run(until=0.25)   # ~1 RTT
        cwnd_1rtt = sender.cwnd
        sim.run(until=0.45)   # ~2 RTT
        cwnd_2rtt = sender.cwnd
        assert cwnd_2rtt >= 1.8 * cwnd_1rtt

    def test_cwnd_capped_by_receiver_window(self, sim):
        pipe = Pipe(sim, one_way_s=0.01)
        params = TcpParams(max_cwnd_segments=10.0)
        sender, _ = pipe.build(params=params)
        sender.start()
        sim.run(until=5.0)
        assert sender.cwnd <= 10.0
        assert sender.flight_bytes <= 10 * params.mss

    def test_linear_growth_after_ssthresh(self, sim):
        pipe = Pipe(sim, one_way_s=0.05)
        params = TcpParams(initial_ssthresh_segments=4.0, max_cwnd_segments=1000.0)
        sender, _ = pipe.build(params=params)
        sender.start()
        sim.run(until=1.0)
        cwnd_a = sender.cwnd
        sim.run(until=2.0)
        cwnd_b = sender.cwnd
        # Congestion avoidance adds about 1 segment per RTT (10 RTTs here).
        assert 4.0 < cwnd_a < cwnd_b
        assert cwnd_b - cwnd_a < 15.0


class TestLossRecovery:
    def test_single_loss_recovered_by_fast_retransmit(self, sim):
        lost = {"done": False}

        def drop(segment):
            if not lost["done"] and segment.seq == 14000 and not segment.retransmit:
                lost["done"] = True
                return True
            return False

        pipe = Pipe(sim, drop=drop)
        sender, receiver = pipe.build(total_bytes=100_000)
        sender.start()
        sim.run(until=30.0)
        assert receiver.bytes_delivered == 100_000
        assert sender.fast_retransmits >= 1

    def test_burst_loss_recovered_by_rto_and_go_back_n(self, sim):
        window = {"active": False}

        def drop(segment):
            # Black out everything in [0.5, 1.0) once.
            if 0.5 <= sim.now < 1.0 and not segment.retransmit:
                window["active"] = True
                return True
            return False

        pipe = Pipe(sim, drop=drop)
        sender, receiver = pipe.build(total_bytes=200_000)
        sender.start()
        sim.run(until=60.0)
        assert window["active"]
        assert receiver.bytes_delivered == 200_000
        assert sender.timeouts >= 1

    def test_rto_collapses_cwnd(self, sim):
        pipe = Pipe(sim, drop=lambda s: 0.4 <= sim.now < 1.2)
        sender, _ = pipe.build()
        sender.start()
        sim.run(until=1.3)
        assert sender.timeouts >= 1
        assert sender.cwnd <= 2.0

    def test_rto_backs_off_exponentially(self, sim):
        pipe = Pipe(sim, drop=lambda s: sim.now >= 0.3)  # permanent blackout

        sender, _ = pipe.build()
        sender.start()
        sim.run(until=20.0)
        assert sender.timeouts >= 3
        assert sender.rto > 1.0

    def test_late_cumulative_ack_above_rewound_snd_nxt_accepted(self, sim):
        """Regression: the go-back-N deadlock."""
        sender = TcpSender(
            sim, "f", "s", "c", transmit=lambda seg: None, transport=TransportSpec()
        )
        sender.start()
        sent_high = sender.snd_nxt
        assert sent_high > 0
        # Simulate an RTO rewind, then a late full ACK.
        sender._on_rto()
        assert sender.snd_nxt < sent_high
        sender.on_ack(TcpSegment("f", "c", "s", ack=sent_high, is_ack=True))
        assert sender.snd_una == sent_high

    def test_ack_beyond_max_sent_ignored(self, sim):
        sender = TcpSender(sim, "f", "s", "c", transmit=lambda seg: None)
        sender.start()
        before = sender.snd_una
        sender.on_ack(TcpSegment("f", "c", "s", ack=10**9, is_ack=True))
        assert sender.snd_una == before

    def test_karn_no_rtt_sample_from_retransmits(self, sim):
        pipe = Pipe(sim, drop=lambda s: 0.2 <= sim.now < 2.0)
        sender, _ = pipe.build()
        sender.start()
        sim.run(until=1.9)
        assert sender._rtt_probe_ack is None


class TestReceiver:
    def make_receiver(self, sim, acks):
        return TcpReceiver(
            sim, "f", "c", "s", send_ack=acks.append, on_deliver=lambda n: None
        )

    def seg(self, seq, length):
        return TcpSegment("f", "s", "c", seq=seq, payload_bytes=length)

    def test_in_order_delivery(self, sim):
        acks = []
        receiver = self.make_receiver(sim, acks)
        receiver.on_segment(self.seg(0, 100))
        receiver.on_segment(self.seg(100, 100))
        assert receiver.rcv_nxt == 200
        assert acks[-1].ack == 200

    def test_gap_generates_duplicate_acks(self, sim):
        acks = []
        receiver = self.make_receiver(sim, acks)
        receiver.on_segment(self.seg(0, 100))
        receiver.on_segment(self.seg(200, 100))
        receiver.on_segment(self.seg(300, 100))
        assert [a.ack for a in acks] == [100, 100, 100]

    def test_gap_fill_drains_out_of_order_queue(self, sim):
        acks = []
        receiver = self.make_receiver(sim, acks)
        receiver.on_segment(self.seg(100, 100))
        receiver.on_segment(self.seg(200, 100))
        receiver.on_segment(self.seg(0, 100))
        assert receiver.rcv_nxt == 300
        assert acks[-1].ack == 300

    def test_duplicate_segment_counted_and_reacked(self, sim):
        acks = []
        receiver = self.make_receiver(sim, acks)
        receiver.on_segment(self.seg(0, 100))
        receiver.on_segment(self.seg(0, 100))
        assert receiver.duplicate_segments == 1
        assert acks[-1].ack == 100

    def test_overlapping_segment_advances_partially(self, sim):
        acks = []
        receiver = self.make_receiver(sim, acks)
        receiver.on_segment(self.seg(0, 100))
        receiver.on_segment(self.seg(50, 100))  # overlaps first half
        assert receiver.rcv_nxt == 150

    def test_empty_segment_ignored(self, sim):
        acks = []
        receiver = self.make_receiver(sim, acks)
        receiver.on_segment(self.seg(0, 0))
        assert acks == []

    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(list(range(10))))
    def test_any_arrival_order_reassembles_fully(self, order):
        sim = Simulator(seed=0)
        delivered = []
        receiver = TcpReceiver(
            sim, "f", "c", "s", send_ack=lambda a: None, on_deliver=delivered.append
        )
        for index in order:
            receiver.on_segment(
                TcpSegment("f", "s", "c", seq=index * 100, payload_bytes=100)
            )
        assert receiver.rcv_nxt == 1000
        assert sum(delivered) == 1000


class TestDeprecationShim:
    def test_params_kwarg_warns_and_maps_to_transport(self, sim):
        params = TcpParams(mss=1000)
        with pytest.warns(DeprecationWarning, match="TcpSender.*deprecated"):
            sender = TcpSender(
                sim, "f", "s", "c", transmit=lambda seg: None, params=params
            )
        assert sender.transport == TransportSpec.from_params(params)
        assert sender.p.mss == 1000
        assert sender.cc.name == "reno"

    def test_transport_kwarg_does_not_warn(self, sim):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sender = TcpSender(
                sim, "f", "s", "c", transmit=lambda seg: None,
                transport=TransportSpec(cc="cubic"),
            )
        assert sender.cc.name == "cubic"


class TestLazyRtoTimer:
    """PR 3 made the RTO timer lazy: ACKs overwrite a logical deadline and
    the standing engine event re-arms itself instead of being cancelled and
    rescheduled per ACK.  These tests pin the observable contract."""

    def test_acks_leave_standing_event_at_or_before_deadline(self, sim):
        pipe = Pipe(sim, one_way_s=0.05)
        sender, _ = pipe.build(total_bytes=200_000)
        sender.start()
        sim.run(until=0.3)
        handle = sender._timer
        assert handle is not None and handle.pending
        assert handle.time <= sender._rto_deadline

    def test_stale_fire_is_a_noop_on_healthy_flow(self, sim):
        pipe = Pipe(sim, one_way_s=0.05)
        sender, _ = pipe.build(total_bytes=None)
        sender.start()
        sim.run(until=0.01)
        first_event_time = sender._timer.time
        sim.run(until=first_event_time + 1.0)
        # The original engine event fired long ago, but ACKs kept pushing
        # the logical deadline out, so no spurious RTO happened.
        assert sender.timeouts == 0

    def test_rto_still_fires_when_acks_stop(self, sim):
        blackhole = {"on": False}
        pipe = Pipe(sim, drop=lambda segment: blackhole["on"])
        sender, _ = pipe.build(total_bytes=None)
        sender.start()
        sim.run(until=1.0)
        assert sender.timeouts == 0
        blackhole["on"] = True
        sim.run(until=1.0 + 4.0 * sender.rto)
        assert sender.timeouts >= 1

    def test_shrunken_deadline_moves_standing_event(self, sim):
        pipe = Pipe(sim)
        sender, _ = pipe.build(total_bytes=None)
        sender.start()
        sim.run(until=0.05)
        standing = sender._timer.time
        sender._arm(sim.now + 10.0)
        # Growing the deadline leaves the early standing event in place
        # (it will fire as a no-op and chase the new deadline).
        assert sender._timer.time == standing
        sender._arm(sim.now + 0.5)
        # Shrinking it below the standing event must move the event, or
        # the RTO would fire late.
        assert sender._timer.time == pytest.approx(sim.now + 0.5)
        assert sender._timer.time < standing

    def test_close_disarms_logically_and_physically(self, sim):
        import math as _math

        pipe = Pipe(sim)
        sender, _ = pipe.build(total_bytes=None)
        sender.start()
        sim.run(until=0.2)
        sender.close()
        assert sender._rto_deadline == _math.inf
        assert sender._timer is None or not sender._timer.pending
        timeouts_before = sender.timeouts
        sim.run(until=5.0)
        assert sender.timeouts == timeouts_before
