"""Unit tests for the CI bench-regression gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_perf_regression.py"
_spec = importlib.util.spec_from_file_location("check_perf_regression", _SCRIPT)
check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check)


def payload(**rates):
    return {
        "schema": 1,
        "results": {
            name: {"events_per_sec": value, "wall_s": 1.0}
            for name, value in rates.items()
        },
    }


def write(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


class TestIterRates:
    def test_extracts_all_rate_fields(self):
        data = {
            "results": {
                "a": {"events_per_sec": 10.0, "wall_s": 2.0},
                "b": {"serial_events_per_sec": 5.0},
                "c": {"speedup": 2.0},
            }
        }
        # Speedup ratios are gateable (so --strict can pin them) but the
        # default compare() sweep skips them — see the strict-only tests.
        assert dict(check.iter_rates(data)) == {
            "a.events_per_sec": 10.0,
            "b.serial_events_per_sec": 5.0,
            "c.speedup": 2.0,
        }

    def test_speedup_skipped_by_default_sweep(self):
        data = {"results": {"c": {"speedup": 2.0}}}
        passed, regressed = check.compare(
            data, {"results": {"c": {"speedup": 1.0}}}, threshold=0.10
        )
        assert not passed and not regressed

    def test_speedup_gated_when_pinned_strict(self):
        base = {"results": {"c": {"speedup": 2.0}}}
        cur = {"results": {"c": {"speedup": 1.0}}}
        passed, regressed = check.compare(
            base, cur, threshold=0.10, strict={"c.speedup": 0.2}
        )
        assert "c.speedup" in regressed and not passed

    def test_ignores_non_dict_results(self):
        assert dict(check.iter_rates({"results": {"a": 3}})) == {}


class TestCompare:
    def test_within_threshold_passes(self):
        passed, regressed = check.compare(
            payload(x=100.0), payload(x=95.0), threshold=0.10
        )
        assert "x.events_per_sec" in passed and not regressed

    def test_drop_beyond_threshold_regresses(self):
        passed, regressed = check.compare(
            payload(x=100.0), payload(x=85.0), threshold=0.10
        )
        assert "x.events_per_sec" in regressed and not passed

    def test_improvement_passes(self):
        passed, regressed = check.compare(
            payload(x=100.0), payload(x=180.0), threshold=0.10
        )
        assert passed["x.events_per_sec"][2] == pytest.approx(1.8)

    def test_unshared_metrics_not_compared(self):
        passed, regressed = check.compare(
            payload(x=100.0), payload(y=1.0), threshold=0.10
        )
        assert not passed and not regressed


class TestMain:
    def test_exit_zero_when_no_regression(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload(x=100.0, y=50.0))
        cur = write(tmp_path, "cur.json", payload(x=120.0, y=49.0))
        assert check.main([base, cur]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload(x=100.0))
        cur = write(tmp_path, "cur.json", payload(x=80.0))
        assert check.main([base, cur]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_exit_two_when_nothing_shared(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload(x=100.0))
        cur = write(tmp_path, "cur.json", payload(y=80.0))
        assert check.main([base, cur]) == 2

    def test_threshold_flag(self, tmp_path):
        base = write(tmp_path, "base.json", payload(x=100.0))
        cur = write(tmp_path, "cur.json", payload(x=80.0))
        assert check.main([base, cur, "--threshold", "0.25"]) == 0

    def test_strict_gate_tightens_one_metric(self, tmp_path):
        base = write(tmp_path, "base.json", payload(x=100.0, y=100.0))
        cur = write(tmp_path, "cur.json", payload(x=95.0, y=95.0))
        assert check.main([base, cur]) == 0
        assert (
            check.main([base, cur, "--strict", "y.events_per_sec:0.02"]) == 1
        )

    def test_unknown_strict_gate_is_a_config_error(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload(x=100.0))
        cur = write(tmp_path, "cur.json", payload(x=100.0))
        rc = check.main([base, cur, "--strict", "bogus.events_per_sec:0.02"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown gate(s) bogus.events_per_sec" in err
        assert "x.events_per_sec" in err  # tells you what exists


class TestList:
    def test_list_prints_gates_and_baselines(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload(x=100.0, y=50.0))
        assert check.main(["--list", base]) == 0
        out = capsys.readouterr().out
        assert "x.events_per_sec" in out and "y.events_per_sec" in out
        assert "100.0" in out and "50.0" in out

    def test_list_needs_no_current_file(self, tmp_path):
        base = write(tmp_path, "base.json", payload(x=100.0))
        assert check.main(["--list", base]) == 0

    def test_list_exit_two_when_no_gates(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", {"results": {}})
        assert check.main(["--list", base]) == 2
        assert "no events/sec gates" in capsys.readouterr().err

    def test_missing_current_without_list_errors(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", payload(x=100.0))
        with pytest.raises(SystemExit) as excinfo:
            check.main([base])
        assert excinfo.value.code == 2
