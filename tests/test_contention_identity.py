"""Byte-identity: contention OFF is indistinguishable from contention ABSENT.

The contention subsystem's contract: with the model off — whether because
the spec is absent (``contention=None``, the historical default) or
explicitly disabled (``ContentionSpec(enabled=False)``) — every trial
result must match byte for byte, metrics *and* deterministic telemetry.
The disabled spec threads through the exact same construction path as an
enabled one (World → Medium), so this property proves the wiring itself
is inert: no stray RNG stream, no extra instrument, no reordered event.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.common import TownTrialSpec, run_town_trial_spec
from repro.experiments.town_runs import standard_factories
from repro.sim.contention import ContentionSpec, resolve_contention
from repro.sim.engine import Simulator
from repro.sim.radio import Medium

TABLE2_LABELS = tuple(standard_factories())


def run_cell(label: str, seed: int, contention):
    spec = TownTrialSpec(
        factory=standard_factories()[label],
        label=label,
        seed=seed,
        duration_s=40.0,
        telemetry=True,
        contention=contention,
    )
    return run_town_trial_spec(spec)


def strip_telemetry(metrics):
    from dataclasses import replace

    return replace(metrics, telemetry=None)


class TestTable2GridIdentity:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        label=st.sampled_from(TABLE2_LABELS),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_disabled_spec_is_byte_identical_to_none(self, label, seed):
        absent = run_cell(label, seed, contention=None)
        disabled = run_cell(
            label, seed, contention=ContentionSpec(enabled=False)
        )
        assert pickle.dumps(strip_telemetry(absent)) == pickle.dumps(
            strip_telemetry(disabled)
        )
        # Telemetry too: the contention instruments register only when the
        # model is on, so the deterministic exports match byte for byte.
        assert absent.telemetry is not None
        assert pickle.dumps(absent.telemetry.deterministic()) == pickle.dumps(
            disabled.telemetry.deterministic()
        )

    def test_cli_off_token_builds_the_disabled_spec(self):
        """``--contention off`` resolves to exactly the spec the grid uses."""
        assert resolve_contention("off") == ContentionSpec(enabled=False)
        assert resolve_contention(None) is None


class TestMediumStateIdentity:
    """At the Medium layer: the off paths share all observable state."""

    def states(self, contention):
        sim = Simulator(seed=11)
        medium = Medium(sim, loss_rate=0.0, contention=contention)
        return sim, medium

    @pytest.mark.parametrize(
        "off_spec", [None, ContentionSpec(enabled=False)]
    )
    def test_no_contention_stream_or_state(self, off_spec):
        sim, medium = self.states(off_spec)
        assert medium.contention is None
        # The dedicated RNG stream must never be drawn from — its mere
        # creation would shift no other stream (streams are independent),
        # but its absence is the cheapest proof nothing consulted it.
        assert "medium.contention" not in sim._streams
