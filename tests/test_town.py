"""Tests for the synthetic town and lab workload generators."""

from __future__ import annotations

import math

import pytest

from repro.sim.engine import Simulator
from repro.workloads.town import PRESETS, TownConfig, build_town, lab_topology


class TestTownConfig:
    def test_presets_valid(self):
        for name, config in PRESETS.items():
            assert config.expected_ap_count > 0, name

    def test_channel_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            TownConfig(channel_mix={1: 0.5, 6: 0.2})

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            TownConfig(loop_length_m=0.0)


class TestBuildTown:
    def test_deterministic_for_seed(self):
        town_a = build_town(Simulator(seed=11), preset="amherst")
        town_b = build_town(Simulator(seed=11), preset="amherst")
        assert [ap.channel for ap in town_a.aps] == [ap.channel for ap in town_b.aps]
        assert town_a.ap_arc_positions == town_b.ap_arc_positions

    def test_different_seeds_differ(self):
        town_a = build_town(Simulator(seed=1), preset="amherst")
        town_b = build_town(Simulator(seed=2), preset="amherst")
        assert town_a.ap_arc_positions != town_b.ap_arc_positions

    def test_ap_count_near_expected(self):
        counts = [
            len(build_town(Simulator(seed=s), preset="amherst").aps) for s in range(6)
        ]
        expected = PRESETS["amherst"].expected_ap_count
        mean = sum(counts) / len(counts)
        assert 0.5 * expected < mean < 1.6 * expected

    def test_channel_mix_roughly_honoured(self):
        channels = []
        for seed in range(8):
            town = build_town(Simulator(seed=seed), preset="amherst")
            channels.extend(ap.channel for ap in town.aps)
        on_core = sum(1 for c in channels if c in (1, 6, 11)) / len(channels)
        assert on_core > 0.85  # 95% nominally

    def test_denser_preset_has_more_aps(self):
        sparse = [len(build_town(Simulator(seed=s), preset="sparse").aps) for s in range(4)]
        dense = [len(build_town(Simulator(seed=s), preset="dense").aps) for s in range(4)]
        assert sum(dense) > sum(sparse)

    def test_aps_offset_from_route(self):
        config = PRESETS["amherst"]
        town = build_town(Simulator(seed=3), config=None, preset="amherst")
        radius = config.loop_length_m / (2 * math.pi)
        for ap in town.aps:
            x, y = ap.position()
            distance = math.hypot(x, y)
            assert distance >= radius + config.offset_range_m[0] - 1.0
            assert distance <= radius + config.offset_range_m[1] + 1.0

    def test_uniform_placement_mode(self):
        from dataclasses import replace

        config = replace(PRESETS["amherst"], clustered=False)
        town = build_town(Simulator(seed=5), config=config)
        assert len(town.aps) > 0

    def test_config_and_preset_mutually_exclusive(self):
        with pytest.raises(ValueError):
            build_town(Simulator(seed=0), config=PRESETS["amherst"], preset="amherst")

    def test_vehicle_mobility_on_route(self):
        town = build_town(Simulator(seed=0), preset="amherst")
        mobility = town.make_vehicle_mobility(10.0)
        x, y = mobility.position_at(0.0)
        radius = town.config.loop_length_m / (2 * math.pi)
        assert math.hypot(x, y) == pytest.approx(radius)

    def test_channel_counts_helper(self):
        town = build_town(Simulator(seed=0), preset="amherst")
        counts = town.channel_counts()
        assert sum(counts.values()) == len(town.aps)


class TestLabTopology:
    def test_builds_requested_aps(self, sim):
        world, aps, client_pos = lab_topology(sim, [(1, 2e6), (11, 3e6)])
        assert [ap.channel for ap in aps] == [1, 11]
        assert aps[0].backhaul_rate_bps == 2e6
        assert client_pos.position_at(0.0) == (0.0, 0.0)

    def test_aps_within_client_range(self, sim):
        world, aps, _ = lab_topology(sim, [(1, 1e6)] * 3)
        for ap in aps:
            x, y = ap.position()
            assert math.hypot(x, y) < world.medium.range_m

    def test_deterministic_dhcp_delay(self, sim):
        world, aps, _ = lab_topology(sim, [(1, 1e6)], dhcp_delay_s=0.7)
        assert aps[0].dhcp.response_delay() == 0.7

    def test_empty_spec_rejected(self, sim):
        with pytest.raises(ValueError):
            lab_topology(sim, [])
