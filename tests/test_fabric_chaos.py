"""Chaos-path property tests: any seeded plan converges to the serial bytes.

This is the fabric's load-bearing guarantee (ISSUE acceptance): a sweep
interrupted by killed workers, stalls past lease expiry, dropped
completions, and duplicated deliveries produces :class:`TrialResult`
envelopes *byte-identical* to a clean serial run.  Hypothesis draws
arbitrary plans; the forced-fault preset pins the acceptance scenario
(>= 1 kill, >= 1 stall, >= 1 duplicate) explicitly.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import FabricChaosPlan, InProcessFabric, run_chaos_fabric
from repro.runner.pool import TrialJob, run_jobs


def _spin(seed):
    acc = seed & 0xFFFFFFFF
    for _ in range(200):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
    return acc


def _poison(seed):
    raise ValueError(f"poison {seed}")


def _mixed_jobs(count):
    """Deterministic jobs, every third one a genuine (always-fail) failure.

    Only *deterministic* jobs are admissible here: a flaky job would break
    the serial/fabric identity because uncharged chaos re-executions would
    consume its flip-flops differently.
    """
    jobs = []
    for i in range(count):
        fn = _poison if i % 3 == 2 else _spin
        jobs.append(TrialJob(fn, (i,), tag=("chaos", i)))
    return jobs


def _serial(count, retries):
    return run_jobs(_mixed_jobs(count), workers=1, retries=retries)


_plans = st.builds(
    FabricChaosPlan,
    seed=st.integers(min_value=0, max_value=2**16),
    kill_leases=st.lists(st.integers(0, 14), max_size=3).map(tuple),
    stall_leases=st.lists(st.integers(0, 14), max_size=3).map(tuple),
    drop_completions=st.lists(st.integers(0, 14), max_size=3).map(tuple),
    duplicate_completions=st.lists(st.integers(0, 14), max_size=3).map(tuple),
    kill_rate=st.floats(0.0, 0.3, allow_nan=False),
    stall_rate=st.floats(0.0, 0.3, allow_nan=False),
    drop_rate=st.floats(0.0, 0.3, allow_nan=False),
    duplicate_rate=st.floats(0.0, 0.3, allow_nan=False),
    max_random_events=st.integers(0, 6),
)


class TestChaosIdentity:
    @settings(max_examples=30, deadline=None)
    @given(plan=_plans, workers=st.integers(1, 4))
    def test_any_plan_matches_serial(self, plan, workers):
        chaos = run_chaos_fabric(
            _mixed_jobs(6), plan=plan, workers=workers, retries=1
        )
        assert chaos == _serial(6, retries=1)

    def test_preset_is_byte_identical_and_exercises_every_fault(self):
        # Seeds where no random fault lands on the same lease as a forced
        # one (a random kill can eat a forced duplicate's completion).
        for seed in (0, 3, 7, 11):
            telemetry_fabric = InProcessFabric(
                workers=3, plan=FabricChaosPlan.preset(seed)
            )
            chaos = telemetry_fabric.run(_mixed_jobs(10), retries=1)
            serial = _serial(10, retries=1)
            assert pickle.dumps(chaos) == pickle.dumps(serial)
            stats = dict(telemetry_fabric.snapshot().counters)
            # The preset forces >= 1 kill and >= 1 stall (both surface as
            # expired leases) and >= 1 duplicated completion.
            assert stats["fabric.leases_expired"] >= 2
            assert stats["fabric.reassignments"] >= 1
            assert stats["fabric.duplicate_completions"] >= 1

    def test_total_kill_storm_still_drains(self):
        # Every random draw kills until the budget runs out; respawned
        # workers (the supervisor restart path) must drain the sweep.
        plan = FabricChaosPlan(seed=5, kill_rate=1.0, max_random_events=5)
        chaos = run_chaos_fabric(_mixed_jobs(4), plan=plan, workers=2, retries=1)
        assert chaos == _serial(4, retries=1)

    def test_same_plan_same_run(self):
        plan = FabricChaosPlan.preset(11)
        first = run_chaos_fabric(_mixed_jobs(6), plan=plan, workers=2, retries=1)
        second = run_chaos_fabric(_mixed_jobs(6), plan=plan, workers=2, retries=1)
        assert pickle.dumps(first) == pickle.dumps(second)

    def test_empty_batch(self):
        assert run_chaos_fabric([], plan=FabricChaosPlan.preset(3)) == []

    def test_noop_plan_draws_no_randomness(self):
        assert FabricChaosPlan().is_noop()
        assert not FabricChaosPlan.preset(0).is_noop()


class TestChaosWithCache:
    def test_interrupted_then_resumed_sweep_matches_clean_run(self, tmp_path):
        # A chaos-interrupted sweep populates the cache; a second sweep over
        # the same jobs (a coordinator restart) resumes from cache hits and
        # still yields the clean-run bytes.
        from repro.cache import TrialCache

        cache = TrialCache(tmp_path, fingerprint="pin")
        jobs = [TrialJob(_spin, (i,), tag=("c", i)) for i in range(5)]
        plan = FabricChaosPlan.preset(7)
        first = run_chaos_fabric(jobs, plan=plan, workers=2, cache=cache)
        resumed = run_chaos_fabric(jobs, plan=plan, workers=2, cache=cache)
        clean = run_jobs([TrialJob(_spin, (i,), tag=("c", i)) for i in range(5)])
        assert first == clean
        assert resumed == clean
