"""Maintenance CLI for the trial-result cache.

Usage::

    python -m repro.cache stats  [--cache-dir DIR] [--json]
    python -m repro.cache prune  [--cache-dir DIR] [--max-age-days N]
                                 [--max-bytes N] [--all]
    python -m repro.cache verify [--cache-dir DIR] [--fix]

``stats`` reports entry count and on-disk size; ``prune`` evicts by age
and/or an LRU size budget (cache hits refresh an entry's mtime); ``verify``
re-reads every entry and checks it unpickles and matches its content
address, exiting 1 when problems remain (``--fix`` deletes bad entries,
which is always safe — a deleted entry is just a future miss).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import (
    cache_lock,
    cache_stats,
    prune_cache,
    resolve_cache_dir,
    resolve_cache_max_bytes,
    verify_cache,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect and maintain the trial-result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="entry count and on-disk size")
    stats.add_argument("--json", action="store_true", help="machine-readable output")

    prune = sub.add_parser("prune", help="evict entries by age / size budget")
    prune.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="N",
        help="drop entries older than N days",
    )
    prune.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="then evict least-recently-used entries until the store fits "
        "N bytes (default: $REPRO_CACHE_MAX_BYTES)",
    )
    prune.add_argument(
        "--all", action="store_true", help="drop every entry (full reset)"
    )

    verify = sub.add_parser("verify", help="check every entry against its address")
    verify.add_argument(
        "--fix", action="store_true", help="delete corrupt/misfiled entries"
    )

    for command in (stats, prune, verify):
        command.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
        )
    return parser


def _format_age(mtime, now: float) -> str:
    if mtime is None:
        return "-"
    return f"{(now - mtime) / 3600.0:.1f}h ago"


def main(argv=None) -> int:
    """Command-line entry point."""
    args = _build_parser().parse_args(argv)
    root = resolve_cache_dir(args.cache_dir)

    if args.command == "stats":
        stats = cache_stats(root)
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        now = time.time()
        print(f"cache dir : {stats['dir']}")
        print(f"entries   : {stats['entries']}")
        print(f"bytes     : {stats['bytes']}")
        print(f"oldest    : {_format_age(stats['oldest_mtime'], now)}")
        print(f"newest    : {_format_age(stats['newest_mtime'], now)}")
        return 0

    if args.command == "prune":
        max_bytes = resolve_cache_max_bytes(args.max_bytes)
        if not args.all and args.max_age_days is None and max_bytes is None:
            print(
                "prune needs --max-age-days, --max-bytes, --all, or "
                "$REPRO_CACHE_MAX_BYTES",
                file=sys.stderr,
            )
            return 2
        # The maintenance lock serializes concurrent pruners (two
        # coordinators sharing a cache volume) without blocking readers.
        with cache_lock(root):
            outcome = prune_cache(
                root,
                max_age_s=(
                    None
                    if args.max_age_days is None
                    else args.max_age_days * 86400.0
                ),
                max_bytes=max_bytes,
                drop_all=args.all,
            )
        print(
            f"pruned {outcome['removed']} entr(ies), freed "
            f"{outcome['freed_bytes']} bytes, kept {outcome['kept']}"
        )
        return 0

    # verify
    with cache_lock(root):
        problems = verify_cache(root, fix=args.fix)
    if not problems:
        print(f"cache {root}: all entries verify")
        return 0
    for problem in problems:
        print(problem, file=sys.stderr)
    action = "deleted" if args.fix else "found"
    print(f"{len(problems)} bad entr(ies) {action}", file=sys.stderr)
    return 0 if args.fix else 1


if __name__ == "__main__":
    raise SystemExit(main())
