"""Content-addressed, cross-run memoization of trial results.

Every paper artifact is a sweep of independent ``(spec, seed)`` trials, and
PR 3 made each trial a pure deterministic function of its frozen spec.  That
purity is worth money: the same trial re-simulated by Figure 11-13, the
Table 2 suite, a bench run, and a CI job produces byte-identical results
every time, so computing it once and replaying the stored envelope is
indistinguishable from re-running it.  :class:`TrialCache` makes that
replay automatic for every experiment routed through
:mod:`repro.runner.pool`.

Keying
------
A cache key is ``sha256(canonical job token || code fingerprint)``:

* :func:`canonical_token` renders a :class:`~repro.runner.TrialJob` — its
  function, the frozen spec dataclasses in its arguments, seeds, durations,
  fault plans — into a canonical string.  Dataclasses serialize as
  ``module.QualName`` plus *sorted* field/value pairs, mappings sort by key,
  and sets sort by element token, so the token is independent of dict/set
  iteration order (and therefore of ``PYTHONHASHSEED``).  Objects with no
  canonical form fall back to their pickle bytes — pickling is exactly what
  ships the job to a worker, so two jobs with equal pickles are
  interchangeable by construction.  Anything unpicklable makes the job
  *uncacheable* (key ``None``), never wrong.
* :func:`code_fingerprint` hashes the source bytes of every module under
  :mod:`repro.sim`, :mod:`repro.core`, and :mod:`repro.workloads` (the
  packages whose behavior determines a trial's outcome).  Any edit to any
  of those files changes every key, so stale entries are invalidated
  automatically — they simply stop matching and age out via ``prune``.

Storage
-------
Entries live under ``<root>/<key[:2]>/<key>.pkl`` as a pickled
``(schema, key, value)`` tuple.  Writes go to a temporary file in the same
directory followed by :func:`os.replace`, so concurrent writers (parallel
CI jobs sharing a cache volume) can never expose a torn entry; readers
treat any unreadable/corrupt/mismatched entry as a miss and delete it.
Only *successful* trial values are stored — failures always re-run.

Instrumentation
---------------
Each cache owns a :class:`repro.obs.Telemetry` registry with
``cache.hits`` / ``cache.misses`` / ``cache.stores`` /
``cache.bytes_read`` / ``cache.bytes_written`` / ``cache.errors``
counters; :meth:`TrialCache.snapshot` freezes them for export and
:meth:`TrialCache.describe` renders the one-line summary the CLI prints.

Enablement (first match wins): an explicit ``cache=`` argument to
:func:`repro.runner.run_jobs` / :func:`~repro.runner.run_sharded`, the
cache activated by the enclosing :func:`activate` context (how
``ExperimentSpec.cache`` and the ``--cache`` CLI flag plumb through), or
the ``REPRO_CACHE`` environment variable.  The cache directory defaults to
``REPRO_CACHE_DIR`` or ``.repro_cache``.  The cache is **off** unless one
of those turns it on — a cold run's behavior is the contract, the cache
only skips work whose outcome is already known byte-for-byte.

``python -m repro.cache stats|prune|verify`` operates on the store from
the command line.  ``REPRO_CACHE_MAX_BYTES`` (or ``TrialCache(...,
max_bytes=)``) puts the store on a size budget: after enough stores the
cache prunes itself back under the cap, least-recently-used first (hits
refresh mtime), under an advisory file lock (``cache_lock``) so
concurrent coordinators/workers sharing a volume never race each other's
maintenance scans.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

from ..obs.telemetry import Telemetry, TelemetrySnapshot

__all__ = [
    "CACHE_ENV",
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "DEFAULT_CACHE_DIR",
    "cache_lock",
    "resolve_cache_max_bytes",
    "TrialCache",
    "CacheEntry",
    "canonical_token",
    "cache_key",
    "code_fingerprint",
    "fingerprint_sources",
    "resolve_cache",
    "resolve_cache_dir",
    "shared_cache",
    "activate",
    "active_cache",
    "iter_entries",
    "cache_stats",
    "prune_cache",
    "verify_cache",
]

#: Turns the cache on for every runner fan-out when truthy ("1", "true", ...).
CACHE_ENV = "REPRO_CACHE"
#: Overrides the on-disk location of the store.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default store location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"
#: Size budget for the store (bytes; suffixes K/M/G accepted).  When set,
#: every :class:`TrialCache` self-maintains: after enough stores it prunes
#: least-recently-used entries back under the budget (under the file lock,
#: skipped if another process is already maintaining).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Stamped into every entry; bump on any incompatible layout change.
ENTRY_SCHEMA = "repro.cache/v1"

#: Packages whose source bytes define a trial's behavior.
DEFAULT_FINGERPRINT_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.workloads",
)


# ---------------------------------------------------------------------------
# Canonical tokens and keys
# ---------------------------------------------------------------------------
def canonical_token(obj: Any) -> str:
    """A canonical, hash-order-independent string for a job's value graph.

    Raises ``TypeError``/``pickle.PicklingError`` (via the pickle fallback)
    for objects with no stable form; callers treat that as "uncacheable".
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return repr(obj)
    if isinstance(obj, float):
        # repr() is the shortest round-trip form: exact and canonical.
        return repr(obj)
    if isinstance(obj, bytes):
        return f"b:{obj.hex()}"
    if isinstance(obj, enum.Enum):
        cls = type(obj)
        return f"e:{cls.__module__}.{cls.__qualname__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        body = ",".join(
            f"{name}={canonical_token(getattr(obj, name))}"
            for name in sorted(f.name for f in dataclasses.fields(obj))
        )
        return f"d:{cls.__module__}.{cls.__qualname__}({body})"
    if isinstance(obj, (list, tuple)):
        kind = "l" if isinstance(obj, list) else "t"
        return f"{kind}:[{','.join(canonical_token(v) for v in obj)}]"
    if isinstance(obj, dict):
        items = sorted(
            (canonical_token(k), canonical_token(v)) for k, v in obj.items()
        )
        return f"m:{{{','.join(f'{k}:{v}' for k, v in items)}}}"
    if isinstance(obj, (set, frozenset)):
        return f"s:{{{','.join(sorted(canonical_token(v) for v in obj))}}}"
    if callable(obj) and hasattr(obj, "__qualname__"):
        module = getattr(obj, "__module__", None)
        if module and "<locals>" not in obj.__qualname__:
            return f"f:{module}.{obj.__qualname__}"
    # Last resort: the pickle bytes are exactly what a worker would execute,
    # so equal pickles mean interchangeable jobs.  Unpicklable -> raises,
    # which the caller maps to "uncacheable".
    return f"p:{pickle.dumps(obj, protocol=4).hex()}"


def cache_key(token: str, fingerprint: str) -> str:
    """The content address for one job under one code fingerprint."""
    digest = hashlib.sha256()
    digest.update(fingerprint.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(token.encode("utf-8"))
    return digest.hexdigest()


def fingerprint_sources(paths: Sequence[Path]) -> str:
    """Hash file contents (sorted by name) into a hex fingerprint."""
    digest = hashlib.sha256()
    for path in sorted(Path(p) for p in paths):
        digest.update(str(path.name).encode("utf-8"))
        digest.update(b"\x00")
        try:
            digest.update(path.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\x01")
    return digest.hexdigest()


_FINGERPRINTS: Dict[Tuple[str, ...], str] = {}


def code_fingerprint(
    packages: Sequence[str] = DEFAULT_FINGERPRINT_PACKAGES,
) -> str:
    """Fingerprint of the simulation code: any behavioral edit changes it.

    Hashes every ``*.py`` under each package's directory tree (sorted,
    path-relative) so refactors, new modules, and deletions all invalidate.
    Computed once per process per package set.
    """
    key = tuple(packages)
    cached = _FINGERPRINTS.get(key)
    if cached is not None:
        return cached
    import importlib

    digest = hashlib.sha256()
    for name in key:
        module = importlib.import_module(name)
        roots = list(getattr(module, "__path__", []))
        if not roots:  # a plain module: hash its own file
            roots = [os.path.dirname(module.__file__ or "")]
        for root in roots:
            root_path = Path(root)
            for source in sorted(root_path.rglob("*.py")):
                digest.update(
                    str(source.relative_to(root_path)).encode("utf-8")
                )
                digest.update(b"\x00")
                digest.update(source.read_bytes())
                digest.update(b"\x01")
    fingerprint = digest.hexdigest()
    _FINGERPRINTS[key] = fingerprint
    return fingerprint


# ---------------------------------------------------------------------------
# Concurrency: the maintenance file lock
# ---------------------------------------------------------------------------
_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def resolve_cache_max_bytes(max_bytes: Optional[int] = None) -> Optional[int]:
    """Explicit budget, else ``REPRO_CACHE_MAX_BYTES``, else ``None`` (no cap).

    The environment form accepts a plain byte count or a ``K``/``M``/``G``
    suffix (``512M``).  Garbage or non-positive values warn and disable the
    cap — a bad environment variable must never delete a cache.
    """
    if max_bytes is not None:
        return int(max_bytes) if max_bytes > 0 else None
    raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip().lower()
    if not raw:
        return None
    scale = _SIZE_SUFFIXES.get(raw[-1:], 1)
    digits = raw[:-1] if scale != 1 else raw
    try:
        value = int(digits) * scale
    except ValueError:
        warnings.warn(f"ignoring non-numeric {CACHE_MAX_BYTES_ENV}={raw!r}")
        return None
    if value <= 0:
        warnings.warn(f"ignoring non-positive {CACHE_MAX_BYTES_ENV}={raw!r}")
        return None
    return value


@contextmanager
def cache_lock(root: os.PathLike, blocking: bool = True):
    """Exclusive advisory lock on ``<root>/.lock`` for store maintenance.

    Entry writes are already safe unlocked (atomic ``os.replace``); the
    lock exists so concurrent *maintenance* — two coordinators pruning the
    same shared volume, a worker pruning while the CLI verifies — cannot
    race each other's directory scans.  Yields ``True`` when the lock was
    taken; with ``blocking=False`` yields ``False`` immediately if another
    process holds it (auto-maintenance skips rather than stalls).  On
    platforms without ``fcntl`` the lock degrades to a no-op ``True``.
    """
    root = Path(root)
    try:
        root.mkdir(parents=True, exist_ok=True)
        handle = open(root / ".lock", "a+b")
    except OSError:
        yield False
        return
    try:
        try:
            import fcntl
        except ImportError:
            yield True
            return
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(handle.fileno(), flags)
        except OSError:
            yield False
            return
        try:
            yield True
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
    finally:
        handle.close()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
class TrialCache:
    """A concurrency-safe, content-addressed store of trial values.

    ``fingerprint`` defaults to :func:`code_fingerprint`; tests pass an
    explicit one (e.g. from :func:`fingerprint_sources`) to pin or perturb
    invalidation.  All I/O failures degrade to misses — a broken cache
    volume can slow a sweep down, never corrupt it.
    """

    def __init__(
        self,
        root: os.PathLike,
        fingerprint: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
        max_bytes: Optional[int] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        self.max_bytes = resolve_cache_max_bytes(max_bytes)
        self._unmaintained_bytes = 0
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=True, key=("cache", str(self.root)))
        )
        self._hits = self.telemetry.counter("cache.hits")
        self._misses = self.telemetry.counter("cache.misses")
        self._stores = self.telemetry.counter("cache.stores")
        self._bytes_read = self.telemetry.counter("cache.bytes_read")
        self._bytes_written = self.telemetry.counter("cache.bytes_written")
        self._errors = self.telemetry.counter("cache.errors")

    # -- keys ----------------------------------------------------------
    def key_for(self, job: Any) -> Optional[str]:
        """The job's content address, or ``None`` when uncacheable."""
        try:
            return cache_key(canonical_token(job), self.fingerprint)
        except Exception:
            return None

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- read/write ----------------------------------------------------
    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` otherwise."""
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self._misses.inc()
            return False, None
        try:
            schema, stored_key, value = pickle.loads(blob)
            if schema != ENTRY_SCHEMA or stored_key != key:
                raise ValueError("entry schema/key mismatch")
        except Exception:
            # Torn or stale-format entry: count it, drop it, treat as miss.
            self._errors.inc()
            self._misses.inc()
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self._hits.inc()
        self._bytes_read.inc(len(blob))
        try:
            os.utime(path)  # refresh mtime so LRU pruning keeps hot entries
        except OSError:
            pass
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Atomically store one value; ``False`` (never raises) on failure."""
        path = self.path_for(key)
        try:
            blob = pickle.dumps(
                (ENTRY_SCHEMA, key, value), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:
            self._errors.inc()
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".pkl", dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)  # atomic: readers see old or new, never torn
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            self._errors.inc()
            warnings.warn(f"cache write failed for {path}: {exc}")
            return False
        self._stores.inc()
        self._bytes_written.inc(len(blob))
        if self.max_bytes is not None:
            self._unmaintained_bytes += len(blob)
            # Maintain once enough new bytes have landed to matter (an
            # eighth of the budget), not on every store — directory scans
            # on a large store are not free.
            if self._unmaintained_bytes >= max(1, self.max_bytes // 8):
                self.maintain()
        return True

    def maintain(self) -> Optional[Dict[str, int]]:
        """Prune LRU entries back under ``max_bytes`` (no cap: no-op).

        Takes the maintenance lock non-blocking: if another process is
        already pruning this store, skip — the budget is about to be
        enforced anyway.  Returns the prune summary, or ``None`` when
        skipped/uncapped.
        """
        if self.max_bytes is None:
            return None
        self._unmaintained_bytes = 0
        with cache_lock(self.root, blocking=False) as held:
            if not held:
                return None
            return prune_cache(self.root, max_bytes=self.max_bytes)

    # -- introspection -------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Process-local counters: hits/misses/stores/bytes/errors."""
        return {
            "hits": int(self._hits.value),
            "misses": int(self._misses.value),
            "stores": int(self._stores.value),
            "bytes_read": int(self._bytes_read.value),
            "bytes_written": int(self._bytes_written.value),
            "errors": int(self._errors.value),
        }

    def snapshot(self) -> TelemetrySnapshot:
        """Frozen :mod:`repro.obs` snapshot of the cache counters."""
        return self.telemetry.snapshot()

    def describe(self) -> str:
        """One-line human summary (the CLI prints this after a cached run)."""
        s = self.stats
        return (
            f"cache {self.root}: {s['hits']} hit(s), {s['misses']} miss(es), "
            f"{s['stores']} store(s), {s['bytes_read']} B read, "
            f"{s['bytes_written']} B written"
        )


# ---------------------------------------------------------------------------
# Resolution and ambient activation
# ---------------------------------------------------------------------------
_ACTIVE: List[Optional[TrialCache]] = []
_SHARED: Dict[Path, TrialCache] = {}


def shared_cache(root: os.PathLike) -> TrialCache:
    """The process-wide :class:`TrialCache` for ``root`` (one per directory).

    Sharing one instance keeps the hit/miss counters coherent when the CLI,
    the experiment API, and the runner all resolve the same directory.
    """
    path = Path(root).resolve()
    cache = _SHARED.get(path)
    if cache is None:
        cache = _SHARED[path] = TrialCache(path)
    return cache


def resolve_cache_dir(cache_dir: Optional[str] = None) -> str:
    """Explicit directory, else ``REPRO_CACHE_DIR``, else the default."""
    if cache_dir:
        return cache_dir
    return os.environ.get(CACHE_DIR_ENV, "").strip() or DEFAULT_CACHE_DIR


def _env_enabled() -> bool:
    raw = os.environ.get(CACHE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def resolve_cache(
    cache: Any = None, cache_dir: Optional[str] = None
) -> Optional[TrialCache]:
    """Turn a cache request into a :class:`TrialCache` or ``None``.

    ``cache`` may be a :class:`TrialCache` (used as-is), ``True``/``False``
    (forced on/off), or ``None`` — which defers to the ambient
    :func:`activate` context and then the ``REPRO_CACHE`` environment
    variable, mirroring how the runner resolves worker counts.
    """
    if isinstance(cache, TrialCache):
        return cache
    if cache is False:
        return None
    if cache is None:
        ambient = active_cache()
        if ambient is not None:
            return ambient
        if not _env_enabled():
            return None
    return shared_cache(resolve_cache_dir(cache_dir))


def active_cache() -> Optional[TrialCache]:
    """The innermost cache activated via :func:`activate`, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate(cache: Optional[TrialCache]):
    """Make ``cache`` ambient for every runner fan-out inside the block.

    ``activate(None)`` is a transparent no-op, so callers can resolve once
    and wrap unconditionally.
    """
    if cache is None:
        yield None
        return
    _ACTIVE.append(cache)
    try:
        yield cache
    finally:
        _ACTIVE.pop()


# ---------------------------------------------------------------------------
# Maintenance (shared by ``python -m repro.cache`` and tests)
# ---------------------------------------------------------------------------
class CacheEntry(NamedTuple):
    """One on-disk entry, as seen by the maintenance commands."""

    path: Path
    key: str
    size: int
    mtime: float


def iter_entries(root: os.PathLike) -> Iterator[CacheEntry]:
    """Every ``*.pkl`` entry under ``root`` (missing dir -> empty)."""
    root = Path(root)
    if not root.is_dir():
        return
    for path in sorted(root.glob("*/*.pkl")):
        try:
            stat = path.stat()
        except OSError:
            continue
        yield CacheEntry(
            path=path, key=path.stem, size=stat.st_size, mtime=stat.st_mtime
        )


def cache_stats(root: os.PathLike) -> Dict[str, Any]:
    """Aggregate on-disk stats: entry count, total bytes, mtime range."""
    entries = list(iter_entries(root))
    return {
        "dir": str(root),
        "entries": len(entries),
        "bytes": sum(e.size for e in entries),
        "oldest_mtime": min((e.mtime for e in entries), default=None),
        "newest_mtime": max((e.mtime for e in entries), default=None),
    }


def prune_cache(
    root: os.PathLike,
    max_age_s: Optional[float] = None,
    max_bytes: Optional[int] = None,
    drop_all: bool = False,
    now: Optional[float] = None,
) -> Dict[str, int]:
    """Delete entries by age and/or total-size budget (oldest first).

    ``max_age_s`` drops entries older than the cutoff; ``max_bytes`` then
    evicts least-recently-used survivors until the store fits the budget
    (hits refresh mtime, so "oldest" means "least recently useful").
    Returns ``{"removed": n, "freed_bytes": b, "kept": k}``.
    """
    import time as _time

    entries = sorted(iter_entries(root), key=lambda e: (e.mtime, e.path))
    reference = _time.time() if now is None else now
    removed = 0
    freed = 0
    kept: List[CacheEntry] = []
    for entry in entries:
        drop = drop_all or (
            max_age_s is not None and reference - entry.mtime > max_age_s
        )
        if drop:
            try:
                entry.path.unlink()
                removed += 1
                freed += entry.size
            except OSError:
                kept.append(entry)
        else:
            kept.append(entry)
    if max_bytes is not None:
        total = sum(e.size for e in kept)
        survivors: List[CacheEntry] = []
        for entry in kept:  # still oldest-first: evict LRU until we fit
            if total > max_bytes:
                try:
                    entry.path.unlink()
                    removed += 1
                    freed += entry.size
                    total -= entry.size
                    continue
                except OSError:
                    pass
            survivors.append(entry)
        kept = survivors
    return {"removed": removed, "freed_bytes": freed, "kept": len(kept)}


def verify_cache(root: os.PathLike, fix: bool = False) -> List[str]:
    """Check every entry unpickles and matches its content address.

    Returns a list of problem descriptions (empty = healthy).  ``fix``
    deletes each bad entry as it is found — safe, because a deleted entry
    is just a future miss.
    """
    problems: List[str] = []
    for entry in iter_entries(root):
        problem = None
        try:
            schema, stored_key, _value = pickle.loads(entry.path.read_bytes())
            if schema != ENTRY_SCHEMA:
                problem = f"{entry.path}: unknown schema {schema!r}"
            elif stored_key != entry.key:
                problem = (
                    f"{entry.path}: stored key {stored_key!r} does not match "
                    f"filename"
                )
            elif entry.path.parent.name != entry.key[:2]:
                problem = f"{entry.path}: misfiled (expected {entry.key[:2]}/)"
        except Exception as exc:
            problem = f"{entry.path}: unreadable ({type(exc).__name__}: {exc})"
        if problem is not None:
            problems.append(problem)
            if fix:
                try:
                    entry.path.unlink()
                except OSError:
                    pass
    return problems
