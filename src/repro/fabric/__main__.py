"""Command-line entry points for the distributed sweep fabric.

Usage::

    python -m repro.fabric coordinator [--host H] [--port P]
                                       [--lease-ttl S] [--retries N]
                                       [--timeout S] [--cache] [--cache-dir D]
    python -m repro.fabric worker --coordinator URL [--id NAME]
                                  [--max-jobs N] [--idle-exit S]
    python -m repro.fabric run [--jobs N] [--workers W] [--chaos SEED]
                               [--coordinator URL] [--check]

``coordinator`` serves the leasing state machine over HTTP until killed
(or POST ``/shutdown``); with ``--cache`` it consults/feeds the
content-addressed trial cache, so restarting a coordinator mid-sweep
resumes from cache hits instead of re-running finished trials.
``worker`` drains leases from a coordinator, executing each job in a
sandboxed subprocess with heartbeats.  ``run`` pushes a deterministic
demo batch through the fabric — in-process by default (optionally under a
seeded chaos plan), or through a remote coordinator with ``--coordinator``
— and with ``--check`` verifies the envelopes are byte-identical to a
serial run (exit 1 if not).
"""

from __future__ import annotations

import argparse
import asyncio
import pickle
import sys

from . import FabricChaosPlan, InProcessFabric, demo_jobs
from .http import HttpFabric, serve_coordinator
from .worker import WorkerAgent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fabric",
        description="Coordinator/worker job-leasing fabric for trial sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    coord = sub.add_parser("coordinator", help="serve the leasing coordinator")
    coord.add_argument("--host", default="127.0.0.1")
    coord.add_argument("--port", type=int, default=8537)
    coord.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds without a heartbeat before a lease is reassigned",
    )
    coord.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="genuine-failure budget per job (default: $REPRO_TRIAL_RETRIES)",
    )
    coord.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-trial wall-clock timeout shipped to workers",
    )
    coord.add_argument(
        "--cache",
        action="store_true",
        help="consult/feed the trial-result cache (restart resumes from hits)",
    )
    coord.add_argument("--cache-dir", default=None, metavar="DIR")

    worker = sub.add_parser("worker", help="drain leases from a coordinator")
    worker.add_argument(
        "--coordinator", required=True, metavar="URL", help="http://host:port"
    )
    worker.add_argument("--id", default=None, metavar="NAME")
    worker.add_argument("--max-jobs", type=int, default=None, metavar="N")
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="S",
        help="exit after S seconds with nothing to lease",
    )

    run = sub.add_parser("run", help="push a demo batch through the fabric")
    run.add_argument("--jobs", type=int, default=8, metavar="N")
    run.add_argument("--workers", type=int, default=2, metavar="W")
    run.add_argument(
        "--chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="inject the seeded chaos preset (kills/stalls/drops/duplicates)",
    )
    run.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help="submit to a remote coordinator instead of running in-process",
    )
    run.add_argument(
        "--check",
        action="store_true",
        help="verify envelopes byte-identical to a serial run (exit 1 if not)",
    )
    return parser


def _cmd_coordinator(args: argparse.Namespace) -> int:
    cache = None
    if args.cache:
        from ..cache import resolve_cache

        cache = resolve_cache(True, args.cache_dir)

    async def serve() -> None:
        server = await serve_coordinator(
            host=args.host,
            port=args.port,
            lease_ttl_s=args.lease_ttl,
            retries=args.retries,
            timeout_s=args.timeout,
            cache=cache,
        )
        print(
            f"coordinator listening on http://{server.host}:{server.port} "
            f"(lease ttl {args.lease_ttl:g}s"
            + (f", cache {cache.root}" if cache is not None else "")
            + ")",
            file=sys.stderr,
            flush=True,
        )
        await server.serve_until_stopped()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    agent = WorkerAgent(
        args.coordinator,
        worker_id=args.id,
        max_jobs=args.max_jobs,
        idle_exit_s=args.idle_exit,
    )
    try:
        done = agent.run()
    except KeyboardInterrupt:
        done = agent.jobs_done
    print(f"worker {agent.worker_id}: {done} job(s) executed", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    jobs = demo_jobs(args.jobs)
    if args.coordinator is not None:
        fabric = HttpFabric(args.coordinator)
    else:
        plan = (
            FabricChaosPlan.preset(args.chaos) if args.chaos is not None else None
        )
        fabric = InProcessFabric(workers=args.workers, plan=plan)
    results = fabric.run(jobs)
    for envelope in results:
        print(f"{envelope.tag}: ok={envelope.ok} value={envelope.value}")
    print(fabric.describe(), file=sys.stderr)
    if args.check:
        from ..runner.pool import run_jobs

        serial = run_jobs(demo_jobs(args.jobs), workers=1)
        if results != serial:
            print("MISMATCH: fabric envelopes differ from serial", file=sys.stderr)
            return 1
        fabric_bytes = pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
        serial_bytes = pickle.dumps(serial, protocol=pickle.HIGHEST_PROTOCOL)
        # Wire round-trips can reshuffle pickler memo references without
        # changing content, so byte-level identity is reported, not required.
        grade = (
            "byte-identical" if fabric_bytes == serial_bytes else "value-identical"
        )
        print(f"{grade} to serial ({len(serial_bytes)} bytes)", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    """Command-line entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "coordinator":
        return _cmd_coordinator(args)
    if args.command == "worker":
        return _cmd_worker(args)
    return _cmd_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
