"""Deterministic in-process chaos harness for the sweep fabric.

Real multi-host failure testing needs machines to kill; CI does not have
them.  This module gets the same coverage by running the whole fabric —
coordinator, a simulated worker fleet, and an adversary — inside one
process on a **virtual clock**: a tiny event heap totally orders every
lease, heartbeat, expiry, kill, stall, and (possibly dropped or
duplicated) completion, and every adversarial decision is drawn from a
seeded RNG in that fixed order.  Job *values* are computed by really
calling ``job.run()``, so the harness proves the load-bearing property
end-to-end: for **any** :class:`FabricChaosPlan`, the merged envelopes are
byte-identical to a clean serial run.

Failure vocabulary (mirroring the empirical WiFi-connection failure taxonomy
that motivates the realism knobs — processes die, stall, and messages are
lost or replayed):

* **kill** — the worker dies the instant it picks up a lease: no
  heartbeat, no completion.  The lease expires and the job is reassigned,
  uncharged.  A supervisor restarts the worker after a delay, so a plan
  can never wedge the fleet permanently.
* **stall** — the worker freezes past its lease TTL, then delivers late.
  The coordinator has already reassigned the job; the late completion is
  either salvaged (job still unfinished) or counted as a duplicate.
* **drop** — the completion message is lost in flight.  Indistinguishable
  from a kill to the coordinator, except the worker itself lives on.
* **duplicate** — the completion is delivered twice (an at-least-once
  transport retry).  The second copy must be a counted no-op.

Chaos events are *bounded* — forced events are finite tuples and random
events stop after ``max_random_events`` draws per category — which is what
guarantees every plan eventually drains.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs.telemetry import Telemetry
from ..runner.pool import TrialJob, TrialResult
from .coordinator import CoordinatorState

__all__ = ["FabricChaosPlan", "run_chaos_fabric"]

#: Hard ceiling on processed harness events; a plan that somehow livelocks
#: fails loudly instead of hanging the test run.
_MAX_EVENTS = 2_000_000


@dataclass(frozen=True)
class FabricChaosPlan:
    """A frozen, seeded description of everything that goes wrong.

    ``kill_leases`` / ``stall_leases`` / ``drop_completions`` /
    ``duplicate_completions`` name global lease sequence numbers (0-based,
    in lease-issue order — deterministic under the virtual clock), so a
    plan can *guarantee* specific faults: ``kill_leases=(1,)`` kills
    whichever worker is granted the second lease.  The ``*_rate`` fields
    add seeded random faults on top, capped at ``max_random_events`` draws
    per category so every plan terminates.

    The empty plan injects nothing and consumes no randomness; it is how
    the chaos-free in-process fabric runs.
    """

    seed: int = 0
    kill_leases: Tuple[int, ...] = ()
    stall_leases: Tuple[int, ...] = ()
    drop_completions: Tuple[int, ...] = ()
    duplicate_completions: Tuple[int, ...] = ()
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_random_events: int = 32

    def is_noop(self) -> bool:
        return not (
            self.kill_leases
            or self.stall_leases
            or self.drop_completions
            or self.duplicate_completions
            or self.kill_rate
            or self.stall_rate
            or self.drop_rate
            or self.duplicate_rate
        )

    @classmethod
    def preset(cls, seed: int = 0) -> "FabricChaosPlan":
        """The acceptance-scenario plan: at least one worker killed
        mid-trial, one stalled past lease expiry, one completion dropped,
        and one duplicated — plus mild seeded randomness on top."""
        rng = random.Random(seed)
        picks = rng.sample(range(8), 4)
        return cls(
            seed=seed,
            kill_leases=(picks[0],),
            stall_leases=(picks[1],),
            drop_completions=(picks[2],),
            duplicate_completions=(picks[3],),
            kill_rate=0.05,
            stall_rate=0.05,
            drop_rate=0.05,
            duplicate_rate=0.05,
            max_random_events=8,
        )


class _Adversary:
    """Draws the plan's decisions in deterministic (event-loop) order."""

    def __init__(self, plan: FabricChaosPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self._used = {"kill": 0, "stall": 0, "drop": 0, "duplicate": 0}

    def _decide(self, kind: str, forced: Tuple[int, ...], rate: float, seq: int) -> bool:
        if seq in forced:
            return True
        if rate <= 0.0 or self._used[kind] >= self.plan.max_random_events:
            return False
        if self.rng.random() < rate:
            self._used[kind] += 1
            return True
        return False

    def kill(self, seq: int) -> bool:
        return self._decide("kill", self.plan.kill_leases, self.plan.kill_rate, seq)

    def stall(self, seq: int) -> bool:
        return self._decide("stall", self.plan.stall_leases, self.plan.stall_rate, seq)

    def drop(self, seq: int) -> bool:
        return self._decide(
            "drop", self.plan.drop_completions, self.plan.drop_rate, seq
        )

    def duplicate(self, seq: int) -> bool:
        return self._decide(
            "duplicate",
            self.plan.duplicate_completions,
            self.plan.duplicate_rate,
            seq,
        )


class _Clock:
    """A tiny deterministic event heap: (time, seq) totally orders firing."""

    def __init__(self):
        self.now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def run(self) -> None:
        processed = 0
        while self._heap:
            when, _seq, fn = heapq.heappop(self._heap)
            self.now = max(self.now, when)
            fn()
            processed += 1
            if processed > _MAX_EVENTS:
                raise RuntimeError(
                    "chaos harness exceeded its event budget (livelocked plan?)"
                )


@dataclass
class _Worker:
    name: str
    alive: bool = True


def _execute(job: TrialJob) -> Tuple[bool, Any, Optional[str]]:
    """Run one job in-process, pool-style: value or a diagnosis string."""
    try:
        value = job.run()
    except Exception as exc:
        return False, None, f"{type(exc).__name__}: {exc}"
    return True, value, None


def run_chaos_fabric(
    jobs: Sequence[TrialJob],
    plan: Optional[FabricChaosPlan] = None,
    workers: int = 2,
    lease_ttl_s: float = 5.0,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    cache: Any = None,
    telemetry: Optional[Telemetry] = None,
    exec_cost_s: float = 1.0,
    poll_s: float = 0.25,
    restart_delay_s: Optional[float] = None,
) -> List[TrialResult]:
    """Drive ``jobs`` through a coordinator + simulated fleet under ``plan``.

    Returns :class:`~repro.runner.TrialResult` envelopes in submission
    order.  Values are computed by really executing each job in this
    process; the virtual clock only decides *which* executions happen and
    which messages arrive, so for deterministic jobs the envelopes are
    byte-identical to ``run_jobs(jobs, workers=1)`` no matter the plan.

    ``exec_cost_s`` is a job's virtual execution time (kept below the
    lease TTL so healthy workers never need mid-job heartbeats; the
    harness still sends them when the cost exceeds the heartbeat
    interval).  Killed workers are restarted after ``restart_delay_s``
    (default: 2x the lease TTL), so a partially dead fleet always drains
    on survivors or replacements.
    """
    jobs = list(jobs)
    plan = plan or FabricChaosPlan()
    if restart_delay_s is None:
        restart_delay_s = 2.0 * lease_ttl_s
    state = CoordinatorState(
        lease_ttl_s=lease_ttl_s,
        retries=retries,
        timeout_s=timeout_s,
        cache=cache,
        telemetry=telemetry,
    )
    if not jobs:
        return []
    batch = state.submit(jobs)
    adversary = _Adversary(plan)
    clock = _Clock()
    fleet = [_Worker(name=f"w{i}") for i in range(max(1, workers))]
    stall_factor = 1.6  # stalled completions land this far past the TTL

    def tick() -> None:
        if state.batch_done(batch):
            return
        state.tick(clock.now)
        clock.schedule(lease_ttl_s / 4.0, tick)

    def respawn(worker: _Worker) -> None:
        worker.alive = True
        poll(worker)

    def poll(worker: _Worker) -> None:
        if not worker.alive or state.batch_done(batch):
            return
        lease = state.lease(worker.name, clock.now)
        if lease is None:
            clock.schedule(poll_s, lambda w=worker: poll(w))
            return
        seq = lease.lease_id
        if adversary.kill(seq):
            # Died mid-trial: no heartbeat, no completion.  The
            # supervisor brings a replacement up after a delay.
            worker.alive = False
            clock.schedule(restart_delay_s, lambda w=worker: respawn(w))
            return
        if adversary.stall(seq):
            delay = lease_ttl_s * stall_factor  # silent past expiry
        else:
            delay = exec_cost_s
            hb_at = lease.heartbeat_s
            while hb_at < delay:
                clock.schedule(
                    hb_at,
                    lambda w=worker, lid=seq: state.heartbeat(
                        w.name, [lid], clock.now
                    ),
                )
                hb_at += lease.heartbeat_s
        clock.schedule(delay, lambda w=worker, ls=lease: deliver(w, ls))

    def deliver(worker: _Worker, lease) -> None:
        ok, value, error = _execute(lease.job)
        seq = lease.lease_id
        if not adversary.drop(seq):
            state.complete(lease.lease_id, ok, value=value, error=error, now=clock.now)
            if adversary.duplicate(seq):
                clock.schedule(
                    poll_s / 2.0,
                    lambda lid=lease.lease_id, o=ok, v=value, e=error: state.complete(
                        lid, o, value=v, error=e, now=clock.now
                    ),
                )
        clock.schedule(0.0, lambda w=worker: poll(w))

    for i, worker in enumerate(fleet):
        clock.schedule(i * (poll_s / 10.0), lambda w=worker: poll(w))
    clock.schedule(lease_ttl_s / 4.0, tick)
    clock.run()
    results = state.results(batch)
    if results is None:
        raise RuntimeError(
            f"fabric did not drain: {state.pending_jobs()} job(s) unfinished"
        )
    return results
