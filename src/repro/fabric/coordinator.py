"""The fabric's brain: job leasing, heartbeats, retries, and quarantine.

:class:`CoordinatorState` is a *pure* state machine: every transition is an
explicit method call carrying the caller's clock (``now``), nothing inside
reads wall time, spawns threads, or touches sockets.  That is what makes
the fault paths testable deterministically — the in-process chaos harness
(:mod:`repro.fabric.chaos`) drives the same object with a virtual clock,
while the asyncio HTTP service (:mod:`repro.fabric.http`) is a thin shell
that forwards requests and a ``time.monotonic`` tick into it.

Lifecycle of one job
--------------------
``submit`` enqueues a batch of :class:`~repro.runner.TrialJob`s in
submission order.  Each job is first checked against the trial-result
cache (coordinator restarts resume from cache hits) and against in-flight
work by content address (two identical jobs — same canonical token — lease
once and fan the value out to both).  ``lease`` hands the earliest
eligible job to a worker with a deadline; ``heartbeat`` extends the
deadline; ``tick`` reclaims expired leases (a missed heartbeat, a killed
worker, a network partition — the coordinator cannot tell and does not
need to: the job simply goes back in the queue, *uncharged*, because an
infrastructure failure is never the trial's fault).  ``complete`` is
idempotent — a duplicated or stale completion for a finished job is
counted and dropped, never double-applied.

A job whose execution genuinely *fails* (the worker ran it and it raised)
is charged one attempt and re-queued with exponential backoff; after the
retry budget is spent it is quarantined as a poison job with the same
``TrialResult(ok=False, ...)`` envelope the local pool would produce.
Because kills/stalls/drops are uncharged and genuine failures follow the
pool's retry accounting, a sweep that survives any amount of worker chaos
yields envelopes *byte-identical* to a clean serial run.

Results come back in **submission order**, never completion order — the
same merge discipline as :func:`repro.runner.run_jobs`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.telemetry import Telemetry, TelemetrySnapshot
from ..runner.pool import TrialJob, TrialResult, resolve_trial_retries

__all__ = [
    "CoordinatorState",
    "Lease",
    "JobState",
    "DEFAULT_LEASE_TTL_S",
    "DEFAULT_BACKOFF_BASE_S",
    "DEFAULT_BACKOFF_CAP_S",
]

#: Default lease time-to-live: a worker that goes this long without a
#: heartbeat forfeits its job.
DEFAULT_LEASE_TTL_S = 30.0
#: First-retry delay for a genuinely failing job; doubles per failure.
DEFAULT_BACKOFF_BASE_S = 1.0
#: Ceiling on the exponential backoff delay.
DEFAULT_BACKOFF_CAP_S = 60.0

# Job statuses.
PENDING = "pending"
LEASED = "leased"
DONE = "done"


@dataclass
class JobState:
    """Bookkeeping for one submitted job (internal to the coordinator)."""

    job_id: int
    index: int  # position within its batch
    batch_id: int
    job: Optional[TrialJob]  # present in in-process mode
    payload: Optional[bytes]  # pickled job, present in wire mode
    key: Optional[str]  # content address for dedupe/cache (None: neither)
    tag: Any
    status: str = PENDING
    failures: int = 0  # genuine execution failures (charged)
    not_before: float = 0.0  # backoff gate for the next lease
    result: Optional[TrialResult] = None
    #: Job ids whose identical work this job's execution also satisfies.
    followers: List[int] = field(default_factory=list)
    #: Set when this job's execution is owned by an identical earlier job.
    duplicate_of: Optional[int] = None


@dataclass(frozen=True)
class Lease:
    """What a worker receives: one job, a deadline, and the trial knobs."""

    lease_id: int
    job_id: int
    payload: Optional[bytes]
    job: Optional[TrialJob]
    deadline: float
    timeout_s: Optional[float]
    heartbeat_s: float


@dataclass
class _ActiveLease:
    lease_id: int
    job_id: int
    worker_id: str
    deadline: float


class CoordinatorState:
    """Leases canonical job tokens to workers; survives their failures.

    ``retries`` is the genuine-failure budget per job (``None`` defers to
    ``REPRO_TRIAL_RETRIES``, matching the pool); ``timeout_s`` is the
    per-trial wall-clock bound shipped to workers inside each lease.
    ``cache`` (a :class:`repro.cache.TrialCache` or ``None``) is consulted
    at submit time and fed on success, so a restarted coordinator resumes
    a sweep from cache hits instead of re-running it.
    """

    def __init__(
        self,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        retries: Optional[int] = None,
        timeout_s: Optional[float] = None,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
        cache: Any = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.lease_ttl_s = float(lease_ttl_s)
        self.retries = resolve_trial_retries(retries)
        self.timeout_s = timeout_s
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.cache = cache
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=True, key=("fabric", "coordinator"))
        )
        self._jobs: Dict[int, JobState] = {}
        self._queue: List[int] = []  # pending job ids, submission order
        self._leases: Dict[int, _ActiveLease] = {}
        self._expired: Dict[int, int] = {}  # expired lease id -> job id
        self._batches: Dict[int, List[int]] = {}  # batch id -> job ids in order
        self._by_key: Dict[str, int] = {}  # content address -> owning job id
        self._next_job = 0
        self._next_lease = 0
        self._next_batch = 0
        self._workers_seen: Dict[str, float] = {}
        tele = self.telemetry
        self._c_submitted = tele.counter("fabric.jobs_submitted")
        self._c_leases = tele.counter("fabric.leases_issued")
        self._c_expired = tele.counter("fabric.leases_expired")
        self._c_reassigned = tele.counter("fabric.reassignments")
        self._c_hb = tele.counter("fabric.heartbeats")
        self._c_hb_miss = tele.counter("fabric.heartbeat_misses")
        self._c_retries = tele.counter("fabric.retries")
        self._c_quarantined = tele.counter("fabric.quarantined")
        self._c_duplicates = tele.counter("fabric.duplicate_completions")
        self._c_stale = tele.counter("fabric.stale_completions")
        self._c_deduped = tele.counter("fabric.jobs_deduped")
        self._c_cache_hits = tele.counter("fabric.cache_hits")
        self._c_done = tele.counter("fabric.jobs_completed")

    # -- submission ----------------------------------------------------
    def _job_key(self, job: Optional[TrialJob], payload: Optional[bytes]) -> Optional[str]:
        """Content address used for dedupe and the result cache."""
        if self.cache is not None and job is not None:
            return self.cache.key_for(job)
        if job is not None:
            from ..cache import canonical_token  # late: cache pulls in obs

            try:
                token = canonical_token(job)
            except Exception:
                return None
            return hashlib.sha256(token.encode("utf-8")).hexdigest()
        if payload is not None:
            return hashlib.sha256(payload).hexdigest()
        return None

    def submit(
        self,
        jobs: Sequence[TrialJob] = (),
        payloads: Optional[Sequence[Optional[bytes]]] = None,
        tags: Optional[Sequence[Any]] = None,
    ) -> int:
        """Enqueue one batch; returns its id.  Results keep submission order.

        In-process callers pass ``jobs``; the wire service passes pickled
        ``payloads`` (with ``jobs`` unpickled lazily or not at all) plus
        the ``tags`` to stamp on the result envelopes.
        """
        jobs = list(jobs)
        count = len(jobs) if jobs else len(payloads or ())
        batch_id = self._next_batch
        self._next_batch += 1
        ids: List[int] = []
        for i in range(count):
            job = jobs[i] if jobs else None
            payload = payloads[i] if payloads is not None else None
            tag = tags[i] if tags is not None else (job.tag if job else None)
            state = JobState(
                job_id=self._next_job,
                index=i,
                batch_id=batch_id,
                job=job,
                payload=payload,
                key=self._job_key(job, payload),
                tag=tag,
            )
            self._next_job += 1
            self._jobs[state.job_id] = state
            ids.append(state.job_id)
            self._c_submitted.inc()
            if not self._try_cache_hit(state) and not self._try_dedupe(state):
                self._queue.append(state.job_id)
        self._batches[batch_id] = ids
        return batch_id

    def _try_cache_hit(self, state: JobState) -> bool:
        if self.cache is None or state.key is None:
            return False
        hit, value = self.cache.get(state.key)
        if not hit:
            return False
        self._c_cache_hits.inc()
        self._finish(state, TrialResult(ok=True, value=value, tag=state.tag))
        return True

    def _try_dedupe(self, state: JobState) -> bool:
        """Attach to an identical in-flight job instead of queueing twice."""
        if state.key is None:
            return False
        owner_id = self._by_key.get(state.key)
        if owner_id is not None:
            owner = self._jobs.get(owner_id)
            if owner is not None and owner.status != DONE:
                owner.followers.append(state.job_id)
                state.duplicate_of = owner_id
                self._c_deduped.inc()
                return True
        self._by_key[state.key] = state.job_id
        return False

    # -- leasing -------------------------------------------------------
    def lease(self, worker_id: str, now: float) -> Optional[Lease]:
        """Hand the earliest eligible pending job to ``worker_id``."""
        self._workers_seen[worker_id] = now
        chosen: Optional[int] = None
        keep: List[int] = []
        for job_id in self._queue:
            state = self._jobs[job_id]
            if state.status != PENDING:
                continue  # finished by a late completion while queued
            if chosen is None and state.not_before <= now:
                chosen = job_id
                continue
            keep.append(job_id)
        self._queue = keep
        if chosen is None:
            return None
        state = self._jobs[chosen]
        state.status = LEASED
        lease = _ActiveLease(
            lease_id=self._next_lease,
            job_id=chosen,
            worker_id=worker_id,
            deadline=now + self.lease_ttl_s,
        )
        self._next_lease += 1
        self._leases[lease.lease_id] = lease
        self._c_leases.inc()
        return Lease(
            lease_id=lease.lease_id,
            job_id=chosen,
            payload=state.payload,
            job=state.job,
            deadline=lease.deadline,
            timeout_s=self.timeout_s,
            heartbeat_s=self.lease_ttl_s / 3.0,
        )

    def heartbeat(
        self, worker_id: str, lease_ids: Sequence[int], now: float
    ) -> Dict[int, bool]:
        """Extend deadlines; ``False`` tells the worker to abandon that lease."""
        self._workers_seen[worker_id] = now
        acks: Dict[int, bool] = {}
        for lease_id in lease_ids:
            lease = self._leases.get(lease_id)
            if lease is None or lease.worker_id != worker_id:
                acks[lease_id] = False
                continue
            lease.deadline = now + self.lease_ttl_s
            self._c_hb.inc()
            acks[lease_id] = True
        return acks

    def tick(self, now: float) -> int:
        """Reclaim expired leases; returns how many jobs were reassigned.

        An expired lease is an infrastructure failure — a killed worker, a
        stall past the TTL, a partition.  The job returns to the queue
        *uncharged* so the surviving fleet drains it, and the eventual
        envelope is indistinguishable from a first-try success.
        """
        reclaimed = 0
        for lease_id in [
            lid for lid, lease in self._leases.items() if lease.deadline <= now
        ]:
            lease = self._leases.pop(lease_id)
            self._expired[lease_id] = lease.job_id
            self._c_expired.inc()
            self._c_hb_miss.inc()
            state = self._jobs.get(lease.job_id)
            if state is None or state.status != LEASED:
                continue
            state.status = PENDING
            self._queue.append(state.job_id)
            self._c_reassigned.inc()
            reclaimed += 1
        return reclaimed

    # -- completion ----------------------------------------------------
    def complete(
        self,
        lease_id: int,
        ok: bool,
        value: Any = None,
        error: Optional[str] = None,
        now: float = 0.0,
    ) -> str:
        """Apply one completion message; idempotent under duplication.

        Returns a disposition string (``"accepted"``, ``"late"``,
        ``"duplicate"``) — diagnostic only, workers need not act on it.
        """
        lease = self._leases.pop(lease_id, None)
        if lease is None:
            # The lease is gone: either it expired (and may have been
            # re-run) or this is a duplicated delivery.  If the job is
            # still unfinished, the value is salvageable — the job is a
            # pure function, so a late result is a correct result.
            job_id = self._expired.pop(lease_id, None)
            state = self._jobs.get(job_id) if job_id is not None else None
            if state is None or state.status == DONE:
                self._c_duplicates.inc()
                return "duplicate"
            self._c_stale.inc()
            if state.status == LEASED:
                # The reassigned lease is now moot; retire it quietly so
                # its own completion arrives as a counted duplicate.
                for lid, active in list(self._leases.items()):
                    if active.job_id == state.job_id:
                        del self._leases[lid]
            self._apply(state, ok, value, error, now)
            return "late"
        state = self._jobs[lease.job_id]
        if state.status == DONE:  # fanned in from a duplicate sibling
            self._c_duplicates.inc()
            return "duplicate"
        self._apply(state, ok, value, error, now)
        return "accepted"

    def _apply(
        self, state: JobState, ok: bool, value: Any, error: Optional[str], now: float
    ) -> None:
        if ok:
            attempts = state.failures + 1
            if self.cache is not None and state.key is not None:
                self.cache.put(state.key, value)
            self._finish(
                state,
                TrialResult(ok=True, value=value, attempts=attempts, tag=state.tag),
            )
            return
        state.failures += 1
        if state.failures > self.retries:
            self._c_quarantined.inc()
            self._finish(
                state,
                TrialResult(
                    ok=False, error=error, attempts=state.failures, tag=state.tag
                ),
            )
            return
        # Genuine failure with budget left: exponential backoff, then retry.
        self._c_retries.inc()
        delay = min(
            self.backoff_base_s * (2.0 ** (state.failures - 1)), self.backoff_cap_s
        )
        state.not_before = now + delay
        state.status = PENDING
        self._queue.append(state.job_id)

    def _finish(self, state: JobState, result: TrialResult) -> None:
        state.status = DONE
        state.result = result
        self._c_done.inc()
        if state.key is not None and self._by_key.get(state.key) == state.job_id:
            del self._by_key[state.key]
        for follower_id in state.followers:
            follower = self._jobs.get(follower_id)
            if follower is None or follower.status == DONE:
                continue
            self._finish(
                follower,
                TrialResult(
                    ok=result.ok,
                    value=result.value,
                    error=result.error,
                    attempts=result.attempts,
                    tag=follower.tag,
                ),
            )

    # -- harvest -------------------------------------------------------
    def next_wakeup(self, now: float) -> Optional[float]:
        """Earliest instant something becomes actionable (lease expiry or
        backoff gate), or ``None`` when nothing is outstanding."""
        times = [lease.deadline for lease in self._leases.values()]
        times += [
            self._jobs[j].not_before
            for j in self._queue
            if self._jobs[j].not_before > now
        ]
        return min(times) if times else None

    def pending_jobs(self) -> int:
        return sum(1 for s in self._jobs.values() if s.status != DONE)

    def batch_done(self, batch_id: int) -> bool:
        ids = self._batches.get(batch_id)
        if ids is None:
            raise KeyError(f"unknown batch {batch_id}")
        return all(self._jobs[j].status == DONE for j in ids)

    def results(self, batch_id: int) -> Optional[List[TrialResult]]:
        """Envelopes in submission order once the batch drained, else None."""
        if not self.batch_done(batch_id):
            return None
        return [self._jobs[j].result for j in self._batches[batch_id]]

    # -- introspection -------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Counter values keyed by short name (for /stats and the CLI)."""
        return {
            "jobs_submitted": int(self._c_submitted.value),
            "leases_issued": int(self._c_leases.value),
            "leases_expired": int(self._c_expired.value),
            "reassignments": int(self._c_reassigned.value),
            "heartbeats": int(self._c_hb.value),
            "heartbeat_misses": int(self._c_hb_miss.value),
            "retries": int(self._c_retries.value),
            "quarantined": int(self._c_quarantined.value),
            "duplicate_completions": int(self._c_duplicates.value),
            "stale_completions": int(self._c_stale.value),
            "jobs_deduped": int(self._c_deduped.value),
            "cache_hits": int(self._c_cache_hits.value),
            "jobs_completed": int(self._c_done.value),
        }

    def snapshot(self) -> TelemetrySnapshot:
        return self.telemetry.snapshot()

    def describe(self) -> str:
        """One-line summary the CLI prints after a fabric run."""
        s = self.stats
        return (
            f"fabric: {s.get('jobs_completed', 0)} job(s) done, "
            f"{s.get('leases_issued', 0)} lease(s), "
            f"{s.get('reassignments', 0)} reassignment(s), "
            f"{s.get('retries', 0)} retry(ies), "
            f"{s.get('quarantined', 0)} quarantined, "
            f"{s.get('duplicate_completions', 0)} duplicate completion(s)"
        )
