"""The asyncio HTTP shell around :class:`~repro.fabric.coordinator.CoordinatorState`.

The coordinator's brain is a pure state machine; this module is the thin
wire around it: a minimal HTTP/1.1 JSON service (stdlib asyncio only — the
container has no aiohttp and must not grow one) plus a synchronous client
(:class:`CoordinatorClient`, ``http.client``) and the
:class:`HttpFabric` adapter that lets ``run_jobs`` submit a batch to a
remote coordinator and block for the merged envelopes.

Endpoints (all bodies JSON; job/value blobs are base64-pickle):

==============  ============================================================
``POST /submit``      ``{jobs: [b64...]}`` → ``{batch: id, jobs: n}``
``POST /lease``       ``{worker: id}`` → ``{lease: {...} | null, idle_s}``
``POST /heartbeat``   ``{worker: id, leases: [...]}`` → ``{acks: {id: bool}}``
``POST /complete``    ``{lease: id, ok, value?, error?}`` → ``{disposition}``
``GET /results``      ``?batch=N`` → ``{done, results?: b64, stats}``
``GET /stats``        → counters + pending
``POST /shutdown``    → stops the server once the socket drains
==============  ============================================================

Pickled payloads mean the coordinator and its workers must trust each
other — this fabric is lab infrastructure on a private network, the same
trust model as the process pool it extends.
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle
import time
import urllib.parse
from http.client import HTTPConnection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runner.pool import TrialJob, TrialResult
from .coordinator import CoordinatorState

__all__ = [
    "CoordinatorServer",
    "CoordinatorClient",
    "HttpFabric",
    "serve_coordinator",
]

_MAX_BODY = 256 * 1024 * 1024  # one batch of pickled sweep jobs fits easily


def _b64(blob: bytes) -> str:
    return base64.b64encode(blob).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


class CoordinatorServer:
    """Serve one :class:`CoordinatorState` over HTTP on ``host:port``.

    The server owns the wall clock: every state transition is stamped with
    ``time.monotonic()`` and a background task ticks lease expiry at a
    quarter of the TTL.  ``port=0`` binds an ephemeral port (tests);
    ``self.port`` is the bound one after :meth:`start`.
    """

    def __init__(
        self,
        state: Optional[CoordinatorState] = None,
        host: str = "127.0.0.1",
        port: int = 8537,
        **state_kwargs: Any,
    ):
        self.state = state if state is not None else CoordinatorState(**state_kwargs)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._ticker: Optional[asyncio.Task] = None
        self._stop = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ticker = asyncio.ensure_future(self._tick_loop())

    async def _tick_loop(self) -> None:
        interval = max(0.05, self.state.lease_ttl_s / 4.0)
        while not self._stop.is_set():
            self.state.tick(time.monotonic())
            try:
                await asyncio.wait_for(self._stop.wait(), timeout=interval)
            except asyncio.TimeoutError:
                pass

    async def serve_until_stopped(self) -> None:
        await self._stop.wait()
        await self.close()

    async def close(self) -> None:
        self._stop.set()
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- request plumbing ----------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, reply = self._route(method, path, body)
                blob = json.dumps(reply).encode("utf-8")
                writer.write(
                    (
                        f"HTTP/1.1 {status}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(blob)}\r\n"
                        "Connection: keep-alive\r\n\r\n"
                    ).encode("ascii")
                    + blob
                )
                await writer.drain()
                if self._stop.is_set():
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, Any]]]:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        parts = line.decode("ascii", "replace").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("ascii", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > _MAX_BODY:
            return None
        body: Dict[str, Any] = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {}
        return method, path, body

    # -- routing -------------------------------------------------------
    def _route(
        self, method: str, path: str, body: Dict[str, Any]
    ) -> Tuple[str, Dict[str, Any]]:
        now = time.monotonic()
        parsed = urllib.parse.urlsplit(path)
        route = (method, parsed.path)
        try:
            if route == ("POST", "/submit"):
                return "200 OK", self._submit(body)
            if route == ("POST", "/lease"):
                return "200 OK", self._lease(body, now)
            if route == ("POST", "/heartbeat"):
                worker = str(body.get("worker", ""))
                leases = [int(x) for x in body.get("leases", [])]
                return "200 OK", {
                    "acks": {
                        str(k): v
                        for k, v in self.state.heartbeat(worker, leases, now).items()
                    }
                }
            if route == ("POST", "/complete"):
                disposition = self.state.complete(
                    int(body["lease"]),
                    bool(body.get("ok")),
                    value=(
                        pickle.loads(_unb64(body["value"]))
                        if body.get("value") is not None
                        else None
                    ),
                    error=body.get("error"),
                    now=now,
                )
                return "200 OK", {"disposition": disposition}
            if route == ("GET", "/results"):
                query = urllib.parse.parse_qs(parsed.query)
                batch = int(query.get("batch", ["0"])[0])
                results = self.state.results(batch)
                reply: Dict[str, Any] = {
                    "done": results is not None,
                    "stats": self.state.stats,
                }
                if results is not None:
                    reply["results"] = _b64(
                        pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                return "200 OK", reply
            if route == ("GET", "/stats"):
                return "200 OK", {
                    "stats": self.state.stats,
                    "pending": self.state.pending_jobs(),
                }
            if route == ("GET", "/health"):
                return "200 OK", {"ok": True}
            if route == ("POST", "/shutdown"):
                self._stop.set()
                return "200 OK", {"ok": True}
        except KeyError as exc:
            return "400 Bad Request", {"error": f"missing field {exc}"}
        except Exception as exc:  # a bad request must never kill the service
            return "400 Bad Request", {"error": f"{type(exc).__name__}: {exc}"}
        return "404 Not Found", {"error": f"no route {method} {parsed.path}"}

    def _submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        payloads = [_unb64(x) for x in body.get("jobs", [])]
        # Unpickle so dedupe/cache use the real content address (the same
        # TrialCache key a local run would compute), not the payload hash.
        jobs: List[TrialJob] = [pickle.loads(p) for p in payloads]
        batch = self.state.submit(jobs, payloads=payloads)
        return {"batch": batch, "jobs": len(jobs)}

    def _lease(self, body: Dict[str, Any], now: float) -> Dict[str, Any]:
        worker = str(body.get("worker", "anonymous"))
        lease = self.state.lease(worker, now)
        if lease is None:
            wake = self.state.next_wakeup(now)
            idle = max(0.1, min(2.0, (wake - now) if wake is not None else 1.0))
            return {"lease": None, "idle_s": idle}
        return {
            "lease": {
                "lease": lease.lease_id,
                "job": _b64(
                    lease.payload
                    if lease.payload is not None
                    else pickle.dumps(lease.job, protocol=pickle.HIGHEST_PROTOCOL)
                ),
                "timeout_s": lease.timeout_s,
                "heartbeat_s": lease.heartbeat_s,
            }
        }


async def serve_coordinator(
    host: str = "127.0.0.1", port: int = 8537, **state_kwargs: Any
) -> CoordinatorServer:
    """Start a coordinator service; returns once it is listening."""
    server = CoordinatorServer(host=host, port=port, **state_kwargs)
    await server.start()
    return server


# ---------------------------------------------------------------------------
# Synchronous client side
# ---------------------------------------------------------------------------
class CoordinatorClient:
    """Blocking JSON client for the coordinator service (workers + fabric)."""

    def __init__(self, url: str, timeout_s: float = 30.0):
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported coordinator scheme {parsed.scheme!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8537
        self.timeout_s = timeout_s

    def _call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            blob = json.dumps(body or {}).encode("utf-8")
            conn.request(
                method,
                path,
                body=blob if method == "POST" else None,
                headers={"Content-Type": "application/json"}
                if method == "POST"
                else {},
            )
            response = conn.getresponse()
            data = response.read()
            if response.status >= 400:
                raise RuntimeError(
                    f"coordinator {method} {path} -> {response.status}: "
                    f"{data[:200]!r}"
                )
            return json.loads(data.decode("utf-8"))
        finally:
            conn.close()

    # -- worker-facing -------------------------------------------------
    def lease(self, worker_id: str) -> Dict[str, Any]:
        return self._call("POST", "/lease", {"worker": worker_id})

    def heartbeat(self, worker_id: str, lease_ids: Sequence[int]) -> Dict[str, bool]:
        reply = self._call(
            "POST", "/heartbeat", {"worker": worker_id, "leases": list(lease_ids)}
        )
        return {int(k): v for k, v in reply.get("acks", {}).items()}

    def complete(
        self,
        lease_id: int,
        ok: bool,
        value: Any = None,
        error: Optional[str] = None,
    ) -> str:
        body: Dict[str, Any] = {"lease": lease_id, "ok": ok, "error": error}
        if ok:
            body["value"] = _b64(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            )
        return self._call("POST", "/complete", body).get("disposition", "?")

    # -- submitter-facing ----------------------------------------------
    def submit(self, jobs: Sequence[TrialJob]) -> int:
        payload = [
            _b64(pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL))
            for job in jobs
        ]
        return int(self._call("POST", "/submit", {"jobs": payload})["batch"])

    def results(self, batch: int) -> Optional[List[TrialResult]]:
        reply = self._call("GET", f"/results?batch={batch}")
        if not reply.get("done"):
            return None
        return pickle.loads(_unb64(reply["results"]))

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/stats")

    def shutdown(self) -> None:
        self._call("POST", "/shutdown")


class HttpFabric:
    """Adapter: ``run_jobs``-shaped execution against a remote coordinator.

    Retry/timeout/lease policy lives on the coordinator (it is the one
    accounting attempts fleet-wide); the caller's ``retries``/``timeout_s``
    are ignored here by design.  Any transport failure raises, which the
    runner's fabric hook catches to fall back to the local pool.
    """

    def __init__(self, url: str, poll_s: float = 0.25):
        self.url = url
        self.client = CoordinatorClient(url)
        self.poll_s = poll_s

    def run(
        self,
        jobs: Sequence[TrialJob],
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        cache: Any = None,
    ) -> List[TrialResult]:
        batch = self.client.submit(jobs)
        while True:
            results = self.client.results(batch)
            if results is not None:
                return results
            time.sleep(self.poll_s)

    def describe(self) -> str:
        return f"fabric http://{self.client.host}:{self.client.port}"

    def __repr__(self) -> str:
        return f"HttpFabric({self.url!r})"
