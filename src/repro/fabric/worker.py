"""The worker agent: lease → execute sandboxed → heartbeat → complete.

A worker is deliberately dumb: it holds no sweep state, so killing one at
any instant loses at most the lease it was holding — which the coordinator
reclaims and reassigns, uncharged.  Each job runs in a fresh single-worker
subprocess pool (:func:`repro.runner.pool._run_isolated`), so a trial that
crashes or hangs takes down the sandbox, not the agent: the agent reports
the failure and leases the next job.  A background thread heartbeats every
``lease.heartbeat_s`` while the sandbox runs; a NACKed heartbeat means the
coordinator already gave the job away (we stalled past the TTL), so the
eventual completion is delivered anyway and the coordinator's idempotent
``complete`` either salvages it or counts the duplicate.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from typing import Any, Optional

from ..runner.pool import TrialJob, TrialResult, _run_isolated
from .http import CoordinatorClient

__all__ = ["WorkerAgent", "run_worker"]


class WorkerAgent:
    """One agent process draining leases from a coordinator.

    ``max_jobs`` bounds how many leases to execute (tests, canary runs);
    ``idle_exit_s`` stops the loop after that long with nothing leased
    (lets the EXPERIMENTS recipe's workers exit once the sweep drains).
    """

    def __init__(
        self,
        coordinator: str,
        worker_id: Optional[str] = None,
        max_jobs: Optional[int] = None,
        idle_exit_s: Optional[float] = None,
    ):
        self.client = CoordinatorClient(coordinator)
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.max_jobs = max_jobs
        self.idle_exit_s = idle_exit_s
        self.jobs_done = 0

    # -- one lease -----------------------------------------------------
    def _execute(self, lease: dict) -> None:
        import base64

        payload = base64.b64decode(lease["job"])
        job: TrialJob = pickle.loads(payload)
        lease_id = int(lease["lease"])
        heartbeat_s = float(lease.get("heartbeat_s") or 5.0)
        stop = threading.Event()

        def pump() -> None:
            while not stop.wait(heartbeat_s):
                try:
                    self.client.heartbeat(self.worker_id, [lease_id])
                except Exception:
                    # A missed heartbeat is the coordinator's problem to
                    # notice, not ours to crash on; keep executing.
                    pass

        pacemaker = threading.Thread(target=pump, daemon=True)
        pacemaker.start()
        try:
            outcome: TrialResult = _run_isolated(
                job, payload, lease.get("timeout_s")
            )
        finally:
            stop.set()
            pacemaker.join(timeout=1.0)
        self.client.complete(
            lease_id, outcome.ok, value=outcome.value, error=outcome.error
        )
        self.jobs_done += 1

    # -- the loop ------------------------------------------------------
    def run(self) -> int:
        """Drain leases until told to stop; returns jobs executed."""
        idle_since: Optional[float] = None
        while self.max_jobs is None or self.jobs_done < self.max_jobs:
            try:
                reply = self.client.lease(self.worker_id)
            except Exception:
                # Coordinator unreachable (restarting?): back off and retry.
                time.sleep(1.0)
                continue
            lease = reply.get("lease")
            if lease is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif (
                    self.idle_exit_s is not None
                    and now - idle_since >= self.idle_exit_s
                ):
                    break
                time.sleep(float(reply.get("idle_s") or 0.5))
                continue
            idle_since = None
            self._execute(lease)
        return self.jobs_done


def run_worker(coordinator: str, **kwargs: Any) -> int:
    """Convenience wrapper: build a :class:`WorkerAgent` and drain it."""
    return WorkerAgent(coordinator, **kwargs).run()
