"""Fault-tolerant distributed sweep fabric: coordinator/worker job leasing.

:mod:`repro.runner.pool` stops at one machine's cores.  This package turns
the runner into a multi-host job fabric in the PATHspider
configurator→workers→merger mold: a coordinator leases canonical job
tokens to worker agents, survives their crashes, stalls, and partitions
(lease expiry → reassignment, per-job exponential backoff, poison-job
quarantine), dedupes identical in-flight work by content address, and
merges :class:`~repro.runner.TrialResult` envelopes in submission order —
so a sweep interrupted by killed workers converges to the same bytes as a
clean serial run.

Layers
------
* :mod:`repro.fabric.coordinator` — the pure leasing state machine.
* :mod:`repro.fabric.chaos` — deterministic in-process fleet + chaos plans
  (virtual clock; how the fault paths are tested in tier-1).
* :mod:`repro.fabric.http` — the asyncio HTTP shell (coordinator service,
  synchronous client) for real multi-host runs.
* :mod:`repro.fabric.worker` — the worker agent loop (lease → execute in a
  sandboxed subprocess with wall-clock timeouts → heartbeat → complete).

Enablement mirrors :mod:`repro.cache` (first match wins): an explicit
``fabric=`` argument to :func:`repro.experiments.api.run_experiment`, the
fabric activated by an enclosing :func:`activate` context (how the
``--fabric`` CLI flag plumbs through), or the ``REPRO_FABRIC`` environment
variable holding a spec string.  Specs:

* ``local`` / ``local:N`` — in-process fabric, N simulated workers;
* ``chaos:SEED`` / ``local:N,chaos:SEED`` — same, under the seeded
  :class:`~repro.fabric.chaos.FabricChaosPlan` preset (≥1 kill, ≥1 stall,
  ≥1 dropped and ≥1 duplicated completion);
* ``http://host:port`` — submit batches to a remote coordinator.

Graceful degradation is the contract: no fabric configured → the runner's
local process pool, untouched; a fabric that fails outright → a warning
and the local pool; a partially dead fleet → the coordinator drains it on
the survivors.  The fabric is deliberately *not* part of
:class:`~repro.experiments.api.ExperimentSpec` — where a sweep ran must
never change what it produced.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Any, List, Optional, Sequence

from ..obs.telemetry import Telemetry, TelemetrySnapshot
from ..runner.pool import (
    TrialJob,
    TrialResult,
    resolve_trial_retries,
    resolve_trial_timeout,
    resolve_workers,
)
from .chaos import FabricChaosPlan, run_chaos_fabric
from .coordinator import CoordinatorState, Lease

__all__ = [
    "FABRIC_ENV",
    "FABRIC_CHAOS_ENV",
    "CoordinatorState",
    "Lease",
    "FabricChaosPlan",
    "run_chaos_fabric",
    "InProcessFabric",
    "parse_fabric_spec",
    "resolve_fabric",
    "activate",
    "active_fabric",
]

#: Spec string enabling the fabric for every runner fan-out (see module doc).
FABRIC_ENV = "REPRO_FABRIC"
#: Chaos preset seed applied when the spec itself names no plan.
FABRIC_CHAOS_ENV = "REPRO_FABRIC_CHAOS"


class InProcessFabric:
    """The whole fabric — coordinator plus simulated fleet — in one process.

    This is both the graceful-degradation floor (no remote workers needed)
    and the chaos test bed: ``plan`` injects seeded kills/stalls/drops/
    duplicates while the virtual clock keeps every run deterministic.  One
    ``Telemetry`` registry spans all batches run through this instance, so
    lease/retry/reassignment counters accumulate across an experiment's
    fan-outs and export once at the end.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        plan: Optional[FabricChaosPlan] = None,
        lease_ttl_s: float = 5.0,
        telemetry: Optional[Telemetry] = None,
    ):
        self.workers = workers
        self.plan = plan or FabricChaosPlan()
        self.lease_ttl_s = float(lease_ttl_s)
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(enabled=True, key=("fabric", "local"))
        )

    def run(
        self,
        jobs: Sequence[TrialJob],
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        cache: Any = None,
    ) -> List[TrialResult]:
        """Drain ``jobs`` through the fabric; submission-order envelopes.

        The fabric's own configured worker count wins over the caller's
        (``--fabric local:3`` means 3 simulated workers no matter what the
        pool would have used).  The ambient fabric is masked while jobs
        execute so a job that itself fans out (e.g. a sharded trial) uses
        the plain pool instead of recursing into the fabric.
        """
        count = resolve_workers(workers if self.workers is None else self.workers)
        with _mask():
            return run_chaos_fabric(
                jobs,
                plan=self.plan,
                workers=count,
                lease_ttl_s=self.lease_ttl_s,
                timeout_s=resolve_trial_timeout(timeout_s),
                retries=resolve_trial_retries(retries),
                cache=cache,
                telemetry=self.telemetry,
            )

    # -- introspection -------------------------------------------------
    def snapshot(self) -> TelemetrySnapshot:
        return self.telemetry.snapshot()

    def describe(self) -> str:
        snap = self.telemetry.snapshot()
        stats = {
            name.split("fabric.", 1)[1]: int(value)
            for name, value in snap.counters
            if name.startswith("fabric.")
        }
        chaos = "" if self.plan.is_noop() else f", chaos seed {self.plan.seed}"
        return (
            f"fabric local ({self.workers or 'auto'} worker(s){chaos}): "
            f"{stats.get('jobs_completed', 0)} job(s), "
            f"{stats.get('leases_issued', 0)} lease(s), "
            f"{stats.get('reassignments', 0)} reassignment(s), "
            f"{stats.get('retries', 0)} retry(ies), "
            f"{stats.get('quarantined', 0)} quarantined, "
            f"{stats.get('duplicate_completions', 0)} duplicate completion(s)"
        )

    def __repr__(self) -> str:
        return f"InProcessFabric(workers={self.workers!r}, plan={self.plan!r})"


def demo_trial(seed: int, spins: int = 5000) -> dict:
    """A tiny deterministic stand-in trial for smoke-testing the fabric.

    Module-level (not in ``__main__``) so its pickle resolves by import
    path in worker agents running as separate processes.
    """
    acc = seed & 0xFFFFFFFF
    for _ in range(spins):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
    return {"seed": seed, "value": acc}


def demo_jobs(count: int, base_seed: int = 0) -> List[TrialJob]:
    """``count`` demo trials tagged ``("demo", seed)`` in seed order."""
    return [
        TrialJob(demo_trial, (base_seed + i,), tag=("demo", base_seed + i))
        for i in range(count)
    ]


# ---------------------------------------------------------------------------
# Resolution and ambient activation (mirrors repro.cache)
# ---------------------------------------------------------------------------
_ACTIVE: List[Optional[Any]] = []


def active_fabric() -> Optional[Any]:
    """The innermost fabric activated via :func:`activate`, or ``None``.

    A masked slot (``None`` pushed by :func:`_mask`) hides any outer
    fabric, which is how the fabric keeps its own job executions from
    re-entering it.
    """
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate(fabric: Optional[Any]):
    """Make ``fabric`` ambient for every runner fan-out inside the block.

    ``activate(None)`` is a transparent no-op so callers can resolve once
    and wrap unconditionally — exactly like :func:`repro.cache.activate`.
    """
    if fabric is None:
        yield None
        return
    _ACTIVE.append(fabric)
    try:
        yield fabric
    finally:
        _ACTIVE.pop()


@contextmanager
def _mask():
    """Hide the ambient fabric (jobs executing inside it must not recurse)."""
    if not _ACTIVE:
        yield
        return
    _ACTIVE.append(None)
    try:
        yield
    finally:
        _ACTIVE.pop()


def parse_fabric_spec(spec: str, chaos_seed: Optional[int] = None):
    """Turn a ``--fabric`` / ``REPRO_FABRIC`` spec string into a fabric.

    Comma-separated clauses: ``local``, ``local:N``, ``chaos:SEED``, or an
    ``http(s)://`` coordinator URL (exclusive of the others).  An explicit
    ``chaos_seed`` argument (the ``--fabric-chaos`` flag) applies when the
    spec itself names no chaos clause.  Raises ``ValueError`` on garbage —
    a misspelled fabric silently running serial would be a silent lie.
    """
    spec = spec.strip()
    if not spec:
        raise ValueError("empty fabric spec")
    if spec.startswith(("http://", "https://")):
        from .http import HttpFabric  # late: keep asyncio out of the fast path

        return HttpFabric(spec)
    workers: Optional[int] = None
    plan: Optional[FabricChaosPlan] = None
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        head, _, arg = clause.partition(":")
        head = head.lower()
        if head == "local":
            workers = int(arg) if arg else None
        elif head == "chaos":
            plan = FabricChaosPlan.preset(int(arg) if arg else 0)
        else:
            raise ValueError(
                f"unknown fabric spec clause {clause!r} "
                "(expected local[:N], chaos[:SEED], or an http(s):// URL)"
            )
    if plan is None and chaos_seed is not None:
        plan = FabricChaosPlan.preset(chaos_seed)
    return InProcessFabric(workers=workers, plan=plan)


def resolve_fabric(fabric: Any = None, chaos_seed: Optional[int] = None):
    """Turn a fabric request into a fabric instance or ``None``.

    ``fabric`` may be a fabric object (used as-is), a spec string,
    ``False`` (forced off), or ``None`` — which defers to the ambient
    :func:`activate` context and then the ``REPRO_FABRIC`` environment
    variable.  ``chaos_seed`` defaults from ``REPRO_FABRIC_CHAOS``.
    """
    if fabric is False:
        return None
    if chaos_seed is None:
        raw = os.environ.get(FABRIC_CHAOS_ENV, "").strip()
        if raw:
            try:
                chaos_seed = int(raw)
            except ValueError:
                warnings.warn(f"ignoring non-integer {FABRIC_CHAOS_ENV}={raw!r}")
    if isinstance(fabric, str):
        return parse_fabric_spec(fabric, chaos_seed)
    if fabric is not None:
        return fabric
    if _ACTIVE:
        # The top of the stack wins even when it is a mask slot (None):
        # falling through to the environment here would let a fabric's own
        # job executions re-enter the fabric.
        return _ACTIVE[-1]
    env = os.environ.get(FABRIC_ENV, "").strip()
    if env:
        try:
            return parse_fabric_spec(env, chaos_seed)
        except ValueError as exc:
            warnings.warn(f"ignoring bad {FABRIC_ENV}: {exc}")
    return None
