"""repro.obs — unified telemetry: counters, spans, profiling, export.

The observability layer for the whole reproduction.  Components write
into a :class:`~repro.obs.telemetry.Telemetry` registry (or its no-op
null twin when disabled); per-trial :class:`TelemetrySnapshot` captures
travel inside :class:`~repro.runner.TrialResult` envelopes, merge
deterministically across pool workers and fleet shards, and export to
JSON / Chrome ``trace_event`` files via :mod:`repro.obs.export`.

Quick start::

    from repro.obs import Telemetry

    tele = Telemetry(enabled=True, key=("demo",))
    sim = Simulator(seed=0, telemetry=tele)
    ... run ...
    snap = tele.snapshot()

``python -m repro <experiment> --telemetry trace.json`` wires this up
end-to-end; ``python -m repro.obs validate trace.json`` schema-checks a
capture and ``python -m repro.obs summary trace.json`` prints the ASCII
summary.
"""

from .telemetry import (
    DEFAULT_TIME_BUCKETS_S,
    NULL_TELEMETRY,
    Counter,
    EventRecord,
    Gauge,
    Histogram,
    NullTelemetry,
    Scope,
    SpanHandle,
    SpanRecord,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
)
from .export import (
    SCHEMA,
    build_payload,
    chrome_trace_events,
    collect_snapshots,
    load_payload,
    snapshot_from_jsonable,
    snapshot_to_jsonable,
    validate_payload,
    write_payload,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Scope",
    "SpanHandle",
    "SpanRecord",
    "EventRecord",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetrySnapshot",
    "merge_snapshots",
    "DEFAULT_TIME_BUCKETS_S",
    "SCHEMA",
    "build_payload",
    "chrome_trace_events",
    "collect_snapshots",
    "load_payload",
    "snapshot_from_jsonable",
    "snapshot_to_jsonable",
    "validate_payload",
    "write_payload",
]
