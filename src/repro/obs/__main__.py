"""Telemetry file utilities: schema validation and ASCII summaries.

Usage::

    python -m repro.obs validate trace.json           # exit 0 iff valid
    python -m repro.obs summary trace.json --top 15   # ASCII summary

``validate`` is the schema gate CI runs against the ``--telemetry``
artifact; ``summary`` renders the same view ``--telemetry-summary``
prints at the end of an experiment run.
"""

from __future__ import annotations

import argparse
import sys

from .export import load_payload, snapshot_from_jsonable, validate_payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate or summarize an exported telemetry file.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser("validate", help="schema-check a telemetry JSON file")
    validate.add_argument("path")
    summary = sub.add_parser("summary", help="print an ASCII telemetry summary")
    summary.add_argument("path")
    summary.add_argument(
        "--top", type=int, default=10, metavar="N", help="rows per table (default 10)"
    )
    args = parser.parse_args(argv)

    try:
        payload = load_payload(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2

    if args.command == "validate":
        problems = validate_payload(payload)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(f"{args.path}: INVALID ({len(problems)} problem(s))")
            return 1
        merged = payload.get("merged", {})
        print(
            f"{args.path}: ok — {payload.get('snapshot_count', 0)} snapshot(s), "
            f"{len(merged.get('counters', {}))} counters, "
            f"{len(merged.get('spans', []))} spans, "
            f"{len(payload.get('traceEvents', []))} trace events"
        )
        return 0

    # summary
    from ..analysis.reporting import telemetry_summary

    snap = snapshot_from_jsonable(payload.get("merged", {}))
    try:
        print(telemetry_summary(snap, top_n=args.top))
    except BrokenPipeError:
        # Summaries get piped into `head`; a closed pipe is not an error.
        sys.stderr.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
