"""Serialize, validate, and collect :class:`TelemetrySnapshot` captures.

One ``--telemetry PATH`` file serves three readers at once:

* machines parse the ``"merged"``/``"snapshots"`` sections (schema id
  ``repro.obs/v1``, checked by :func:`validate_payload` and by the
  ``python -m repro.obs validate`` CLI used in CI),
* ``chrome://tracing`` / Perfetto load the same file directly — the
  top-level ``"traceEvents"`` key is the Chrome trace-event format, and
  Chrome ignores the extra keys,
* humans run ``python -m repro.obs summary PATH`` for the ASCII view
  rendered by :func:`repro.analysis.reporting.telemetry_summary`.

Sim-time seconds map to trace microseconds, so one simulated second reads
as one millisecond-scale block on the trace timeline.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, Iterable, List, Optional

from .telemetry import EventRecord, SpanRecord, TelemetrySnapshot, merge_snapshots

__all__ = [
    "SCHEMA",
    "snapshot_to_jsonable",
    "snapshot_from_jsonable",
    "chrome_trace_events",
    "build_payload",
    "write_payload",
    "load_payload",
    "validate_payload",
    "collect_snapshots",
]

#: Schema identifier stamped into every exported payload.
SCHEMA = "repro.obs/v1"

#: Microseconds per simulated second in the Chrome trace timeline.
_TRACE_US_PER_SIM_S = 1_000_000.0


def _attrs_to_dict(attrs) -> Dict[str, Any]:
    return {k: v for k, v in attrs}


def snapshot_to_jsonable(snap: TelemetrySnapshot) -> Dict[str, Any]:
    """A JSON-ready dict mirroring the snapshot's structure."""
    return {
        "key": list(snap.key),
        "counters": {name: value for name, value in snap.counters},
        "nondet_counters": {name: value for name, value in snap.nondet_counters},
        "gauges": {
            name: {"value": value, "high_water": high}
            for name, value, high in snap.gauges
        },
        "nondet_gauges": {
            name: {"value": value, "high_water": high}
            for name, value, high in snap.nondet_gauges
        },
        "histograms": {
            name: {
                "bounds": list(bounds),
                "counts": list(counts),
                "sum": total,
                "count": count,
            }
            for name, bounds, counts, total, count in snap.histograms
        },
        "spans": [
            {
                "name": s.name,
                "start_s": s.start_s,
                "end_s": s.end_s,
                "status": s.status,
                "attrs": _attrs_to_dict(s.attrs),
            }
            for s in snap.spans
        ],
        "events": [
            {"name": e.name, "time_s": e.time_s, "attrs": _attrs_to_dict(e.attrs)}
            for e in snap.events
        ],
        "spans_dropped": snap.spans_dropped,
        "events_dropped": snap.events_dropped,
    }


def snapshot_from_jsonable(data: Dict[str, Any]) -> TelemetrySnapshot:
    """Rebuild a snapshot from :func:`snapshot_to_jsonable` output.

    JSON turns tuple keys into lists; the round-tripped ``key`` is a tuple
    of the JSON-preserved elements, which keeps replica-dedup behaviour but
    not tuple-vs-list identity with the original — compare snapshots before
    export, not across a JSON round trip.
    """
    return TelemetrySnapshot(
        key=tuple(data.get("key", ())),
        counters=tuple(sorted(data.get("counters", {}).items())),
        nondet_counters=tuple(sorted(data.get("nondet_counters", {}).items())),
        gauges=tuple(
            sorted(
                (name, g["value"], g["high_water"])
                for name, g in data.get("gauges", {}).items()
            )
        ),
        nondet_gauges=tuple(
            sorted(
                (name, g["value"], g["high_water"])
                for name, g in data.get("nondet_gauges", {}).items()
            )
        ),
        histograms=tuple(
            sorted(
                (
                    name,
                    tuple(h["bounds"]),
                    tuple(h["counts"]),
                    h["sum"],
                    h["count"],
                )
                for name, h in data.get("histograms", {}).items()
            )
        ),
        spans=tuple(
            SpanRecord(
                name=s["name"],
                start_s=s["start_s"],
                end_s=s["end_s"],
                status=s["status"],
                attrs=tuple(sorted(s.get("attrs", {}).items())),
            )
            for s in data.get("spans", ())
        ),
        events=tuple(
            EventRecord(
                name=e["name"],
                time_s=e["time_s"],
                attrs=tuple(sorted(e.get("attrs", {}).items())),
            )
            for e in data.get("events", ())
        ),
        spans_dropped=data.get("spans_dropped", 0),
        events_dropped=data.get("events_dropped", 0),
    )


def chrome_trace_events(snap: TelemetrySnapshot) -> List[Dict[str, Any]]:
    """Chrome ``trace_event`` list: spans as complete ("X") slices, events
    as instants ("i").  Span names double as the track (tid) so each
    instrumented component gets its own row in the viewer.
    """
    trace: List[Dict[str, Any]] = []
    for span in snap.spans:
        end_s = span.end_s if span.end_s is not None else span.start_s
        trace.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_s * _TRACE_US_PER_SIM_S,
                "dur": (end_s - span.start_s) * _TRACE_US_PER_SIM_S,
                "pid": 1,
                "tid": span.name.rsplit(".", 1)[0],
                "args": dict(span.attrs, status=span.status),
            }
        )
    for event in snap.events:
        trace.append(
            {
                "name": event.name,
                "ph": "i",
                "ts": event.time_s * _TRACE_US_PER_SIM_S,
                "pid": 1,
                "tid": event.name.rsplit(".", 1)[0],
                "s": "g",
                "args": dict(event.attrs),
            }
        )
    trace.sort(key=lambda entry: entry["ts"])
    return trace


def build_payload(
    snapshots: Iterable[Optional[TelemetrySnapshot]],
    deterministic: bool = False,
) -> Dict[str, Any]:
    """The full export payload: schema id, per-capture snapshots, the
    deterministic merge, and the Chrome trace of the merge.

    ``deterministic=True`` projects every snapshot through
    :meth:`TelemetrySnapshot.deterministic` first, dropping wall-clock
    profiling instruments — the projection byte-equality gates compare
    across process layouts, worker counts, and sweep fabrics.
    """
    kept = [s for s in snapshots if s is not None]
    if deterministic:
        kept = [s.deterministic() for s in kept]
    merged = merge_snapshots(kept)
    return {
        "schema": SCHEMA,
        "snapshot_count": len(kept),
        "snapshots": [snapshot_to_jsonable(s) for s in kept],
        "merged": snapshot_to_jsonable(merged),
        "traceEvents": chrome_trace_events(merged),
    }


def write_payload(
    path: str,
    snapshots: Iterable[Optional[TelemetrySnapshot]],
    deterministic: bool = False,
) -> Dict[str, Any]:
    """Build the payload and write it to ``path``; returns the payload."""
    payload = build_payload(snapshots, deterministic=deterministic)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_payload(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _check_snapshot(data: Any, where: str, problems: List[str]) -> None:
    if not isinstance(data, dict):
        problems.append(f"{where}: not an object")
        return
    for section, kind in (
        ("counters", dict),
        ("nondet_counters", dict),
        ("gauges", dict),
        ("histograms", dict),
        ("spans", list),
        ("events", list),
    ):
        if not isinstance(data.get(section), kind):
            problems.append(f"{where}.{section}: missing or not a {kind.__name__}")
    for name, value in (data.get("counters") or {}).items():
        if not isinstance(value, (int, float)):
            problems.append(f"{where}.counters[{name!r}]: not a number")
    for name, hist in (data.get("histograms") or {}).items():
        if not isinstance(hist, dict) or "bounds" not in hist or "counts" not in hist:
            problems.append(f"{where}.histograms[{name!r}]: missing bounds/counts")
            continue
        if len(hist["counts"]) != len(hist["bounds"]) + 1:
            problems.append(
                f"{where}.histograms[{name!r}]: counts must have len(bounds)+1 entries"
            )
        if sum(hist["counts"]) != hist.get("count"):
            problems.append(
                f"{where}.histograms[{name!r}]: bucket counts do not sum to count"
            )
    for i, span in enumerate(data.get("spans") or []):
        if not isinstance(span, dict):
            problems.append(f"{where}.spans[{i}]: not an object")
            continue
        for req in ("name", "start_s", "status"):
            if req not in span:
                problems.append(f"{where}.spans[{i}]: missing {req!r}")
        end = span.get("end_s")
        if end is not None and "start_s" in span and end < span["start_s"]:
            problems.append(f"{where}.spans[{i}]: end_s before start_s")
    for i, event in enumerate(data.get("events") or []):
        if not isinstance(event, dict) or "name" not in event or "time_s" not in event:
            problems.append(f"{where}.events[{i}]: missing name/time_s")


def validate_payload(payload: Any) -> List[str]:
    """Structural schema check; returns a list of problems (empty = valid).

    Hand-rolled rather than jsonschema-based so validation needs nothing
    outside the standard library (the container bakes in no extra deps).
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload: not a JSON object"]
    if payload.get("schema") != SCHEMA:
        problems.append(
            f"schema: expected {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("snapshot_count"), int):
        problems.append("snapshot_count: missing or not an integer")
    snapshots = payload.get("snapshots")
    if not isinstance(snapshots, list):
        problems.append("snapshots: missing or not a list")
    else:
        if isinstance(payload.get("snapshot_count"), int) and len(
            snapshots
        ) != payload["snapshot_count"]:
            problems.append("snapshot_count: does not match len(snapshots)")
        for i, snap in enumerate(snapshots):
            _check_snapshot(snap, f"snapshots[{i}]", problems)
    if "merged" not in payload:
        problems.append("merged: missing")
    else:
        _check_snapshot(payload["merged"], "merged", problems)
    trace = payload.get("traceEvents")
    if not isinstance(trace, list):
        problems.append("traceEvents: missing or not a list")
    else:
        for i, entry in enumerate(trace):
            if not isinstance(entry, dict) or "ph" not in entry or "ts" not in entry:
                problems.append(f"traceEvents[{i}]: missing ph/ts")
                break
    return problems


def collect_snapshots(obj: Any, _depth: int = 0) -> List[TelemetrySnapshot]:
    """Recursively pull every :class:`TelemetrySnapshot` out of a result.

    Experiment results are nested dataclasses/dicts/sequences; walking them
    generically means the ``--telemetry`` flag works for any experiment
    whose result retains its trials, with no per-experiment export code.
    Order is the natural traversal order (field order, then item order),
    which is deterministic because the underlying result merge is.
    """
    found: List[TelemetrySnapshot] = []
    if _depth > 12 or obj is None or isinstance(obj, (str, bytes, int, float, bool)):
        return found
    if isinstance(obj, TelemetrySnapshot):
        return [obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            found.extend(collect_snapshots(getattr(obj, f.name), _depth + 1))
        return found
    if isinstance(obj, dict):
        for value in obj.values():
            found.extend(collect_snapshots(value, _depth + 1))
        return found
    if isinstance(obj, (list, tuple)):
        for item in obj:
            found.extend(collect_snapshots(item, _depth + 1))
        return found
    return found
