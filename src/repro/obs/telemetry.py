"""Unified telemetry: counters, gauges, histograms, spans, and events.

This module is the core of the :mod:`repro.obs` subsystem.  It provides a
:class:`Telemetry` registry that simulation components write into and an
immutable :class:`TelemetrySnapshot` that travels inside the existing
:class:`~repro.runner.TrialResult` envelopes, so per-trial observations
survive the process-pool and fleet-shard fan-out and can be merged back
deterministically (same bit-for-bit discipline as the metric merges).

Design constraints, in order of importance:

1. **The disabled path is free.**  ``Simulator`` defaults to the shared
   :data:`NULL_TELEMETRY` singleton; components cache their instruments at
   construction time, so a disabled run pays one no-op method call on rare
   paths and *nothing* on the engine hot loop (the engine checks
   ``telemetry.enabled`` once per ``run()``, not per event).  The
   ``telemetry_overhead`` micro-benchmark in ``benchmarks/`` pins this.
2. **Determinism.**  Instruments and span/event timestamps use *simulated*
   time and never consume RNG or schedule events, so enabling telemetry
   cannot perturb a run.  Wall-clock measurements (engine profiling) are
   flagged ``deterministic=False`` and kept in a separate snapshot field so
   bit-equality tests can compare :meth:`TelemetrySnapshot.deterministic`
   projections across process layouts.
3. **Mergeability.**  Snapshots are frozen, picklable, and merge by simple
   algebra: counters and histograms sum, gauges take the high-water max,
   spans/events concatenate in merge order.  Replica snapshots (fleet
   shards re-simulating the same coupled world) deduplicate by ``key``.

See :mod:`repro.obs.export` for JSON / Chrome ``trace_event`` output.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SpanHandle",
    "SpanRecord",
    "EventRecord",
    "Telemetry",
    "Scope",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetrySnapshot",
    "merge_snapshots",
    "DEFAULT_TIME_BUCKETS_S",
]

#: Fixed bucket upper bounds (seconds) for latency-style histograms.  Fixed
#: buckets — not adaptive ones — are what make histograms mergeable across
#: workers without resampling.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0,
)

#: Keep at most this many closed spans / events per registry; overflow is
#: counted, not silently dropped.  A 300 s town trial produces a few hundred
#: spans, so the cap only matters for runaway instrumentation.
DEFAULT_MAX_SPANS = 50_000
DEFAULT_MAX_EVENTS = 50_000

Attrs = Tuple[Tuple[str, Any], ...]


def _freeze_attrs(attrs: Dict[str, Any]) -> Attrs:
    """Sort and freeze span/event attributes into a hashable tuple."""
    return tuple(sorted(attrs.items()))


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "deterministic")

    def __init__(self, name: str, deterministic: bool = True):
        self.name = name
        self.value = 0.0
        self.deterministic = deterministic

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Gauge:
    """A point-in-time value that also tracks its high-water mark."""

    __slots__ = ("name", "value", "high_water", "deterministic")

    def __init__(self, name: str, deterministic: bool = True):
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        self.deterministic = deterministic

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def set_max(self, value: float) -> None:
        """Raise the high-water mark without touching the last value."""
        if value > self.high_water:
            self.high_water = value


class Histogram:
    """A fixed-bucket histogram (bucket i counts values <= bounds[i]).

    ``counts`` has ``len(bounds) + 1`` entries; the last is the overflow
    bucket.  ``sum``/``count`` allow mean reconstruction after merging.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "deterministic")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
        deterministic: bool = True,
    ):
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.deterministic = deterministic

    def observe(self, value: float) -> None:
        # bisect_left gives Prometheus "le" semantics: a value exactly on a
        # bound lands in that bound's bucket, not the next one.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _NullInstrument:
    """No-op stand-in for every instrument kind on the disabled path."""

    __slots__ = ()

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


# ---------------------------------------------------------------------------
# Spans and events
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SpanRecord:
    """An immutable, picklable record of one (possibly still open) span."""

    name: str
    start_s: float
    end_s: Optional[float]
    status: str
    attrs: Attrs = ()

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 for spans still open at snapshot time."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class EventRecord:
    """An instantaneous, sim-time-stamped structured event."""

    name: str
    time_s: float
    attrs: Attrs = ()

    def attr(self, key: str, default: Any = None) -> Any:
        for k, v in self.attrs:
            if k == key:
                return v
        return default


class SpanHandle:
    """A live span: created by ``begin_span``/``span``, closed by ``end``.

    The handle doubles as a context manager — ``with tele.span("join")``
    ends with status ``"ok"`` (or ``"error"`` if the block raises).  The
    join pipeline is callback-based, so most instrumentation holds the
    handle and calls :meth:`end` explicitly; ``end`` is idempotent.
    """

    __slots__ = ("_tele", "_seq", "name", "start_s", "_attrs", "_ended")

    def __init__(self, tele: "Telemetry", seq: int, name: str, start_s: float, attrs: Dict[str, Any]):
        self._tele = tele
        self._seq = seq
        self.name = name
        self.start_s = start_s
        self._attrs = attrs
        self._ended = False

    @property
    def ended(self) -> bool:
        return self._ended

    def end(self, status: str = "ok", **attrs: Any) -> None:
        """Close the span (idempotent); late ``attrs`` merge over early ones."""
        if self._ended:
            return
        self._ended = True
        if attrs:
            self._attrs.update(attrs)
        self._tele._finish_span(self, status)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end("error" if exc_type is not None else "ok")


class _NullSpan:
    """No-op span handle returned by the disabled path."""

    __slots__ = ()
    ended = False

    def end(self, status: str = "ok", **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class Telemetry:
    """The root registry: instruments by name, plus span/event streams.

    ``clock`` is any object with a ``now`` attribute (the
    :class:`~repro.sim.engine.Simulator`); until one is bound via
    :meth:`bind_clock`, timestamps read 0.0.  ``key`` identifies the capture
    (e.g. ``("town", label, seed)``) and drives replica-deduplication when
    snapshots from shards that re-simulated the same world are merged.
    """

    def __init__(self, enabled: bool = True, key: Tuple = ()):
        self.enabled = enabled
        self.key = tuple(key)
        self._clock: Optional[Any] = None
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: List[Tuple[int, SpanRecord]] = []
        self._open_spans: List[SpanHandle] = []
        self._events: List[EventRecord] = []
        self._span_seq = 0
        self.spans_dropped = 0
        self.events_dropped = 0
        self.max_spans = DEFAULT_MAX_SPANS
        self.max_events = DEFAULT_MAX_EVENTS

    # -- clock ---------------------------------------------------------
    def bind_clock(self, clock: Any) -> None:
        """Bind a sim-time source (anything with a float ``now``)."""
        self._clock = clock

    def now(self) -> float:
        clock = self._clock
        return 0.0 if clock is None else clock.now

    # -- instruments ---------------------------------------------------
    def counter(self, name: str, deterministic: bool = True):
        """Get or create the named counter (null when disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, deterministic)
        return inst

    def gauge(self, name: str, deterministic: bool = True):
        """Get or create the named gauge (null when disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, deterministic)
        return inst

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
        deterministic: bool = True,
    ):
        """Get or create the named fixed-bucket histogram (null when disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, bounds, deterministic)
        return inst

    # -- spans / events ------------------------------------------------
    def begin_span(self, name: str, **attrs: Any):
        """Open a span at the current sim time; close it via ``handle.end()``."""
        if not self.enabled:
            return NULL_SPAN
        seq = self._span_seq
        self._span_seq = seq + 1
        handle = SpanHandle(self, seq, name, self.now(), attrs)
        self._open_spans.append(handle)
        return handle

    #: ``span`` is ``begin_span`` under a context-manager-friendly name.
    span = begin_span

    def _finish_span(self, handle: SpanHandle, status: str) -> None:
        self._open_spans.remove(handle)
        if len(self._spans) >= self.max_spans:
            self.spans_dropped += 1
            return
        self._spans.append(
            (
                handle._seq,
                SpanRecord(
                    name=handle.name,
                    start_s=handle.start_s,
                    end_s=self.now(),
                    status=status,
                    attrs=_freeze_attrs(handle._attrs),
                ),
            )
        )

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous sim-time-stamped event."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self.events_dropped += 1
            return
        self._events.append(EventRecord(name, self.now(), _freeze_attrs(attrs)))

    # -- scoping -------------------------------------------------------
    def scope(self, prefix: str) -> "Scope":
        """A view that prefixes every instrument/span/event name."""
        return Scope(self, prefix + ".")

    # -- capture -------------------------------------------------------
    def snapshot(self, key: Optional[Tuple] = None) -> "TelemetrySnapshot":
        """Freeze the current state into an immutable, picklable snapshot.

        Spans still open (joins in flight at the end of a trial) appear
        with ``status="open"`` and ``end_s=None`` so pipeline-phase counts
        reconcile with :class:`~repro.sim.metrics.JoinLog` totals, whose
        ``incomplete`` bucket counts exactly those attempts.
        """
        spans = list(self._spans)
        for handle in self._open_spans:
            spans.append(
                (
                    handle._seq,
                    SpanRecord(
                        name=handle.name,
                        start_s=handle.start_s,
                        end_s=None,
                        status="open",
                        attrs=_freeze_attrs(handle._attrs),
                    ),
                )
            )
        spans.sort(key=lambda pair: pair[0])
        return TelemetrySnapshot(
            key=tuple(key) if key is not None else self.key,
            counters=tuple(
                sorted(
                    (c.name, c.value)
                    for c in self._counters.values()
                    if c.deterministic
                )
            ),
            nondet_counters=tuple(
                sorted(
                    (c.name, c.value)
                    for c in self._counters.values()
                    if not c.deterministic
                )
            ),
            gauges=tuple(
                sorted(
                    (g.name, g.value, g.high_water)
                    for g in self._gauges.values()
                    if g.deterministic
                )
            ),
            nondet_gauges=tuple(
                sorted(
                    (g.name, g.value, g.high_water)
                    for g in self._gauges.values()
                    if not g.deterministic
                )
            ),
            histograms=tuple(
                sorted(
                    (h.name, h.bounds, tuple(h.counts), h.sum, h.count)
                    for h in self._histograms.values()
                )
            ),
            spans=tuple(record for _, record in spans),
            events=tuple(self._events),
            spans_dropped=self.spans_dropped,
            events_dropped=self.events_dropped,
        )


class Scope:
    """A prefixing view onto a :class:`Telemetry` registry.

    Scopes are cheap and stateless; nesting concatenates prefixes
    (``tele.scope("veh0").scope("dhcp")`` writes ``veh0.dhcp.*``).  The
    per-vehicle fleet capture relies on this: every shard re-simulates the
    same coupled world, and a vehicle's telemetry is exactly the
    ``"veh{i}."``-prefixed slice of the global registry (see
    :meth:`TelemetrySnapshot.scoped`).
    """

    __slots__ = ("_tele", "_prefix")

    def __init__(self, tele: Telemetry, prefix: str):
        self._tele = tele
        self._prefix = prefix

    @property
    def enabled(self) -> bool:
        return self._tele.enabled

    def now(self) -> float:
        return self._tele.now()

    def counter(self, name: str, deterministic: bool = True):
        return self._tele.counter(self._prefix + name, deterministic)

    def gauge(self, name: str, deterministic: bool = True):
        return self._tele.gauge(self._prefix + name, deterministic)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_TIME_BUCKETS_S,
        deterministic: bool = True,
    ):
        return self._tele.histogram(self._prefix + name, bounds, deterministic)

    def begin_span(self, name: str, **attrs: Any):
        return self._tele.begin_span(self._prefix + name, **attrs)

    span = begin_span

    def event(self, name: str, **attrs: Any) -> None:
        self._tele.event(self._prefix + name, **attrs)

    def scope(self, prefix: str) -> "Scope":
        return Scope(self._tele, self._prefix + prefix + ".")


class NullTelemetry:
    """The shared disabled registry: every operation is a no-op.

    ``scope()`` returns ``self`` and the instrument getters return the
    shared null instrument, so components written against the real API pay
    a single no-op attribute lookup at construction and nothing after.
    """

    __slots__ = ()
    enabled = False
    key: Tuple = ()

    def bind_clock(self, clock: Any) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def counter(self, name: str, deterministic: bool = True):
        return NULL_INSTRUMENT

    def gauge(self, name: str, deterministic: bool = True):
        return NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = (), deterministic: bool = True):
        return NULL_INSTRUMENT

    def begin_span(self, name: str, **attrs: Any):
        return NULL_SPAN

    span = begin_span

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def scope(self, prefix: str) -> "NullTelemetry":
        return self

    def snapshot(self, key: Optional[Tuple] = None) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TelemetrySnapshot:
    """Frozen, picklable capture of a registry — the transport unit.

    Deterministic instruments (sim-time based) are separated from
    nondeterministic ones (wall-clock profiling) so equality tests can
    compare the :meth:`deterministic` projection across process layouts
    while still shipping profiling data in the same envelope.
    """

    key: Tuple = ()
    counters: Tuple[Tuple[str, float], ...] = ()
    nondet_counters: Tuple[Tuple[str, float], ...] = ()
    gauges: Tuple[Tuple[str, float, float], ...] = ()
    nondet_gauges: Tuple[Tuple[str, float, float], ...] = ()
    histograms: Tuple[Tuple[str, Tuple[float, ...], Tuple[int, ...], float, int], ...] = ()
    spans: Tuple[SpanRecord, ...] = ()
    events: Tuple[EventRecord, ...] = ()
    spans_dropped: int = 0
    events_dropped: int = 0

    # -- lookups -------------------------------------------------------
    def counter_value(self, name: str, default: float = 0.0) -> float:
        for key, value in self.counters:
            if key == name:
                return value
        for key, value in self.nondet_counters:
            if key == name:
                return value
        return default

    def gauge_value(self, name: str) -> Optional[Tuple[float, float]]:
        """``(value, high_water)`` for the named gauge, or ``None``."""
        for key, value, high in self.gauges + self.nondet_gauges:
            if key == name:
                return (value, high)
        return None

    def spans_named(self, name: str) -> Tuple[SpanRecord, ...]:
        return tuple(s for s in self.spans if s.name == name)

    # -- projections ---------------------------------------------------
    def deterministic(self) -> "TelemetrySnapshot":
        """Drop wall-clock instruments; what bit-equality tests compare."""
        return replace(self, nondet_counters=(), nondet_gauges=())

    def scoped(self, prefix: str) -> "TelemetrySnapshot":
        """The slice whose names start with ``prefix`` (names kept intact).

        The prefix should include the trailing dot (``"veh1."``), otherwise
        ``"veh1"`` would also capture ``"veh10.*"``.
        """
        return TelemetrySnapshot(
            key=self.key + (prefix,),
            counters=tuple(c for c in self.counters if c[0].startswith(prefix)),
            nondet_counters=tuple(
                c for c in self.nondet_counters if c[0].startswith(prefix)
            ),
            gauges=tuple(g for g in self.gauges if g[0].startswith(prefix)),
            nondet_gauges=tuple(
                g for g in self.nondet_gauges if g[0].startswith(prefix)
            ),
            histograms=tuple(
                h for h in self.histograms if h[0].startswith(prefix)
            ),
            spans=tuple(s for s in self.spans if s.name.startswith(prefix)),
            events=tuple(e for e in self.events if e.name.startswith(prefix)),
            spans_dropped=self.spans_dropped,
            events_dropped=self.events_dropped,
        )


def merge_snapshots(
    snapshots: Iterable[Optional[TelemetrySnapshot]],
    key: Tuple = ("merged",),
) -> TelemetrySnapshot:
    """Deterministically merge snapshots into one.

    The merge algebra mirrors the runner's result discipline: inputs are
    taken in submission order (``None`` entries — disabled captures — are
    skipped), counters and histogram buckets sum, gauges keep the maximum,
    and spans/events concatenate in input order.  Snapshots sharing a
    non-empty ``key`` are *replicas* (fleet shards re-simulate the same
    coupled world); only the first replica contributes, which is what makes
    the sharded merge bit-identical to the single-process capture.
    """
    counters: Dict[str, float] = {}
    nondet_counters: Dict[str, float] = {}
    gauges: Dict[str, Tuple[float, float]] = {}
    nondet_gauges: Dict[str, Tuple[float, float]] = {}
    histograms: Dict[str, Tuple[Tuple[float, ...], List[int], float, int]] = {}
    spans: List[SpanRecord] = []
    events: List[EventRecord] = []
    spans_dropped = 0
    events_dropped = 0
    seen_keys = set()
    for snap in snapshots:
        if snap is None:
            continue
        if snap.key:
            if snap.key in seen_keys:
                continue
            seen_keys.add(snap.key)
        for name, value in snap.counters:
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snap.nondet_counters:
            nondet_counters[name] = nondet_counters.get(name, 0.0) + value
        for name, value, high in snap.gauges:
            old = gauges.get(name)
            gauges[name] = (
                (value, high)
                if old is None
                else (max(old[0], value), max(old[1], high))
            )
        for name, value, high in snap.nondet_gauges:
            old = nondet_gauges.get(name)
            nondet_gauges[name] = (
                (value, high)
                if old is None
                else (max(old[0], value), max(old[1], high))
            )
        for name, bounds, counts, total, count in snap.histograms:
            old = histograms.get(name)
            if old is None:
                histograms[name] = (bounds, list(counts), total, count)
            else:
                if old[0] != bounds:
                    raise ValueError(
                        f"histogram {name!r} has mismatched bucket bounds"
                    )
                merged = [a + b for a, b in zip(old[1], counts)]
                histograms[name] = (bounds, merged, old[2] + total, old[3] + count)
        spans.extend(snap.spans)
        events.extend(snap.events)
        spans_dropped += snap.spans_dropped
        events_dropped += snap.events_dropped
    return TelemetrySnapshot(
        key=tuple(key),
        counters=tuple(sorted(counters.items())),
        nondet_counters=tuple(sorted(nondet_counters.items())),
        gauges=tuple(sorted((n, v, h) for n, (v, h) in gauges.items())),
        nondet_gauges=tuple(
            sorted((n, v, h) for n, (v, h) in nondet_gauges.items())
        ),
        histograms=tuple(
            sorted(
                (n, bounds, tuple(counts), total, count)
                for n, (bounds, counts, total, count) in histograms.items()
            )
        ),
        spans=tuple(spans),
        events=tuple(events),
        spans_dropped=spans_dropped,
        events_dropped=events_dropped,
    )
