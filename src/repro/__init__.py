"""repro — a full reproduction of *Spider: Improving Mobile Networking with
Concurrent Wi-Fi Connections* (Soroush et al., 2011).

Subpackages
-----------
``repro.sim``
    Discrete-event wireless substrate (802.11 medium, APs, DHCP, TCP,
    mobility, the stock-driver baseline).
``repro.core``
    Spider itself: channel scheduling, utility-based AP selection, and the
    link-management module.
``repro.model``
    The paper's analytical join model (Eq. 1-7) and the throughput
    optimization framework (Eq. 8-10).
``repro.workloads``
    Synthetic towns and mesh-user traces standing in for the vehicular
    testbed.
``repro.experiments``
    One module per paper table/figure, regenerating the reported series.
"""

__version__ = "1.0.0"

from . import core, sim  # noqa: F401

__all__ = ["core", "sim", "__version__"]
