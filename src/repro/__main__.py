"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro list                          # show available experiments
    python -m repro fig2                          # regenerate Figure 2
    python -m repro table2 --trials 4 --workers 4 # more seeds, in parallel
    python -m repro fleet --json-out fleet.json   # machine-readable envelope

Every experiment shares one flag vocabulary, parsed here once:

``--workers N``
    fan trials across N worker processes (where the experiment runs
    town trials; analytic experiments ignore it),
``--trials N``
    run N seeds starting at ``--seed`` (default 0),
``--seed S``
    base seed (alone: run just that one seed),
``--duration S``
    simulated seconds per trial,
``--json-out PATH``
    also write the :class:`~repro.runner.TrialResult` envelope as JSON,
``--telemetry PATH``
    capture :mod:`repro.obs` telemetry in every trial and export the
    snapshots (plus their deterministic merge and a Chrome
    ``traceEvents`` view) as one JSON payload,
``--telemetry-summary``
    capture telemetry and print the merged ASCII summary after the
    experiment's own rendering (combinable with ``--telemetry``),
``--telemetry-deterministic``
    strip wall-clock profiling instruments from the ``--telemetry``
    export (the deterministic projection byte-equality gates compare),
``--cache`` / ``--no-cache``
    force the content-addressed trial-result cache on/off (default:
    the ``REPRO_CACHE`` environment variable; see :mod:`repro.cache`),
``--cache-dir PATH``
    where the cache lives (default: ``REPRO_CACHE_DIR`` or
    ``.repro_cache``).  A warm re-run replays cached trials and is
    byte-identical — results and telemetry — to the cold run.
``--fabric SPEC``
    route trial fan-outs through the distributed sweep fabric
    (``local``, ``local:N``, ``chaos:SEED``, or an ``http://host:port``
    coordinator; default: the ``REPRO_FABRIC`` environment variable; see
    :mod:`repro.fabric`).  Results are byte-identical to a local run.
``--fabric-chaos SEED``
    inject the seeded chaos preset (worker kills, stalls, dropped and
    duplicated completions) into an in-process fabric — the
    fault-tolerance proof knob: results still match serial exactly.
``--cc {reno,cubic,bbr,quic0rtt}``
    congestion controller for every TCP flow the experiment spawns
    (default: the ``REPRO_CC`` environment variable, else Reno;
    ``--cc reno`` is byte-identical to the default),
``--split`` / ``--no-split``
    terminate TCP at the AP and relay over a split connection (see
    :class:`repro.sim.ap.SplitTcpProxy`; default: ``REPRO_SPLIT``).
``--contention MODE``
    replace the global per-channel airtime FIFO with the CSMA/CA
    multi-cell MAC (:mod:`repro.sim.contention`) in every world the
    experiment builds: ``on``/``off``, optionally with the ``stagger``
    modifier (``on,stagger`` / ``off,stagger``) to also stagger AP
    beacon phases.  Default: the ``REPRO_CONTENTION`` environment
    variable, else the historical global FIFO.

Flags map onto the experiment's spec via
:func:`repro.experiments.api.spec_from_options`, so fields a given spec
does not declare are simply ignored and new experiments get the flags for
free by registering a spec.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, Optional, Tuple

from .experiments import (
    ap_density,
    appendix_knapsack,
    fig2_join_validation,
    fig3_beta_sensitivity,
    fig4_optimal_schedule,
    fig5_association,
    fig6_dhcp,
    fig7_tcp_fraction,
    fig8_tcp_dwell,
    fig10_micro,
    fig11_13_cdfs,
    fig14_join_timeouts,
    fig15_join_policies,
    fig16_17_usability,
    channel_assign,
    dense_town,
    fault_sweep,
    fleet,
    speed_sweep,
    table1_switch_latency,
    table2_configs,
    table3_dhcp_failures,
    table4_channels,
    transport_matrix,
)
from .experiments.api import (
    REGISTRY,
    run_experiment,
    spec_from_options,
    to_jsonable,
)
from .sim.cc import CC_NAMES, resolve_transport
from .sim.contention import resolve_contention

#: Compatibility table: artifact id -> the module's ``main()``.  Dispatch
#: goes through :data:`repro.experiments.api.REGISTRY`; this dict remains
#: for callers that invoke an experiment's CLI entry point directly.
EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig2": fig2_join_validation.main,
    "fig3": fig3_beta_sensitivity.main,
    "fig4": fig4_optimal_schedule.main,
    "fig5": fig5_association.main,
    "fig6": fig6_dhcp.main,
    "fig7": fig7_tcp_fraction.main,
    "fig8": fig8_tcp_dwell.main,
    "fig10": fig10_micro.main,
    "fig11-13": fig11_13_cdfs.main,
    "fig14": fig14_join_timeouts.main,
    "fig15": fig15_join_policies.main,
    "fig16-17": fig16_17_usability.main,
    "table1": table1_switch_latency.main,
    "table2": table2_configs.main,
    "table3": table3_dhcp_failures.main,
    "table4": table4_channels.main,
    "density": ap_density.main,
    "speed-sweep": speed_sweep.main,
    "fault-sweep": fault_sweep.main,
    "dense-town": dense_town.main,
    "fleet": fleet.main,
    "knapsack": appendix_knapsack.main,
    "transport-matrix": transport_matrix.main,
    "channel-assign": channel_assign.main,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the Spider paper.",
    )
    parser.add_argument(
        "experiment",
        help="artifact id (see 'list') or 'list' to enumerate them",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for trial fan-out (default: serial)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=None,
        metavar="N",
        help="run N seeds starting at --seed (default: the spec's seeds)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="base seed (without --trials: run only this seed)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated seconds per trial",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="also write the result envelope as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="capture per-trial telemetry and export it (JSON + Chrome "
        "trace_event) to PATH",
    )
    parser.add_argument(
        "--telemetry-summary",
        action="store_true",
        help="capture telemetry and print the merged ASCII summary",
    )
    parser.add_argument(
        "--telemetry-deterministic",
        action="store_true",
        help="strip wall-clock profiling instruments from the --telemetry "
        "export so byte-equality holds across layouts/fabrics",
    )
    parser.add_argument(
        "--cache",
        dest="cache",
        action="store_const",
        const=True,
        default=None,
        help="memoize trial results in the content-addressed cache",
    )
    parser.add_argument(
        "--no-cache",
        dest="cache",
        action="store_const",
        const=False,
        help="disable the trial-result cache (overrides REPRO_CACHE)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--fabric",
        default=None,
        metavar="SPEC",
        help="route trial fan-outs through the sweep fabric: local[:N], "
        "chaos:SEED, or http://host:port (default: $REPRO_FABRIC)",
    )
    parser.add_argument(
        "--fabric-chaos",
        type=int,
        default=None,
        metavar="SEED",
        help="inject the seeded chaos preset into the in-process fabric "
        "(implies --fabric local if not given)",
    )
    parser.add_argument(
        "--cc",
        choices=CC_NAMES,
        default=None,
        help="congestion controller for every TCP flow; experiments "
        "without TCP traffic (analytic figures, table1) ignore it "
        "(default: $REPRO_CC, else reno)",
    )
    parser.add_argument(
        "--split",
        dest="split",
        action="store_const",
        const=True,
        default=None,
        help="terminate TCP at the AP and relay over a split connection",
    )
    parser.add_argument(
        "--no-split",
        dest="split",
        action="store_const",
        const=False,
        help="force split-TCP off (overrides REPRO_SPLIT)",
    )
    parser.add_argument(
        "--contention",
        default=None,
        metavar="MODE",
        help="CSMA/CA multi-cell MAC: on/off, plus the stagger modifier "
        "(on,stagger / off,stagger) "
        "(default: $REPRO_CONTENTION, else the global airtime FIFO)",
    )
    return parser


def _seeds_from_flags(
    seed: Optional[int], trials: Optional[int]
) -> Optional[Tuple[int, ...]]:
    """The seed tuple the flags ask for, or ``None`` for the spec default."""
    if trials is not None:
        base = seed if seed is not None else 0
        return tuple(range(base, base + trials))
    if seed is not None:
        return (seed,)
    return None


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        width = max(len(name) for name in REGISTRY)
        for name, experiment in REGISTRY.items():
            print(f"{name:<{width}}  {experiment.summary}")
        return 0
    experiment = REGISTRY.get(args.experiment)
    if experiment is None:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    if args.trials is not None and args.trials < 1:
        print("--trials must be >= 1", file=sys.stderr)
        return 2
    want_telemetry = args.telemetry is not None or args.telemetry_summary
    try:
        contention = resolve_contention(args.contention)
    except ValueError as exc:
        print(f"bad --contention mode: {exc}", file=sys.stderr)
        return 2
    spec = spec_from_options(
        experiment.spec_cls,
        seeds=_seeds_from_flags(args.seed, args.trials),
        duration_s=args.duration,
        workers=args.workers,
        telemetry=True if want_telemetry else None,
        cache=args.cache,
        cache_dir=args.cache_dir,
        transport=resolve_transport(args.cc, args.split),
        contention=contention,
    )
    # Resolve the cache here too (same shared instance the experiment
    # registry will activate) so its hit/miss stats can be reported below.
    from .cache import resolve_cache

    store = resolve_cache(args.cache, args.cache_dir)
    from .fabric import resolve_fabric

    fabric_spec = args.fabric
    if fabric_spec is None and args.fabric_chaos is not None:
        fabric_spec = "local"
    try:
        fabric = resolve_fabric(fabric_spec, chaos_seed=args.fabric_chaos)
    except ValueError as exc:
        print(f"bad --fabric spec: {exc}", file=sys.stderr)
        return 2
    envelope = run_experiment(args.experiment, spec, fabric=fabric)
    if store is not None:
        print(store.describe(), file=sys.stderr)
    if fabric is not None and hasattr(fabric, "describe"):
        print(fabric.describe(), file=sys.stderr)
    if args.json_out is not None:
        payload = json.dumps(to_jsonable(envelope), indent=2, sort_keys=True)
        if args.json_out == "-":
            print(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    if not envelope.ok:
        print(f"experiment failed: {envelope.error}", file=sys.stderr)
        return 1
    snapshots = []
    if want_telemetry:
        from .obs import collect_snapshots

        snapshots = collect_snapshots(envelope.value)
        if not snapshots:
            print(
                f"warning: {args.experiment!r} produced no telemetry "
                "(analytic experiments ignore --telemetry)",
                file=sys.stderr,
            )
    if args.telemetry is not None and snapshots:
        from .obs import write_payload

        write_payload(
            args.telemetry, snapshots, deterministic=args.telemetry_deterministic
        )
        print(
            f"telemetry: {len(snapshots)} snapshot(s) -> {args.telemetry}",
            file=sys.stderr,
        )
    if args.json_out == "-":
        # Keep stdout pure JSON for piping into jq and friends.
        return 0
    result = envelope.value
    if hasattr(result, "render"):
        print(result.render())
    else:
        print(result)
    if args.telemetry_summary and snapshots:
        from .analysis.reporting import telemetry_summary
        from .obs import merge_snapshots

        print()
        print(telemetry_summary(merge_snapshots(snapshots)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
