"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig2                 # regenerate Figure 2
    python -m repro table2 --quick       # Table 2 at reduced scale

``--quick`` trims seeds/durations for a fast sanity pass; default
parameters match the benchmark suite's defaults.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .experiments import (
    ap_density,
    appendix_knapsack,
    fig2_join_validation,
    fig3_beta_sensitivity,
    fig4_optimal_schedule,
    fig5_association,
    fig6_dhcp,
    fig7_tcp_fraction,
    fig8_tcp_dwell,
    fig10_micro,
    fig11_13_cdfs,
    fig14_join_timeouts,
    fig15_join_policies,
    fig16_17_usability,
    fault_sweep,
    fleet,
    speed_sweep,
    table1_switch_latency,
    table2_configs,
    table3_dhcp_failures,
    table4_channels,
)

EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "fig2": fig2_join_validation.main,
    "fig3": fig3_beta_sensitivity.main,
    "fig4": fig4_optimal_schedule.main,
    "fig5": fig5_association.main,
    "fig6": fig6_dhcp.main,
    "fig7": fig7_tcp_fraction.main,
    "fig8": fig8_tcp_dwell.main,
    "fig10": fig10_micro.main,
    "fig11-13": fig11_13_cdfs.main,
    "fig14": fig14_join_timeouts.main,
    "fig15": fig15_join_policies.main,
    "fig16-17": fig16_17_usability.main,
    "table1": table1_switch_latency.main,
    "table2": table2_configs.main,
    "table3": table3_dhcp_failures.main,
    "table4": table4_channels.main,
    "density": ap_density.main,
    "speed-sweep": speed_sweep.main,
    "fault-sweep": fault_sweep.main,
    "fleet": fleet.main,
    "knapsack": appendix_knapsack.main,
}


def main(argv=None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from the Spider paper.",
    )
    parser.add_argument(
        "experiment",
        help="artifact id (see 'list') or 'list' to enumerate them",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    runner()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
