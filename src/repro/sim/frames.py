"""Frame and packet types exchanged over the simulated network.

Wireless frames (:class:`Frame`) travel over the :class:`~repro.sim.radio.Medium`;
wired packets reuse the same class and travel over AP backhauls.  Sizes are in
bytes and include a nominal header overhead so that airtime computations are
sensible without modelling each 802.11 header field.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "FrameKind",
    "Frame",
    "DhcpMessage",
    "TcpSegment",
    "BROADCAST",
    "MGMT_FRAME_BYTES",
    "ACK_FRAME_BYTES",
    "DHCP_FRAME_BYTES",
    "PING_FRAME_BYTES",
]

#: Destination address meaning "all stations on the channel".
BROADCAST = "ff:ff"

#: Nominal size of a management frame (beacon/probe/auth/assoc/psm), bytes.
MGMT_FRAME_BYTES = 80
#: Nominal size of a bare TCP ACK on the air, bytes.
ACK_FRAME_BYTES = 90
#: Nominal size of a DHCP message on the air, bytes.
DHCP_FRAME_BYTES = 350
#: Nominal size of an ICMP echo frame, bytes.
PING_FRAME_BYTES = 98

_frame_ids = itertools.count(1)


class FrameKind(enum.Enum):
    """Discriminator for everything that can cross a link."""

    BEACON = "beacon"
    PROBE_REQUEST = "probe_request"
    PROBE_RESPONSE = "probe_response"
    AUTH_REQUEST = "auth_request"
    AUTH_RESPONSE = "auth_response"
    ASSOC_REQUEST = "assoc_request"
    ASSOC_RESPONSE = "assoc_response"
    PSM = "psm"          # "entering power-save mode" null frame
    PS_POLL = "ps_poll"  # "I am back, flush your buffer" poll
    DISASSOC = "disassoc"
    DHCP = "dhcp"
    DATA = "data"        # carries a TcpSegment or opaque payload
    PING_REQUEST = "ping_request"
    PING_REPLY = "ping_reply"


class DhcpType(enum.Enum):
    """DHCP message types used by the join pipeline."""

    DISCOVER = "discover"
    OFFER = "offer"
    REQUEST = "request"
    ACK = "ack"
    NAK = "nak"


@dataclass
class DhcpMessage:
    """Payload of a ``FrameKind.DHCP`` frame."""

    dhcp_type: DhcpType
    transaction_id: int
    client_mac: str
    offered_ip: Optional[str] = None
    server_id: Optional[str] = None
    gateway_ip: Optional[str] = None
    lease_time: float = 3600.0


@dataclass
class TcpSegment:
    """Payload of a ``FrameKind.DATA`` frame carrying TCP.

    ``seq``/``ack`` are byte offsets (cumulative ACK semantics).  ``flow_id``
    identifies the connection; simulated hosts demultiplex on it the way a
    real stack demultiplexes on the 4-tuple.
    """

    flow_id: str
    src_ip: str
    dst_ip: str
    seq: int = 0
    ack: int = 0
    payload_bytes: int = 0
    is_ack: bool = False
    is_syn: bool = False
    is_fin: bool = False
    sent_at: float = 0.0
    retransmit: bool = False


@dataclass
class Frame:
    """A unit of transmission.

    ``src``/``dst`` are station identifiers (virtual-interface MACs, AP
    BSSIDs, or wired host ids).  ``bssid`` names the AP a managed frame
    belongs to, which lets overhearing stations do opportunistic scanning.
    """

    kind: FrameKind
    src: str
    dst: str
    size: int
    channel: int = 0
    bssid: Optional[str] = None
    payload: Any = None
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def is_broadcast(self) -> bool:
        """Whether this frame is addressed to all stations."""
        return self.dst == BROADCAST

    def __repr__(self) -> str:  # compact, log-friendly
        return (
            f"Frame({self.kind.value} #{self.frame_id} {self.src}->{self.dst} "
            f"ch{self.channel} {self.size}B)"
        )
