"""Pluggable congestion control for the TCP model.

The paper's headline TCP pathology — an off-channel dwell longer than the
RTO collapsing cwnd to one segment (Figs. 7/8) — was measured under Reno.
This module makes the congestion controller a strategy object so the same
sender machinery (timers, ACK clocking, go-back-N, Karn's algorithm) can
drive modern controllers, letting experiments ask whether the "dividing
speed" moves under CUBIC/BBR or when the lossy last hop is split at the AP.

Contents:

* :class:`CongestionController` — the strategy interface.  The sender owns
  sequence state and timers; the controller owns ``cwnd``/``ssthresh`` and
  reacts to ``on_ack`` / ``on_rto`` / ``on_fast_retransmit`` /
  ``on_rtt_sample`` callbacks.
* :class:`RenoCC` — bit-for-bit the arithmetic previously inlined in
  :class:`repro.sim.tcp.TcpSender`; the default, and byte-identical to the
  pre-refactor traces (CI cmp-enforces this).
* :class:`CubicCC` — RFC 8312-style cubic window growth.
* :class:`BbrLiteCC` — a small model of BBR: windowed min-RTT and max
  delivery-rate filters, cwnd pinned to ``gain * BDP``.
* :class:`QuicZeroRttCC` — Reno window dynamics plus a QUIC-style 0-RTT
  session-resumption hint: the join pipeline skips its verify phase when
  rejoining an AP this client has verified before.
* :class:`TransportSpec` — a frozen, picklable bundle of the TCP knobs
  (:class:`TcpParams` fields) plus the CC/split selection, carried on
  ``ExperimentSpec`` and threaded through worlds and flows.

``TcpParams`` lives here (re-exported from :mod:`repro.sim.tcp` for
compatibility) so the sender module can depend on this one without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Callable, Deque, Dict, Optional, Tuple

from collections import deque

__all__ = [
    "TcpParams",
    "TransportSpec",
    "CongestionController",
    "RenoCC",
    "CubicCC",
    "BbrLiteCC",
    "QuicZeroRttCC",
    "CC_NAMES",
    "make_controller",
    "resolve_transport",
]


@dataclass
class TcpParams:
    """Tunable constants for a sender."""

    mss: int = 1400
    initial_cwnd_segments: float = 2.0
    initial_ssthresh_segments: float = 64.0
    max_cwnd_segments: float = 128.0  # models the receiver window
    #: Linux's RTO floor (200 ms), the value that makes off-channel gaps
    #: longer than ~2 RTTs expensive — the mechanism behind Figs. 7/8.
    rto_min_s: float = 0.2
    rto_max_s: float = 60.0
    rto_initial_s: float = 1.0
    dupack_threshold: int = 3


class CongestionController:
    """Strategy interface driven by :class:`repro.sim.tcp.TcpSender`.

    The sender computes ``acked_segments`` / ``flight_segments`` from its
    sequence state and calls the hooks below; the controller updates
    ``cwnd`` and ``ssthresh`` (both in segments).  Hooks receive ``now``
    (sim time, seconds) so time-based controllers need no engine handle.
    """

    #: Registry key; also used to namespace per-CC telemetry.
    name = "base"
    #: When True, the join pipeline may skip its verify phase on rejoin
    #: (QUIC-style 0-RTT session resumption).
    zero_rtt_resume = False

    def __init__(self, params: Optional[TcpParams] = None):
        self.p = params or TcpParams()
        self.cwnd: float = self.p.initial_cwnd_segments
        self.ssthresh: float = self.p.initial_ssthresh_segments

    def on_ack(self, acked_segments: float, flight_segments: float, now: float) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``acked_segments``."""
        raise NotImplementedError

    def on_rto(self, flight_segments: float, now: float) -> None:
        """The retransmission timer fired (loss signalled by timeout)."""
        raise NotImplementedError

    def on_fast_retransmit(self, flight_segments: float, now: float) -> None:
        """Triple duplicate ACKs triggered a fast retransmit."""
        raise NotImplementedError

    def on_rtt_sample(self, sample: float, now: float) -> None:
        """A Karn-valid RTT sample was taken (default: ignored)."""


class RenoCC(CongestionController):
    """RFC 5681 Reno — the exact arithmetic the sender used pre-refactor.

    Every expression below is kept operation-for-operation identical to the
    historical inline code so Reno behind the interface is byte-identical
    to the seed's traces (asserted by ``tests/test_transport_identity.py``
    and cmp-enforced in CI).
    """

    name = "reno"

    def on_ack(self, acked_segments: float, flight_segments: float, now: float) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + acked_segments, self.p.max_cwnd_segments)
        else:
            self.cwnd = min(
                self.cwnd + acked_segments / max(self.cwnd, 1.0),
                self.p.max_cwnd_segments,
            )

    def on_rto(self, flight_segments: float, now: float) -> None:
        self.ssthresh = max(flight_segments / 2.0, 2.0)
        self.cwnd = 1.0

    def on_fast_retransmit(self, flight_segments: float, now: float) -> None:
        self.ssthresh = max(flight_segments / 2.0, 2.0)
        self.cwnd = self.ssthresh


class CubicCC(CongestionController):
    """RFC 8312-style CUBIC.

    After a loss at window ``w_max`` the window grows along
    ``W(t) = C * (t - K)^3 + w_max`` with ``K = cbrt(w_max * (1-beta) / C)``:
    a fast initial recovery, a plateau near ``w_max``, then probing beyond.
    Slow start below ``ssthresh`` matches Reno.
    """

    name = "cubic"
    C = 0.4
    BETA = 0.7

    def __init__(self, params: Optional[TcpParams] = None):
        super().__init__(params)
        self._w_max: float = 0.0
        self._k: float = 0.0
        self._epoch_start: Optional[float] = None

    def _enter_recovery(self, now: float) -> None:
        self._w_max = max(self.cwnd, 1.0)
        self._k = ((self._w_max * (1.0 - self.BETA)) / self.C) ** (1.0 / 3.0)
        self._epoch_start = None  # restarts on the next congestion-avoidance ACK
        self.ssthresh = max(self.cwnd * self.BETA, 2.0)

    def on_ack(self, acked_segments: float, flight_segments: float, now: float) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd + acked_segments, self.p.max_cwnd_segments)
            return
        if self._epoch_start is None:
            self._epoch_start = now
            if self._w_max < self.cwnd:
                # No loss yet (or we grew past the old plateau): treat the
                # current window as the origin so W(t) probes upward.
                self._w_max = self.cwnd
                self._k = 0.0
        t = now - self._epoch_start
        target = self.C * (t - self._k) ** 3 + self._w_max
        if target > self.cwnd:
            step = (target - self.cwnd) * (acked_segments / max(self.cwnd, 1.0))
            self.cwnd = min(self.cwnd + step, self.p.max_cwnd_segments)
        else:
            # TCP-friendly floor: creep ~Reno-slow while below the curve.
            self.cwnd = min(
                self.cwnd + 0.01 * acked_segments / max(self.cwnd, 1.0),
                self.p.max_cwnd_segments,
            )

    def on_rto(self, flight_segments: float, now: float) -> None:
        self._enter_recovery(now)
        self.cwnd = 1.0

    def on_fast_retransmit(self, flight_segments: float, now: float) -> None:
        self._enter_recovery(now)
        self.cwnd = self.ssthresh


class BbrLiteCC(CongestionController):
    """A compact BBR model: rate- and RTT-filtered, mostly loss-blind.

    Keeps a windowed minimum of RTT samples and a windowed maximum of ACK
    delivery rate; once both filters have data the window is pinned to
    ``CWND_GAIN * BDP`` (bounded to ``[MIN_CWND, max_cwnd_segments]``).
    Before the filters fill it grows like slow start.  Loss signals barely
    dent it: an RTO floors the window at ``MIN_CWND`` instead of 1 segment
    — which is exactly the behavior the transport-matrix experiment probes
    against the paper's off-channel RTO pathology.

    Invariants (asserted by the unit suite):

    * ``MIN_CWND <= cwnd <= max_cwnd_segments`` always;
    * once the filters have data, ``cwnd <= max(CWND_GAIN * BDP_estimate,
      MIN_CWND)`` — the pacing bound.
    """

    name = "bbr"
    CWND_GAIN = 2.0
    MIN_CWND = 4.0
    RTT_WINDOW_S = 10.0
    BW_SAMPLES = 16

    def __init__(self, params: Optional[TcpParams] = None):
        super().__init__(params)
        self.cwnd = max(self.cwnd, self.MIN_CWND)
        self._rtt_samples: Deque[Tuple[float, float]] = deque()  # (now, rtt)
        self._bw_samples: Deque[float] = deque(maxlen=self.BW_SAMPLES)
        self._last_ack_at: Optional[float] = None

    # -- filters -------------------------------------------------------
    @property
    def min_rtt(self) -> Optional[float]:
        return min((s for _, s in self._rtt_samples), default=None)

    @property
    def btl_bw(self) -> Optional[float]:
        """Max observed delivery rate, segments/second."""
        return max(self._bw_samples, default=None)

    @property
    def bdp(self) -> Optional[float]:
        rtt, bw = self.min_rtt, self.btl_bw
        if rtt is None or bw is None:
            return None
        return bw * rtt

    def on_rtt_sample(self, sample: float, now: float) -> None:
        self._rtt_samples.append((now, sample))
        horizon = now - self.RTT_WINDOW_S
        while self._rtt_samples and self._rtt_samples[0][0] < horizon:
            self._rtt_samples.popleft()

    # -- window --------------------------------------------------------
    def on_ack(self, acked_segments: float, flight_segments: float, now: float) -> None:
        if self._last_ack_at is not None and now > self._last_ack_at:
            self._bw_samples.append(acked_segments / (now - self._last_ack_at))
        self._last_ack_at = now
        bdp = self.bdp
        if bdp is None:
            # Startup: filters empty, grow like slow start.
            self.cwnd = min(self.cwnd + acked_segments, self.p.max_cwnd_segments)
            return
        target = min(
            max(self.CWND_GAIN * bdp, self.MIN_CWND), self.p.max_cwnd_segments
        )
        if target > self.cwnd:
            self.cwnd = min(self.cwnd + acked_segments, target)
        else:
            self.cwnd = target

    def on_rto(self, flight_segments: float, now: float) -> None:
        # BBR is not loss-driven; an RTO merely floors the window (the pipe
        # estimate survives the off-channel gap).
        self.ssthresh = max(flight_segments / 2.0, 2.0)
        self.cwnd = max(min(self.cwnd, self.MIN_CWND), self.MIN_CWND)
        self._last_ack_at = None  # the gap would poison the rate filter

    def on_fast_retransmit(self, flight_segments: float, now: float) -> None:
        self.ssthresh = max(flight_segments / 2.0, 2.0)
        self.cwnd = max(self.cwnd * 0.85, self.MIN_CWND)


class QuicZeroRttCC(RenoCC):
    """QUIC-style transport: Reno window dynamics + 0-RTT resumption.

    The window arithmetic is Reno's; what changes is the join pipeline —
    with this controller selected, a client rejoining an AP it has verified
    before skips the verify phase entirely (see
    :class:`repro.core.link_manager.LinkManager`), modelling a resumed
    QUIC session that needs no connectivity probe before first payload.
    """

    name = "quic0rtt"
    zero_rtt_resume = True


#: Registry of selectable controllers, keyed by CLI/env name.
_CC_REGISTRY: Dict[str, Callable[[Optional[TcpParams]], CongestionController]] = {
    RenoCC.name: RenoCC,
    CubicCC.name: CubicCC,
    BbrLiteCC.name: BbrLiteCC,
    QuicZeroRttCC.name: QuicZeroRttCC,
}

CC_NAMES: Tuple[str, ...] = tuple(_CC_REGISTRY)


def make_controller(
    name: str, params: Optional[TcpParams] = None
) -> CongestionController:
    """Instantiate the controller registered under ``name``."""
    try:
        factory = _CC_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion controller {name!r}; expected one of {CC_NAMES}"
        ) from None
    return factory(params)


_TCP_PARAM_FIELDS = tuple(f.name for f in fields(TcpParams))


@dataclass(frozen=True)
class TransportSpec:
    """Frozen, picklable transport configuration for a world or a flow.

    Folds the :class:`TcpParams` numeric knobs together with the two new
    selections — congestion controller and AP connection-splitting — into
    one value that rides ``ExperimentSpec``/``TownTrialSpec`` envelopes and
    hashes cleanly into the trial cache's canonical token.  The default
    instance reproduces the historical behavior exactly (Reno, no split).
    """

    cc: str = "reno"
    split: bool = False
    mss: int = 1400
    initial_cwnd_segments: float = 2.0
    initial_ssthresh_segments: float = 64.0
    max_cwnd_segments: float = 128.0
    rto_min_s: float = 0.2
    rto_max_s: float = 60.0
    rto_initial_s: float = 1.0
    dupack_threshold: int = 3

    def __post_init__(self) -> None:
        if self.cc not in _CC_REGISTRY:
            raise ValueError(
                f"unknown congestion controller {self.cc!r}; "
                f"expected one of {CC_NAMES}"
            )

    # -- conversions ---------------------------------------------------
    def params(self) -> TcpParams:
        """The :class:`TcpParams` view of the numeric knobs."""
        return TcpParams(**{f: getattr(self, f) for f in _TCP_PARAM_FIELDS})

    @classmethod
    def from_params(
        cls,
        params: Optional[TcpParams],
        cc: str = "reno",
        split: bool = False,
    ) -> "TransportSpec":
        """Lift a legacy ``TcpParams`` (or None) into a spec."""
        p = params or TcpParams()
        return cls(cc=cc, split=split, **{f: getattr(p, f) for f in _TCP_PARAM_FIELDS})

    def controller(self) -> CongestionController:
        """A fresh controller instance for one sender."""
        return make_controller(self.cc, self.params())

    @property
    def zero_rtt(self) -> bool:
        """True when the selected CC allows 0-RTT join resumption."""
        return bool(getattr(_CC_REGISTRY[self.cc], "zero_rtt_resume", False))


_FALSEY = ("", "0", "false", "no", "off")


def resolve_transport(
    cc: Optional[str] = None, split: Optional[bool] = None
) -> Optional[TransportSpec]:
    """Resolve CLI/env transport selection into a spec, or None.

    ``cc``/``split`` (CLI flags) win over the ``REPRO_CC`` / ``REPRO_SPLIT``
    environment knobs.  Returns ``None`` when nothing was requested so the
    default (Reno, no split, spec unset) produces results byte-identical
    to runs that predate this subsystem.
    """
    if cc is None:
        cc = os.environ.get("REPRO_CC") or None
    if split is None:
        env = os.environ.get("REPRO_SPLIT")
        if env is not None:
            split = env.strip().lower() not in _FALSEY
    if cc is None and split is None:
        return None
    return TransportSpec(cc=cc or "reno", split=bool(split))
