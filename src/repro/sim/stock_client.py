"""Baseline client: a stock (MadWiFi-style) single-AP Wi-Fi stack.

The comparison point of §4: one interface, sequential scan across channels,
best-RSSI AP selection, default link-layer and DHCP timers (1 s per message,
3 s DHCP attempt budget, 60 s idle after a DHCP failure), no PSM tricks, no
lease caching.  On losing the AP it rescans from scratch — the behaviour
whose join latency dominates at vehicular speeds.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Sequence

from . import dhcp as dhcp_mod
from . import mac as mac_mod
from .engine import Simulator
from .frames import FrameKind
from .engine import PeriodicProcess
from .metrics import JoinAttempt, JoinLog, ThroughputRecorder
from .mobility import MobilityModel
from .nic import ScanEntry, VirtualInterface, WifiNic
from .tcp import TcpParams
from .traffic import ClientFlow
from .world import World

__all__ = ["StockClient"]

logger = logging.getLogger(__name__)

#: Channels a full stock scan sweeps (2.4 GHz band).
FULL_SCAN_CHANNELS = tuple(range(1, 12))
#: Per-channel dwell while scanning, seconds.
SCAN_DWELL_S = 0.12
#: Pause before restarting a fruitless scan.
SCAN_RETRY_IDLE_S = 0.5
#: A stock stack declares link loss only after this long without a beacon
#: from its AP — it runs no active liveness probing (unlike Spider's 10 Hz
#: ping rule), which is one reason it wastes the tail of every encounter.
BEACON_LOSS_TIMEOUT_S = 4.0


class StockClient:
    """Off-the-shelf Wi-Fi behaviour on the shared substrate."""

    def __init__(
        self,
        sim: Simulator,
        world: World,
        mobility: MobilityModel,
        client_id: str = "stock",
        scan_channels: Sequence[int] = FULL_SCAN_CHANNELS,
        ll_timeout_s: float = mac_mod.DEFAULT_LL_TIMEOUT_S,
        dhcp_timeout_s: float = dhcp_mod.DEFAULT_DHCP_TIMEOUT_S,
        dhcp_budget_s: float = dhcp_mod.DEFAULT_ATTEMPT_BUDGET_S,
        dhcp_idle_after_failure_s: float = dhcp_mod.DEFAULT_IDLE_AFTER_FAILURE_S,
        beacon_loss_timeout_s: float = BEACON_LOSS_TIMEOUT_S,
        enable_traffic: bool = True,
        tcp_params: Optional[TcpParams] = None,
    ):
        self.sim = sim
        self.world = world
        self.scan_channels = list(scan_channels)
        self.ll_timeout_s = ll_timeout_s
        self.dhcp_timeout_s = dhcp_timeout_s
        self.dhcp_budget_s = dhcp_budget_s
        self.dhcp_idle_after_failure_s = dhcp_idle_after_failure_s
        self.beacon_loss_timeout_s = beacon_loss_timeout_s
        self.enable_traffic = enable_traffic
        self.tcp_params = tcp_params
        self.nic = WifiNic(
            sim, world.medium, mobility, nic_id=client_id,
            initial_channel=self.scan_channels[0],
        )
        self.iface: VirtualInterface = self.nic.add_interface()
        self.recorder = ThroughputRecorder(sim)
        self.join_log = JoinLog()
        self.state = "idle"
        self.links_established = 0
        self._blacklist: Dict[str, float] = {}
        self._scan_index = 0
        self._flow: Optional[ClientFlow] = None
        self._beacon_watch: Optional[PeriodicProcess] = None
        self._attempt: Optional[JoinAttempt] = None
        self._stopped = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the component."""
        self._begin_scan()

    def stop(self) -> None:
        """Stop the component and release its resources."""
        self._stopped = True
        self._teardown_connection(notify=False)

    def average_throughput_kBps(self, duration_s: Optional[float] = None) -> float:
        """Mean delivered throughput in kilobytes/second."""
        return self.recorder.average_throughput_bps(duration_s) / 1e3

    def connectivity_percent(self, duration_s: Optional[float] = None) -> float:
        """Percentage of time bins with non-zero delivery."""
        return 100.0 * self.recorder.connectivity_fraction(duration_s)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def _begin_scan(self) -> None:
        if self._stopped:
            return
        self.state = "scanning"
        self._scan_index = 0
        self._scan_step()

    def _scan_step(self) -> None:
        if self._stopped or self.state != "scanning":
            return
        if self._scan_index >= len(self.scan_channels):
            self._evaluate_scan()
            return
        channel = self.scan_channels[self._scan_index]
        self._scan_index += 1
        self.nic.tune(channel, self._dwell_on_scan_channel)

    def _dwell_on_scan_channel(self) -> None:
        self.nic.send_probe_request()
        self.sim.schedule(SCAN_DWELL_S, self._scan_step)

    def _evaluate_scan(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        stale = [b for b, until in self._blacklist.items() if until <= now]
        for bssid in stale:
            del self._blacklist[bssid]
        candidates = [
            e
            for e in self.nic.scan_table.fresh_entries(now)
            if e.bssid not in self._blacklist
        ]
        if not candidates:
            self.sim.schedule(SCAN_RETRY_IDLE_S, self._begin_scan)
            return
        self._join(candidates[0])  # fresh_entries sorts by RSSI already

    # ------------------------------------------------------------------
    # Joining
    # ------------------------------------------------------------------
    def _join(self, entry: ScanEntry) -> None:
        self.state = "joining"
        self._attempt = self.join_log.new_attempt(entry.bssid, entry.channel, self.sim.now)
        self.nic.tune(entry.channel, lambda: self._associate(entry))

    def _associate(self, entry: ScanEntry) -> None:
        if self._stopped:
            return
        associator = mac_mod.Associator(
            self.sim,
            self.iface,
            bssid=entry.bssid,
            channel=entry.channel,
            timeout_s=self.ll_timeout_s,
            on_success=lambda elapsed: self._on_associated(entry, elapsed),
            on_failure=lambda reason: self._on_join_failed(entry, f"assoc: {reason}", 3.0),
        )
        associator.start()

    def _on_associated(self, entry: ScanEntry, elapsed: float) -> None:
        if self._stopped or self._attempt is None:
            return
        self._attempt.associated = True
        self._attempt.association_time_s = elapsed
        self.iface.link_associated = True
        client = dhcp_mod.DhcpClient(
            self.sim,
            self.iface,
            server_bssid=entry.bssid,
            timeout_s=self.dhcp_timeout_s,
            attempt_budget_s=self.dhcp_budget_s,
            on_success=lambda ip, gw, dt, cached: self._on_leased(entry, dt),
            on_failure=lambda reason: self._on_dhcp_failed(entry, reason),
            on_nak=self._on_nak,
        )
        client.start()

    def _on_nak(self) -> None:
        if self._attempt is not None:
            self._attempt.nak_received = True

    def _on_dhcp_failed(self, entry: ScanEntry, reason: str) -> None:
        """Default dhclient semantics: the *client* idles after a failure.

        The paper (§2.2.1): "the client attempts to acquire a lease for 3
        seconds, and it is idle for 60 seconds if it fails."  At vehicular
        speed that idle period is most of the damage stock Wi-Fi suffers.
        """
        if self._stopped:
            return
        if self._attempt is not None:
            self._attempt.failure_reason = f"dhcp: {reason}"
        self._blacklist[entry.bssid] = self.sim.now + self.dhcp_idle_after_failure_s
        self.iface.reset_binding()
        self.state = "idle"
        self.sim.schedule(self.dhcp_idle_after_failure_s, self._begin_scan)

    def _on_leased(self, entry: ScanEntry, dhcp_time: float) -> None:
        if self._stopped or self._attempt is None:
            return
        self._attempt.leased = True
        self._attempt.dhcp_time_s = dhcp_time
        self._attempt.join_time_s = self.sim.now - self._attempt.started_at
        self._attempt.verified = True  # stock stacks go straight to traffic
        self.state = "connected"
        self.links_established += 1
        self._beacon_watch = PeriodicProcess(self.sim, 0.5, self._check_beacons)
        if self.enable_traffic:
            self._flow = ClientFlow(
                self.sim,
                self.world,
                self.iface,
                on_bytes=self.recorder.record,
                tcp_params=self.tcp_params,
            )

    def _on_join_failed(self, entry: ScanEntry, reason: str, blacklist_s: float) -> None:
        if self._stopped:
            return
        if self._attempt is not None:
            self._attempt.failure_reason = reason
        self._blacklist[entry.bssid] = self.sim.now + blacklist_s
        self.iface.reset_binding()
        self._begin_scan()

    # ------------------------------------------------------------------
    # Connection loss
    # ------------------------------------------------------------------
    def _check_beacons(self) -> None:
        """Passive loss detection: no beacons for a while means the AP is gone."""
        if self._stopped or self.state != "connected" or self.iface.bssid is None:
            return
        entry = self.nic.scan_table.get(self.iface.bssid)
        last_seen = entry.last_seen if entry is not None else -1e9
        if self.sim.now - last_seen >= self.beacon_loss_timeout_s:
            self._on_dead()

    def _on_dead(self) -> None:
        if self._stopped:
            return
        bssid = self.iface.bssid
        if bssid is not None:
            self._blacklist[bssid] = self.sim.now + 2.0
        self._teardown_connection(notify=False)
        self._begin_scan()

    def _teardown_connection(self, notify: bool) -> None:
        if self._beacon_watch is not None:
            self._beacon_watch.stop()
            self._beacon_watch = None
        if self._flow is not None:
            self._flow.close()
            self._flow = None
        if self.iface.bssid is not None and self.iface.link_associated:
            try:
                self.iface.send_mgmt(FrameKind.DISASSOC, self.iface.bssid)
            except RuntimeError:
                pass  # channel binding already cleared
        self.iface.reset_binding()
