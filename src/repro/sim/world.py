"""Topology assembly: the wired core, the content server, and AP bridging.

A :class:`World` owns the simulator, the wireless :class:`Medium`, every
:class:`AccessPoint`, and a single :class:`ServerHost` that terminates the
download flows and echoes end-to-end pings.  It installs itself as each
AP's uplink handler and routes downlink traffic to the right AP by the
client IP's subnet (each AP hands out addresses from its own subnet, the
common open-AP deployment the paper measures).
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, Optional, Tuple

from .ap import AccessPoint, SplitTcpProxy
from .cc import TransportSpec
from .contention import ContentionSpec
from .engine import Simulator
from .frames import PING_FRAME_BYTES, FrameKind, TcpSegment
from .radio import Medium
from .tcp import TCP_HEADER_BYTES, TcpParams, TcpSender

__all__ = ["ServerHost", "World"]

logger = logging.getLogger(__name__)

#: One-way latency across the wired core (AP head-end to server), seconds.
DEFAULT_WIRED_LATENCY_S = 0.01

SERVER_IP = "192.0.2.1"


class ServerHost:
    """The wired content server: TCP senders live here."""

    def __init__(self, world: "World"):
        self.world = world
        self.ip = SERVER_IP
        self.flows: Dict[str, TcpSender] = {}
        self._split_proxies: Dict[str, SplitTcpProxy] = {}
        self.pings_echoed = 0

    def open_download(
        self,
        flow_id: str,
        client_ip: str,
        params: Optional[TcpParams] = None,
        total_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[], None]] = None,
        transport: Optional[TransportSpec] = None,
    ) -> TcpSender:
        """Start a bulk download toward ``client_ip`` and return the sender.

        Transport selection: an explicit ``transport`` wins; otherwise the
        world's transport supplies CC/split and a legacy ``params`` (if
        given) overrides the numeric TCP knobs.  In split mode the flow is
        terminated by a :class:`~repro.sim.ap.SplitTcpProxy` at the
        client's AP, and ``on_complete`` keeps its end-to-end meaning (it
        fires when the *client* has ACKed every byte).
        """
        if flow_id in self.flows:
            raise ValueError(f"duplicate flow id {flow_id!r}")
        if transport is None:
            base = self.world.transport
            if params is None:
                transport = base
            else:
                transport = TransportSpec.from_params(
                    params, cc=base.cc, split=base.split
                )

        def transmit(segment: TcpSegment) -> None:
            """Hand a segment to the network."""
            self.world.send_to_ip(
                segment.dst_ip,
                FrameKind.DATA,
                segment,
                segment.payload_bytes + TCP_HEADER_BYTES,
            )

        origin_on_complete = on_complete
        if transport.split:
            ap = self.world.ap_for_ip(client_ip)
            if ap is not None:
                # The wireless relay owns end-to-end completion; the origin
                # sender merely finishes its wired half into the proxy.
                self._split_proxies[flow_id] = SplitTcpProxy(
                    ap,
                    flow_id=flow_id,
                    server_ip=self.ip,
                    client_ip=client_ip,
                    transport=transport,
                    expected_bytes=total_bytes,
                    on_complete=on_complete,
                )
                origin_on_complete = None

        sender = TcpSender(
            self.world.sim,
            flow_id=flow_id,
            src_ip=self.ip,
            dst_ip=client_ip,
            transmit=transmit,
            transport=transport,
            total_bytes=total_bytes,
            on_complete=origin_on_complete,
        )
        self.flows[flow_id] = sender
        sender.start()
        return sender

    def close_flow(self, flow_id: str) -> None:
        """Terminate a server-side flow (idempotent)."""
        sender = self.flows.pop(flow_id, None)
        if sender is not None:
            sender.close()
        proxy = self._split_proxies.pop(flow_id, None)
        if proxy is not None:
            proxy.close()

    def on_segment(self, segment: TcpSegment) -> None:
        """Segment arriving from the wired core (normally a client ACK)."""
        sender = self.flows.get(segment.flow_id)
        if sender is None:
            return
        if segment.is_ack:
            sender.on_ack(segment)


class World:
    """Everything outside the mobile client."""

    def __init__(
        self,
        sim: Simulator,
        data_rate_bps: float = 11e6,
        range_m: float = 100.0,
        loss_rate: float = 0.1,
        wired_latency_s: float = DEFAULT_WIRED_LATENCY_S,
        transport: Optional[TransportSpec] = None,
        contention: Optional[ContentionSpec] = None,
        contention_vector: Optional[bool] = None,
    ):
        self.sim = sim
        self.medium = Medium(
            sim,
            data_rate_bps=data_rate_bps,
            range_m=range_m,
            loss_rate=loss_rate,
            contention=contention,
            contention_vector=contention_vector,
        )
        self.wired_latency_s = wired_latency_s
        #: World-wide transport defaults (CC selection, AP splitting, TCP
        #: knobs); the frozen default reproduces the seed exactly.
        self.transport = transport or TransportSpec()
        #: World-wide contention selection (``None``: the historical global
        #: per-channel FIFO).  ``beacon_stagger`` reaches every AP this
        #: world creates, independent of whether CSMA/CA itself is on.
        self.contention = contention
        self.server = ServerHost(self)
        self.aps: Dict[str, AccessPoint] = {}
        self._ap_by_subnet: Dict[str, AccessPoint] = {}
        self._next_ap_index = 1
        self._next_flow_index = 1

    def next_flow_id(self) -> str:
        """Allocate a world-unique flow id (``flow1``, ``flow2``, ...).

        World-scoped rather than process-global so the ids — which leak
        into telemetry events — are deterministic for a given simulation
        regardless of how trials are packed into worker processes.
        """
        flow_id = f"flow{self._next_flow_index}"
        self._next_flow_index += 1
        return flow_id

    # ------------------------------------------------------------------
    # Topology construction
    # ------------------------------------------------------------------
    def add_ap(
        self,
        channel: int,
        position: Tuple[float, float],
        bssid: Optional[str] = None,
        subnet: Optional[str] = None,
        backhaul_rate_bps: float = 1.5e6,
        backhaul_latency_s: float = 0.02,
        dhcp_response_delay: Optional[Callable[[], float]] = None,
        ssid: Optional[str] = None,
    ) -> AccessPoint:
        """Create an AP, wire its uplink, and register its subnet route."""
        index = self._next_ap_index
        self._next_ap_index += 1
        if bssid is None:
            bssid = f"ap{index:03d}"
        if subnet is None:
            subnet = f"10.{index}.0"
        ap = AccessPoint(
            self.sim,
            self.medium,
            bssid=bssid,
            channel=channel,
            position=position,
            subnet=subnet,
            backhaul_rate_bps=backhaul_rate_bps,
            backhaul_latency_s=backhaul_latency_s,
            dhcp_response_delay=dhcp_response_delay,
            ssid=ssid,
            beacon_stagger=bool(self.contention and self.contention.beacon_stagger),
        )
        ap.uplink_handler = self._on_uplink
        self.aps[bssid] = ap
        # Later APs may deliberately share a subnet (IP-collision tests);
        # routing then prefers the most recently added AP, matching the
        # paper's "most recently assigned interface" rule.
        self._ap_by_subnet[subnet] = ap
        return ap

    def fail_ap(self, bssid: str) -> None:
        """Power an AP off (fault-injection convenience)."""
        self.aps[bssid].fail()

    def recover_ap(self, bssid: str) -> None:
        """Power a failed AP back on."""
        self.aps[bssid].recover()

    def ap_for_ip(self, ip: str) -> Optional[AccessPoint]:
        """The AP whose DHCP subnet owns the address, if any."""
        subnet = ip.rsplit(".", 1)[0]
        return self._ap_by_subnet.get(subnet)

    # ------------------------------------------------------------------
    # Wired routing
    # ------------------------------------------------------------------
    def send_to_ip(self, ip: str, kind: FrameKind, payload, size: int) -> None:
        """Route a packet from the server toward a client IP."""
        ap = self.ap_for_ip(ip)
        if ap is None:
            return
        self.sim.schedule(self.wired_latency_s, ap.deliver_downlink, ip, kind, payload, size)

    def _on_uplink(self, ap: AccessPoint, kind: FrameKind, payload, src_mac: str) -> None:
        """Traffic arriving at the AP's wired head-end."""
        if kind is FrameKind.DATA and isinstance(payload, TcpSegment):
            self.sim.schedule(self.wired_latency_s, self.server.on_segment, payload)
        elif kind is FrameKind.PING_REQUEST and isinstance(payload, dict):
            src_ip = payload.get("src_ip")
            if src_ip is None:
                return
            self.server.pings_echoed += 1
            # One wired leg to reach the server; send_to_ip adds the return leg.
            self.sim.schedule(
                self.wired_latency_s,
                self.send_to_ip,
                src_ip,
                FrameKind.PING_REPLY,
                dict(payload),
                PING_FRAME_BYTES,
            )
