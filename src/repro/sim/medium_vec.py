"""Array-backed delivery index for the wireless medium (numpy-accelerated).

City-scale worlds (the ``city`` town preset: ~10 km of route, >1000 APs)
make the per-object delivery scan in :mod:`repro.sim.radio` the dominant
cost: every frame walks tens of candidate stations in Python, calling
``position()``/``tuned_channel()``/``math.hypot`` per candidate.  This
module keeps the same *semantics* but does the candidate pruning over
numpy arrays:

* **Static stations** (APs: fixed position, fixed channel) live in
  per-channel coordinate arrays sorted by registration order.  A
  broadcast from a static sender — beacons, the single most common frame
  in any run — resolves to a cached, exact receiver table (geometry
  between static stations never changes), so repeat beacons cost a dict
  lookup instead of a scan.  Other senders prune the channel's statics
  with one vectorized squared-distance test.
* **Mobile stations** are snapshotted into position arrays with a drift
  allowance: a snapshot taken at ``t0`` stays valid while
  ``v_max * (now - t0)`` is under a slack budget, and the prefilter
  radius grows by the accumulated drift, so it can never discard a
  station that the exact check would keep.  ``v_max`` comes from the
  mobility models' ``max_speed_mps`` bound; stations without a declared
  bound fall back to the exact per-station scan.
* **Unicast** frames to a static receiver resolve through a BSSID index
  when every static on the channel promises ``accepts_only_own_id``
  (true of :class:`~repro.sim.ap.AccessPoint`).

Bit-identity contract
---------------------
The arrays are only ever a *conservative prefilter*: any candidate that
survives is re-checked with the exact scalar predicates (``math.hypot``
against ``range_m``, ``tuned_channel()``, ``accepts()``), and the
prefilter radius carries a small absolute margin so float noise in the
squared-distance form cannot drop a boundary case.  Survivors are merged
in registration order — exactly the order the scalar scan visits them —
so the loss draws consumed from the medium's seeded RNG stream line up
one-for-one with the scalar path and every trial result is byte-identical.
RSSI uses the same :func:`~repro.sim.radio.rssi_from_distance` on the
same ``math.hypot`` distance.

One behavioural assumption is inherited from the scalar path and relied
on here: a receiver's ``on_frame`` callback never *synchronously* mutates
another station's position or tuned channel (all cross-station
interaction in this codebase goes through ``Medium.transmit`` or the
event queue).  The A/B determinism suite (``tests/test_vector_determinism``)
pins this over whole town trials, fault plans included.

numpy is optional (the ``perf`` extra).  When it is missing,
:func:`make_index` returns ``None`` and the medium stays on the scalar
path, counting the event on the ``medium.vector_fallbacks`` obs counter.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .frames import BROADCAST, Frame

try:  # pragma: no cover - exercised via make_index() in both branches
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from .radio import rssi_from_distance

__all__ = ["VectorIndex", "make_index", "argsort_scan"]

#: Absolute slack added to every prefilter radius, metres.  Coordinates in
#: any world we simulate are O(10^4) m, where float64 squared-distance
#: error is O(10^-10) m — a micron of margin buries it while provably
#: never resurrecting an out-of-range station (the exact check still runs).
PREFILTER_MARGIN_M = 1e-6

#: Mobile-position snapshots are rebuilt once accumulated drift
#: (``v_max * elapsed``) exceeds this budget, metres.  At vehicular speeds
#: (~10 m/s) that is one rebuild every couple of simulated seconds.
SNAPSHOT_SLACK_M = 25.0

#: Below this many mobile stations the exact per-station scan beats the
#: numpy round-trip, so small worlds keep their scalar-speed behaviour.
SNAPSHOT_MIN_MOBILES = 12

#: Below this many statics on a channel the array prefilter is skipped.
PREFILTER_MIN_STATICS = 8

#: Sentinel snapshot meaning "some mobile has no usable speed bound".
_UNBOUNDED = object()


def make_index(medium) -> Optional["VectorIndex"]:
    """Build a :class:`VectorIndex` for ``medium``, or ``None`` sans numpy."""
    if _np is None:
        return None
    return VectorIndex(medium, _np)


def argsort_scan(rssis: Sequence[float], bssids: Sequence[str]):
    """Sort order for scan entries: descending RSSI, BSSID tie-break.

    Returns index positions matching ``sorted(key=(-rssi, bssid))`` —
    ``lexsort`` keys compare exactly like Python's tuple sort here (float
    and unicode comparisons are identical) — or ``None`` when numpy is
    unavailable and the caller should sort in Python.
    """
    if _np is None:
        return None
    neg_rssi = _np.array([-r for r in rssis], dtype=float)
    return _np.lexsort((_np.array(bssids), neg_rssi))


class _ChannelStatics:
    """All static stations tuned to one channel, in registration order."""

    __slots__ = ("entries", "by_id", "all_own_id", "xs", "ys", "dirty", "bcast")

    def __init__(self) -> None:
        #: ``(seq, station, x, y, ignores_beacons)`` sorted by ``seq``.
        #: Registration sequence numbers only ever grow, so appends keep
        #: the list sorted even across AP fail/recover cycles.
        self.entries: List[Tuple] = []
        self.by_id: Dict[str, Tuple] = {}
        self.all_own_id = True
        self.xs = None
        self.ys = None
        self.dirty = True
        #: Cached exact broadcast receiver tables, keyed by static sender.
        self.bcast: Dict[str, List[Tuple]] = {}


class _MobileSnapshot:
    """Mobile positions frozen at ``t0`` with a worst-case speed bound."""

    __slots__ = ("stations", "xs", "ys", "t0", "v_max", "cand")

    def __init__(self, stations, xs, ys, t0, v_max):
        self.stations = stations
        self.xs = xs
        self.ys = ys
        self.t0 = t0
        self.v_max = v_max
        #: Per-sender candidate lists pruned once for the snapshot's whole
        #: validity window (see :meth:`VectorIndex._prune_mobiles`).
        self.cand: Dict[str, Tuple] = {}


class VectorIndex:
    """Vectorized candidate selection for one :class:`~repro.sim.radio.Medium`.

    The medium notifies the index from ``register``/``unregister`` and asks
    :meth:`survivors` for the exact, registration-ordered receiver list of
    each delivery; the medium's shared apply loop then consumes loss draws
    and invokes callbacks exactly as the scalar scan would.
    """

    def __init__(self, medium, np_module) -> None:
        self._medium = medium
        self._np = np_module
        self._chan: Dict[int, _ChannelStatics] = {}
        self._snap = None
        self._mob_version = 0
        self._snap_version = -1

    # ------------------------------------------------------------------
    # Registration notifications
    # ------------------------------------------------------------------
    def add_static(self, station, channel: int, x: float, y: float) -> None:
        cs = self._chan.get(channel)
        if cs is None:
            cs = self._chan[channel] = _ChannelStatics()
        seq = self._medium._reg_seq[station.station_id]
        entry = (seq, station, x, y, bool(getattr(station, "ignores_beacons", False)))
        cs.entries.append(entry)
        cs.by_id[station.station_id] = entry
        if not getattr(station, "accepts_only_own_id", False):
            cs.all_own_id = False
        cs.dirty = True
        cs.bcast.clear()

    def remove_static(self, station_id: str, channel: int) -> None:
        cs = self._chan.get(channel)
        if cs is None or station_id not in cs.by_id:
            return
        del cs.by_id[station_id]
        cs.entries = [e for e in cs.entries if e[1].station_id != station_id]
        cs.all_own_id = all(
            getattr(e[1], "accepts_only_own_id", False) for e in cs.entries
        )
        cs.dirty = True
        cs.bcast.clear()

    def mobiles_changed(self) -> None:
        self._mob_version += 1

    # ------------------------------------------------------------------
    # Delivery-time candidate selection
    # ------------------------------------------------------------------
    def survivors(
        self, sender_id: str, frame: Frame, sx: float, sy: float
    ) -> List[Tuple]:
        """Exact receivers of ``frame``, in registration order.

        Each element is ``(seq, station, rssi, ignores_beacons, rx, ry,
        distance)``; every listed station has already passed the scalar
        path's full predicate set (channel, ``accepts``, exact ``hypot``
        range check).  ``(rx, ry)`` is the receiver position and
        ``distance`` the exact ``hypot`` distance the RSSI came from —
        the contended delivery tail feeds both to the receiver-side
        interference check, on the same floats the scalar walk would use.
        """
        medium = self._medium
        channel = frame.channel
        dst = None if frame.dst == BROADCAST else frame.dst
        range_m = medium.range_m
        # Static side: broadcast from a static sender (beacons — the hot
        # case by far) hits the cached exact receiver table directly.
        cs = self._chan.get(channel)
        if cs is None:
            stat = []
        elif dst is None and sender_id in cs.by_id:
            stat = cs.bcast.get(sender_id)
            if stat is None:
                stat = cs.bcast[sender_id] = self._scan_statics(
                    cs, sender_id, None, sx, sy, range_m
                )
        else:
            stat = self._static_survivors(cs, sender_id, dst, sx, sy, range_m)
        # Mobile side: per-sender candidate lists cached on the snapshot.
        mobiles = medium._mobile
        if not mobiles:
            return stat
        if len(mobiles) >= SNAPSHOT_MIN_MOBILES:
            snap = self._snap
            if (
                snap is None
                or snap is _UNBOUNDED
                or self._snap_version != self._mob_version
                or snap.v_max * (medium.sim.now - snap.t0) > SNAPSHOT_SLACK_M
            ):
                snap = self._mobile_snapshot()
            if snap is not None:
                candidates = snap.cand.get(sender_id)
                if candidates is None:
                    candidates = self._prune_mobiles(snap, sender_id, sx, sy, range_m)
                if not candidates:
                    return stat
                mob = self._scan_mobiles(
                    candidates, sender_id, channel, dst, sx, sy, range_m
                )
            else:
                mob = self._scan_mobiles(
                    mobiles.values(), sender_id, channel, dst, sx, sy, range_m
                )
        else:
            mob = self._scan_mobiles(
                mobiles.values(), sender_id, channel, dst, sx, sy, range_m
            )
        if not mob:
            return stat
        if not stat:
            return mob
        merged: List[Tuple] = []
        i = j = 0
        ns, nm = len(stat), len(mob)
        while i < ns and j < nm:
            if stat[i][0] < mob[j][0]:
                merged.append(stat[i])
                i += 1
            else:
                merged.append(mob[j])
                j += 1
        merged.extend(stat[i:])
        merged.extend(mob[j:])
        return merged

    # ------------------------------------------------------------------
    # Static side
    # ------------------------------------------------------------------
    def _static_survivors(
        self,
        cs: _ChannelStatics,
        sender_id: str,
        dst: Optional[str],
        sx: float,
        sy: float,
        range_m: float,
    ) -> List[Tuple]:
        """Static receivers for the cases :meth:`survivors` doesn't inline.

        Broadcast from a *static* sender resolves through the cached exact
        table in :meth:`survivors`; this method covers broadcast from
        mobile senders and all unicast.
        """
        if not cs.entries:
            return []
        if dst is None:
            return self._scan_statics(cs, sender_id, None, sx, sy, range_m)
        if cs.all_own_id:
            entry = cs.by_id.get(dst)
            if entry is None or dst == sender_id:
                return []
            distance = math.hypot(sx - entry[2], sy - entry[3])
            if distance > range_m:
                return []
            return [
                (
                    entry[0],
                    entry[1],
                    rssi_from_distance(distance),
                    entry[4],
                    entry[2],
                    entry[3],
                    distance,
                )
            ]
        return self._scan_statics(cs, sender_id, dst, sx, sy, range_m)

    def _scan_statics(
        self,
        cs: _ChannelStatics,
        sender_id: str,
        dst: Optional[str],
        sx: float,
        sy: float,
        range_m: float,
    ) -> List[Tuple]:
        entries = cs.entries
        if len(entries) >= PREFILTER_MIN_STATICS:
            np = self._np
            if cs.dirty:
                cs.xs = np.array([e[2] for e in entries], dtype=float)
                cs.ys = np.array([e[3] for e in entries], dtype=float)
                cs.dirty = False
            dx = cs.xs - sx
            dy = cs.ys - sy
            r = range_m + PREFILTER_MARGIN_M
            hits = np.nonzero(dx * dx + dy * dy <= r * r)[0]
            entries = [entries[i] for i in hits]
        out: List[Tuple] = []
        hypot = math.hypot
        for seq, station, x, y, ignores in entries:
            if station.station_id == sender_id:
                continue
            if dst is not None and not station.accepts(dst):
                continue
            distance = hypot(sx - x, sy - y)
            if distance > range_m:
                continue
            out.append(
                (seq, station, rssi_from_distance(distance), ignores, x, y, distance)
            )
        return out

    # ------------------------------------------------------------------
    # Mobile side
    # ------------------------------------------------------------------
    def _prune_mobiles(
        self, snap: _MobileSnapshot, sender_id: str, sx: float, sy: float, range_m: float
    ) -> Tuple:
        """Build and cache the sender's mobile candidate list for ``snap``.

        Pruned once per (sender, snapshot) with a radius that covers the
        snapshot's whole validity window: receivers drift at most
        ``SNAPSHOT_SLACK_M`` before a rebuild forces a fresh snapshot, and
        a mobile sender moves at most another slack's worth from where it
        stood when this list was built.  The cached list is therefore a
        superset of every per-delivery prefilter until the snapshot rolls
        over; the exact scan keeps the survivor set bit-identical.
        """
        np = self._np
        r = range_m + SNAPSHOT_SLACK_M + PREFILTER_MARGIN_M
        if sender_id in self._medium._mobile:
            r += SNAPSHOT_SLACK_M
        dx = snap.xs - sx
        dy = snap.ys - sy
        hits = np.nonzero(dx * dx + dy * dy <= r * r)[0]
        stations = snap.stations
        candidates = tuple(stations[i] for i in hits)
        snap.cand[sender_id] = candidates
        return candidates

    def _scan_mobiles(
        self,
        candidates,
        sender_id: str,
        channel: int,
        dst: Optional[str],
        sx: float,
        sy: float,
        range_m: float,
    ) -> List[Tuple]:
        seq_of = self._medium._reg_seq
        out: List[Tuple] = []
        hypot = math.hypot
        for station in candidates:
            sid = station.station_id
            if sid == sender_id:
                continue
            if station.tuned_channel() != channel:
                continue
            if dst is not None and not station.accepts(dst):
                continue
            rx, ry = station.position()
            distance = hypot(sx - rx, sy - ry)
            if distance > range_m:
                continue
            out.append(
                (
                    seq_of[sid],
                    station,
                    rssi_from_distance(distance),
                    getattr(station, "ignores_beacons", False),
                    rx,
                    ry,
                    distance,
                )
            )
        return out

    def _mobile_snapshot(self) -> Optional[_MobileSnapshot]:
        medium = self._medium
        now = medium.sim.now
        snap = self._snap
        if self._snap_version == self._mob_version and snap is not None:
            if snap is _UNBOUNDED:
                return None
            if snap.v_max * (now - snap.t0) <= SNAPSHOT_SLACK_M:
                return snap
        stations = tuple(medium._mobile.values())
        v_max = 0.0
        for station in stations:
            speed = getattr(station, "max_speed_mps", None)
            if not isinstance(speed, (int, float)) or not math.isfinite(speed):
                # No declared bound: the drift allowance would be unsound,
                # so this membership generation stays on the exact scan.
                self._snap = _UNBOUNDED
                self._snap_version = self._mob_version
                return None
            if speed > v_max:
                v_max = float(speed)
        np = self._np
        n = len(stations)
        xs = np.empty(n, dtype=float)
        ys = np.empty(n, dtype=float)
        for i, station in enumerate(stations):
            x, y = station.position()
            xs[i] = x
            ys[i] = y
        snap = _MobileSnapshot(stations, xs, ys, now, v_max)
        self._snap = snap
        self._snap_version = self._mob_version
        return snap
