"""Access points: beaconing, association handling, PSM buffering, backhaul.

An :class:`AccessPoint` is a static station on a fixed channel that

* beacons periodically (feeding opportunistic scanning),
* answers probe/auth/assoc requests with a small processing delay,
* runs a :class:`~repro.sim.dhcp.DhcpServer`,
* honours power-save mode: data destined to a PSM client is buffered until
  the client's PS-poll.  **Join traffic is never PSM-buffered** — the paper's
  core observation is that DHCP responses cannot be covered by power-save
  games, so an off-channel client simply misses them,
* bridges to the wired world through a rate/latency-limited
  :class:`BackhaulLink` in each direction (backhaul is typically the
  bottleneck, which is what makes multi-AP aggregation profitable at all).
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from .cc import TransportSpec
from .engine import PeriodicProcess, Simulator
from .frames import (
    ACK_FRAME_BYTES,
    BROADCAST,
    DHCP_FRAME_BYTES,
    MGMT_FRAME_BYTES,
    PING_FRAME_BYTES,
    DhcpMessage,
    Frame,
    FrameKind,
    TcpSegment,
)
from .dhcp import DhcpServer
from .radio import Medium
from .tcp import TCP_HEADER_BYTES, TcpReceiver, TcpSender

__all__ = ["BackhaulLink", "AccessPoint", "SplitTcpProxy", "BEACON_PERIOD_S"]

logger = logging.getLogger(__name__)

#: 802.11 beacon interval (~102.4 ms nominally).
BEACON_PERIOD_S = 0.1

#: AP-side processing delay for management responses, seconds.
AP_PROC_DELAY_S = 2.0e-3

#: Frames buffered per PSM client before tail drop.
PSM_BUFFER_DEPTH = 100


class BackhaulLink:
    """A serialized, fixed-latency pipe between an AP and the wired core."""

    def __init__(self, sim: Simulator, rate_bps: float, latency_s: float):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive: {rate_bps!r}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s!r}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.latency_s = latency_s
        self._busy_until = 0.0
        self.bytes_carried = 0

    def send(self, size_bytes: int, fn: Callable[..., None], *args: Any) -> None:
        """Deliver ``fn(*args)`` after serialization + propagation."""
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + size_bytes * 8.0 / self.rate_bps
        self.bytes_carried += size_bytes
        self.sim.schedule_at(self._busy_until + self.latency_s, fn, *args)


@dataclass
class _ClientState:
    """Per-associated-client bookkeeping at the AP."""

    mac: str
    psm: bool = False
    buffer: Deque[Frame] = field(default_factory=deque)
    associated_at: float = 0.0


class AccessPoint:
    """One 802.11 AP with a DHCP server and a backhaul.

    ``uplink_handler`` is installed by the :class:`~repro.sim.world.World`
    and receives every uplink payload that crosses the backhaul, as
    ``handler(ap, kind, payload, src_mac)``.
    """

    #: APs never move or retune, so the medium may index them spatially and
    #: per-channel instead of probing them on every delivery.
    is_static = True

    #: ``on_frame`` returns immediately for beacons (see below), so the
    #: vectorized medium may skip the call outright on beacon deliveries —
    #: loss draws, counters, and delivery hooks still run.
    ignores_beacons = True

    #: ``accepts`` matches the BSSID and nothing else, which lets the
    #: vectorized medium resolve unicast frames to static receivers
    #: through a BSSID index instead of calling ``accepts`` per station.
    accepts_only_own_id = True

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        bssid: str,
        channel: int,
        position: Tuple[float, float],
        subnet: str,
        backhaul_rate_bps: float = 1.5e6,
        backhaul_latency_s: float = 0.02,
        dhcp_response_delay: Optional[Callable[[], float]] = None,
        ssid: Optional[str] = None,
        beacon_period_s: float = BEACON_PERIOD_S,
        beacon_stagger: bool = False,
    ):
        self.sim = sim
        self.medium = medium
        self.station_id = bssid
        self.bssid = bssid
        self.ssid = ssid if ssid is not None else f"net-{bssid}"
        self.channel = channel
        self._position = position
        if dhcp_response_delay is None:
            rng = sim.rng(f"dhcp.{bssid}")
            dhcp_response_delay = lambda: rng.uniform(0.4, 1.2)  # noqa: E731
        self.dhcp = DhcpServer(sim, subnet=subnet, response_delay=dhcp_response_delay)
        self.downlink = BackhaulLink(sim, backhaul_rate_bps, backhaul_latency_s)
        self.uplink = BackhaulLink(sim, backhaul_rate_bps, backhaul_latency_s)
        self.backhaul_rate_bps = backhaul_rate_bps
        self.uplink_handler: Optional[Callable[["AccessPoint", FrameKind, Any, str], None]] = None
        self.clients: Dict[str, _ClientState] = {}
        #: Split-connection proxies terminating the wireless side of TCP
        #: flows at this AP, keyed by flow id (see :class:`SplitTcpProxy`).
        self.split_proxies: Dict[str, "SplitTcpProxy"] = {}
        self.frames_dropped_unassociated = 0
        self.frames_dropped_psm_overflow = 0
        self.beacon_period_s = beacon_period_s
        # Beacons are the single most common frame in any run and carry
        # identical content every period, so one shared Frame serves them
        # all: receivers and trace hooks only read frames, never retain or
        # mutate them.
        self._beacon_frame = Frame(
            kind=FrameKind.BEACON,
            src=bssid,
            dst=BROADCAST,
            size=MGMT_FRAME_BYTES,
            channel=channel,
            bssid=bssid,
            payload={"ssid": self.ssid},
        )
        #: Set while the AP is powered off by fault injection.
        self.failed = False
        self.failures = 0
        #: Deterministic per-AP beacon phase stagger: draw the phase from a
        #: per-BSSID stream instead of the shared ``beacon.phase`` stream,
        #: so co-channel APs never emit synchronized beacon bursts however
        #: registration is ordered.  Off by default — the shared stream is
        #: then consumed exactly as before, preserving byte-identity.
        self.beacon_stagger = beacon_stagger
        self._beacons = PeriodicProcess(
            sim,
            beacon_period_s,
            self._send_beacon,
            phase=self._draw_beacon_phase(),
        )
        medium.register(self)

    def _draw_beacon_phase(self) -> float:
        if self.beacon_stagger:
            rng = self.sim.rng(f"beacon.stagger.{self.bssid}")
        else:
            rng = self.sim.rng("beacon.phase")
        return rng.uniform(0, self.beacon_period_s)

    # ------------------------------------------------------------------
    # Station protocol
    # ------------------------------------------------------------------
    def position(self) -> Tuple[float, float]:
        """Current (x, y) coordinates in metres."""
        return self._position

    def tuned_channel(self) -> Optional[int]:
        """Channel the radio is currently listening on (None while resetting)."""
        return self.channel

    def accepts(self, dst: str) -> bool:
        """Whether a unicast frame addressed to ``dst`` is for this station."""
        return dst == self.bssid

    # ------------------------------------------------------------------
    # Beaconing / probing
    # ------------------------------------------------------------------
    def _send_beacon(self) -> None:
        self.medium.transmit(self, self._beacon_frame)

    def stop(self) -> None:
        """Stop beaconing (teardown helper for tests)."""
        self._beacons.stop()

    # ------------------------------------------------------------------
    # Fault injection: power cycling
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Power the AP off: no beacons, no reception, association state lost.

        DHCP server-side lease bindings survive (they live in the server's
        persistent store in real deployments), which is exactly what makes
        client-side lease caches pay off across a power cycle.
        """
        if self.failed:
            return
        self.failed = True
        self.failures += 1
        self._beacons.stop()
        self.medium.unregister(self.bssid)
        self.clients.clear()
        # Proxy state is RAM at the AP; a power cycle loses it.  Any wired
        # segments still arriving fall through to the ordinary downlink
        # path (both split halves share the origin's byte offsets, so the
        # end-to-end stream stays coherent).
        for proxy in list(self.split_proxies.values()):
            proxy.close()

    def recover(self) -> None:
        """Power the AP back on with a fresh beacon phase."""
        if not self.failed:
            return
        self.failed = False
        self.medium.register(self)
        # PeriodicProcess cannot restart; a recovered AP beacons anew with a
        # phase drawn from its beacon stream (a reboot re-randomizes the
        # beacon timing in real hardware too).
        self._beacons = PeriodicProcess(
            self.sim,
            self.beacon_period_s,
            self._send_beacon,
            phase=self._draw_beacon_phase(),
        )

    # ------------------------------------------------------------------
    # Channel assignment
    # ------------------------------------------------------------------
    def retune(self, channel: int) -> None:
        """Move the AP to ``channel`` (deployment-time reconfiguration).

        ``is_static`` promises the medium a fixed channel *after*
        registration, so retuning re-registers: the AP drops out of its
        old per-channel bins and into the new ones (any frames already in
        flight toward the old channel simply miss, as they would during a
        real retune).  Intended for channel-assignment experiments that
        rewrite a built town's channel map before traffic starts.
        """
        if channel == self.channel:
            return
        if not self.failed:
            self.medium.unregister(self.bssid)
        self.channel = channel
        # The shared beacon frame bakes the channel in; rebuild it.
        self._beacon_frame = Frame(
            kind=FrameKind.BEACON,
            src=self.bssid,
            dst=BROADCAST,
            size=MGMT_FRAME_BYTES,
            channel=channel,
            bssid=self.bssid,
            payload={"ssid": self.ssid},
        )
        if not self.failed:
            self.medium.register(self)

    # ------------------------------------------------------------------
    # Frame reception
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame, rssi: float) -> None:
        """Handle one received frame."""
        kind = frame.kind
        if kind is FrameKind.BEACON:
            # Neighbouring APs' beacons are by far the most common frame an
            # AP hears; they carry nothing an AP acts on.
            return
        if kind is FrameKind.PROBE_REQUEST:
            self._reply(
                FrameKind.PROBE_RESPONSE, frame.src, payload={"ssid": self.ssid}
            )
        elif kind is FrameKind.AUTH_REQUEST:
            self._reply(FrameKind.AUTH_RESPONSE, frame.src)
        elif kind is FrameKind.ASSOC_REQUEST:
            # (Re)association resets the client's session state: a client
            # returning after driving out of range must not inherit the
            # stale power-save flag and buffer from its previous visit.
            self.clients[frame.src] = _ClientState(
                mac=frame.src, associated_at=self.sim.now
            )
            self._reply(
                FrameKind.ASSOC_RESPONSE, frame.src, payload={"accepted": True}
            )
        elif kind is FrameKind.DISASSOC:
            self.clients.pop(frame.src, None)
        elif kind is FrameKind.PSM:
            state = self.clients.get(frame.src)
            if state is not None:
                state.psm = True
        elif kind is FrameKind.PS_POLL:
            self._handle_ps_poll(frame.src)
        elif kind is FrameKind.DHCP:
            message = frame.payload
            if isinstance(message, DhcpMessage):
                self.dhcp.handle(message, self._reply_dhcp)
        elif kind is FrameKind.PING_REQUEST:
            self._handle_ping(frame)
        elif kind is FrameKind.DATA:
            self._handle_uplink_data(frame)

    # ------------------------------------------------------------------
    # Management replies
    # ------------------------------------------------------------------
    def _reply(self, kind: FrameKind, dst: str, payload=None) -> None:
        self.sim.schedule(
            AP_PROC_DELAY_S,
            self.medium.transmit,
            self,
            Frame(
                kind=kind,
                src=self.bssid,
                dst=dst,
                size=MGMT_FRAME_BYTES,
                channel=self.channel,
                bssid=self.bssid,
                payload=payload,
            ),
        )

    def _reply_dhcp(self, message: DhcpMessage, delay_s: float) -> None:
        """DHCP answers are never PSM-buffered: off-channel clients miss them."""
        self.sim.schedule(
            delay_s,
            self.medium.transmit,
            self,
            Frame(
                kind=FrameKind.DHCP,
                src=self.bssid,
                dst=message.client_mac,
                size=DHCP_FRAME_BYTES,
                channel=self.channel,
                bssid=self.bssid,
                payload=message,
            ),
        )

    # ------------------------------------------------------------------
    # Power-save mode
    # ------------------------------------------------------------------
    def _handle_ps_poll(self, client_mac: str) -> None:
        state = self.clients.get(client_mac)
        if state is None:
            return
        state.psm = False
        while state.buffer:
            self.medium.transmit(self, state.buffer.popleft())

    # ------------------------------------------------------------------
    # Ping (LMM liveness + end-to-end join verification)
    # ------------------------------------------------------------------
    def _handle_ping(self, frame: Frame) -> None:
        payload = frame.payload if isinstance(frame.payload, dict) else {}
        dst_ip = payload.get("dst_ip")
        if dst_ip in (None, self.dhcp.gateway_ip):
            # Gateway ping: answer locally.
            self._send_ping_reply(frame.src, payload)
            return
        # End-to-end ping: cross the backhaul, let the wired side echo.
        self.uplink.send(
            frame.size, self._dispatch_uplink, FrameKind.PING_REQUEST, payload, frame.src
        )

    def _send_ping_reply(self, dst_mac: str, payload: dict) -> None:
        self.send_downlink_to_mac(
            dst_mac,
            Frame(
                kind=FrameKind.PING_REPLY,
                src=self.bssid,
                dst=dst_mac,
                size=PING_FRAME_BYTES,
                channel=self.channel,
                bssid=self.bssid,
                payload=dict(payload),
            ),
        )

    # ------------------------------------------------------------------
    # Uplink data path (client -> wired)
    # ------------------------------------------------------------------
    def _handle_uplink_data(self, frame: Frame) -> None:
        if frame.src not in self.clients:
            self.frames_dropped_unassociated += 1
            return
        if self.split_proxies:
            payload = frame.payload
            if isinstance(payload, TcpSegment) and payload.is_ack:
                proxy = self.split_proxies.get(payload.flow_id)
                if proxy is not None:
                    # ACK for the wireless side of a split flow: terminate
                    # it here instead of crossing the backhaul.
                    proxy.on_wireless_ack(payload)
                    return
        self.uplink.send(
            frame.size, self._dispatch_uplink, FrameKind.DATA, frame.payload, frame.src
        )

    def _dispatch_uplink(self, kind: FrameKind, payload: Any, src_mac: str) -> None:
        if self.uplink_handler is not None:
            self.uplink_handler(self, kind, payload, src_mac)

    # ------------------------------------------------------------------
    # Downlink data path (wired -> client)
    # ------------------------------------------------------------------
    def deliver_downlink(self, dst_ip: str, kind: FrameKind, payload: Any, size: int) -> None:
        """Entry point from the wired core: queue onto the backhaul."""
        self.downlink.send(size, self._downlink_arrived, dst_ip, kind, payload, size)

    def _downlink_arrived(self, dst_ip: str, kind: FrameKind, payload: Any, size: int) -> None:
        if self.split_proxies and kind is FrameKind.DATA and isinstance(payload, TcpSegment):
            proxy = self.split_proxies.get(payload.flow_id)
            if proxy is not None:
                # Wired half of a split flow terminates at the AP — even
                # while the client is off-channel, which is the point: the
                # origin connection never sees the wireless gap.
                proxy.on_wired_segment(payload)
                return
        client_mac = self.dhcp.mac_for_ip(dst_ip)
        if client_mac is None or client_mac not in self.clients:
            self.frames_dropped_unassociated += 1
            return
        self.send_downlink_to_mac(
            client_mac,
            Frame(
                kind=kind,
                src=self.bssid,
                dst=client_mac,
                size=size,
                channel=self.channel,
                bssid=self.bssid,
                payload=payload,
            ),
        )

    def send_downlink_to_mac(self, client_mac: str, frame: Frame) -> None:
        """Transmit to an associated client, honouring PSM buffering."""
        state = self.clients.get(client_mac)
        if state is None:
            self.frames_dropped_unassociated += 1
            return
        if state.psm:
            self._psm_buffer(state, frame)
            return
        self.medium.transmit(self, frame)

    def _psm_buffer(self, state: _ClientState, frame: Frame) -> None:
        if len(state.buffer) >= PSM_BUFFER_DEPTH:
            self.frames_dropped_psm_overflow += 1
            state.buffer.popleft()
        state.buffer.append(frame)

    def on_delivery_failed(self, frame: Frame) -> None:
        """Link-layer retries toward this client all failed.

        For data-plane frames to a still-associated client, the station is
        evidently asleep or mid-switch: mark it power-saving and re-queue
        the frame, exactly as production APs move unACKed frames to the PS
        queue.  Join-plane frames (auth/assoc/DHCP) are *not* rescued —
        that asymmetry is the paper's core premise.
        """
        if frame.kind not in (FrameKind.DATA, FrameKind.PING_REPLY):
            return
        state = self.clients.get(frame.dst)
        if state is None:
            self.frames_dropped_unassociated += 1
            return
        state.psm = True
        self._psm_buffer(state, frame)

    # ------------------------------------------------------------------
    def is_associated(self, client_mac: str) -> bool:
        """Whether the client MAC is currently associated."""
        return client_mac in self.clients

    def __repr__(self) -> str:
        return f"AccessPoint({self.bssid}, ch{self.channel}, {len(self.clients)} clients)"


class _WirelessRelaySender(TcpSender):
    """Wireless-side sender of a split connection.

    Unlike an origin sender, its ``total_bytes`` grows dynamically as the
    wired-side receiver delivers in-order bytes (``supply``), and the flow
    completes only once the upstream has signalled EOF (``mark_eof``) *and*
    every supplied byte is ACKed by the client.
    """

    def __init__(self, *args: Any, **kwargs: Any):
        kwargs.setdefault("total_bytes", 0)
        super().__init__(*args, **kwargs)
        self._eof = False

    def supply(self, nbytes: int) -> None:
        """More in-order bytes arrived from the wired side; extend and send."""
        if self.closed or nbytes <= 0:
            return
        self.total_bytes = (self.total_bytes or 0) + nbytes
        self._fill_window()

    def mark_eof(self) -> None:
        """The wired side has delivered everything the origin will send."""
        self._eof = True
        self._check_complete()

    def _check_complete(self) -> bool:
        if not self._eof:
            return False
        return super()._check_complete()


class SplitTcpProxy:
    """Split-connection TCP proxy at the AP (one per flow).

    Terminates the wired-side connection with a :class:`TcpReceiver` (its
    ACKs ride the uplink backhaul back to the origin server) and relays the
    delivered byte stream over a fresh wireless-side
    :class:`_WirelessRelaySender` whose segments go straight onto the air
    via the AP's normal downlink/PSM machinery.  Both halves share the
    origin flow's byte offsets, so the client's receiver — and its
    cumulative ACKs — need no awareness that the path was split.

    The payoff is the paper's Figs. 7/8 pathology in reverse: an
    off-channel dwell now times out only the last-hop connection, whose
    RTO/cwnd state rebuilds over one wireless RTT, while the origin
    connection keeps streaming into the proxy across the clean wired path.
    """

    def __init__(
        self,
        ap: AccessPoint,
        flow_id: str,
        server_ip: str,
        client_ip: str,
        transport: Optional[TransportSpec] = None,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ):
        self.ap = ap
        self.sim = ap.sim
        self.flow_id = flow_id
        self.client_ip = client_ip
        self.transport = transport or TransportSpec()
        self.expected_bytes = expected_bytes
        self.on_complete = on_complete
        self.closed = False
        self.wired_bytes_in = 0
        # Split instruments exist only on split flows (a non-default mode),
        # keeping default-path telemetry byte-identical to the seed.
        tele = self.sim.telemetry
        tele.counter("tcp.split.flows_opened").inc()
        tele.event("tcp.split.open", flow=flow_id, ap=ap.bssid)
        self._obs_relayed = tele.counter("tcp.split.relayed_bytes")
        self.relay = _WirelessRelaySender(
            self.sim,
            flow_id=flow_id,
            src_ip=server_ip,
            dst_ip=client_ip,
            transmit=self._transmit_wireless,
            transport=self.transport,
            on_complete=self._relay_complete,
        )
        self.receiver = TcpReceiver(
            self.sim,
            flow_id=flow_id,
            src_ip=client_ip,
            dst_ip=server_ip,
            send_ack=self._send_wired_ack,
            on_deliver=self._on_wired_deliver,
        )
        ap.split_proxies[flow_id] = self
        self.relay.start()

    # -- wired side ----------------------------------------------------
    def on_wired_segment(self, segment: TcpSegment) -> None:
        """Origin data arriving over the downlink backhaul."""
        if not self.closed:
            self.receiver.on_segment(segment)

    def _send_wired_ack(self, segment: TcpSegment) -> None:
        if self.closed:
            return
        self.ap.uplink.send(
            ACK_FRAME_BYTES, self.ap._dispatch_uplink, FrameKind.DATA, segment, self.ap.bssid
        )

    def _on_wired_deliver(self, nbytes: int) -> None:
        self.wired_bytes_in += nbytes
        self._obs_relayed.inc(nbytes)
        self.relay.supply(nbytes)
        if self.expected_bytes is not None and self.wired_bytes_in >= self.expected_bytes:
            self.relay.mark_eof()

    # -- wireless side -------------------------------------------------
    def _transmit_wireless(self, segment: TcpSegment) -> None:
        if self.closed:
            return
        client_mac = self.ap.dhcp.mac_for_ip(self.client_ip)
        if client_mac is None or client_mac not in self.ap.clients:
            # Client off this AP right now; the relay's own RTO recovers.
            self.ap.frames_dropped_unassociated += 1
            return
        self.ap.send_downlink_to_mac(
            client_mac,
            Frame(
                kind=FrameKind.DATA,
                src=self.ap.bssid,
                dst=client_mac,
                size=segment.payload_bytes + TCP_HEADER_BYTES,
                channel=self.ap.channel,
                bssid=self.ap.bssid,
                payload=segment,
            ),
        )

    def on_wireless_ack(self, segment: TcpSegment) -> None:
        """Client ACK for relayed data (terminated here, not forwarded)."""
        if not self.closed:
            self.relay.on_ack(segment)

    # -- lifecycle -----------------------------------------------------
    def _relay_complete(self) -> None:
        finished_cb = self.on_complete
        self.close()
        if finished_cb is not None:
            finished_cb()

    def close(self) -> None:
        """Tear down both halves (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self.relay.close()
        self.ap.split_proxies.pop(self.flow_id, None)
