"""Deterministic fault injection: scheduled and stochastic failure events.

Real vehicular Wi-Fi fails in correlated bursts — APs power-cycle, DHCP
servers stall or NAK storms of stale bindings, lease pools run dry, and
the channel itself alternates between clean and terrible (measurement
studies consistently reject the i.i.d.-loss picture).  This module turns
those hazards into first-class, *reproducible* simulation inputs:

* a :class:`FaultPlan` is a frozen, picklable tuple of fault events, so it
  can ride inside a trial spec across process boundaries and participate
  in spec equality;
* :func:`install_faults` expands the plan against a built world, scheduling
  every action off the engine clock.  All randomness (stochastic outage
  arrival times, unspecified targets) is drawn at install time from the
  dedicated ``faults.*`` streams of :meth:`Simulator.rng`, so a faulted run
  is bit-identical for the same seed and a fault-free run consumes *zero*
  extra randomness;
* :class:`GilbertElliottLoss` is a lazy continuous-time two-state loss
  model the :class:`~repro.sim.radio.Medium` consults per delivery —
  bursty ``h`` alongside the default i.i.d. one.

Events target a specific AP by BSSID, or pass ``bssid=None``: AP-level
events then draw a victim from the ``faults.target`` stream, while
DHCP-level events apply to **every** server (the common failure domain —
many open APs behind one flaky upstream relay).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from .engine import Simulator
from .world import World

__all__ = [
    "ApOutage",
    "ApFlap",
    "DhcpStall",
    "DhcpNakBurst",
    "LeaseExhaustion",
    "BurstyLoss",
    "RandomOutages",
    "FaultEvent",
    "FaultPlan",
    "GilbertElliottLoss",
    "FaultInjector",
    "install_faults",
]


# ----------------------------------------------------------------------
# Event vocabulary (all frozen + picklable: they live inside trial specs)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApOutage:
    """Take one AP off the air at ``at_s``; recover after ``duration_s``.

    ``duration_s=math.inf`` kills the AP for good.  ``bssid=None`` draws
    the victim from the ``faults.target`` stream at install time.
    """

    at_s: float
    duration_s: float = math.inf
    bssid: Optional[str] = None


@dataclass(frozen=True)
class ApFlap:
    """Power-cycle one AP ``count`` times: down ``down_s``, up ``up_s``."""

    start_s: float
    count: int = 3
    down_s: float = 2.0
    up_s: float = 3.0
    bssid: Optional[str] = None


@dataclass(frozen=True)
class DhcpStall:
    """DHCP servers drop every message in the window (relay outage)."""

    at_s: float
    duration_s: float
    bssid: Optional[str] = None  # None: every server in the world


@dataclass(frozen=True)
class DhcpNakBurst:
    """Servers forget bindings and NAK every REQUEST in the window."""

    at_s: float
    duration_s: float
    bssid: Optional[str] = None  # None: every server in the world


@dataclass(frozen=True)
class LeaseExhaustion:
    """Servers stop allocating to *new* clients in the window."""

    at_s: float
    duration_s: float
    bssid: Optional[str] = None  # None: every server in the world


@dataclass(frozen=True)
class BurstyLoss:
    """Switch the medium to a Gilbert–Elliott loss chain for the window."""

    at_s: float
    duration_s: float = math.inf
    h_good: float = 0.02
    h_bad: float = 0.6
    mean_good_s: float = 4.0
    mean_bad_s: float = 1.0


@dataclass(frozen=True)
class RandomOutages:
    """Poisson-arriving AP outages over ``[start_s, end_s)``.

    Arrival times, outage durations (exponential around ``mean_down_s``),
    and victims are all drawn at install time from the ``faults.schedule``
    and ``faults.target`` streams, so the realized schedule is a pure
    function of the simulator seed.
    """

    start_s: float
    end_s: float
    rate_per_min: float = 2.0
    mean_down_s: float = 4.0


FaultEvent = Union[
    ApOutage, ApFlap, DhcpStall, DhcpNakBurst, LeaseExhaustion,
    BurstyLoss, RandomOutages,
]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable schedule of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        """Build a plan from positional events."""
        return cls(events=tuple(events))

    def __bool__(self) -> bool:
        return bool(self.events)


# ----------------------------------------------------------------------
# Bursty loss: lazy continuous-time Gilbert–Elliott chain
# ----------------------------------------------------------------------
class GilbertElliottLoss:
    """Two-state loss chain evaluated lazily in event time.

    State sojourns are exponential; the chain only advances when a
    delivery asks for the loss rate, and deliveries are processed in
    event order, so the trajectory is deterministic for a given RNG
    stream even though no per-state events are ever scheduled.
    """

    def __init__(
        self,
        rng: random.Random,
        h_good: float,
        h_bad: float,
        mean_good_s: float,
        mean_bad_s: float,
        start_s: float = 0.0,
    ):
        if not (0.0 <= h_good < 1.0 and 0.0 <= h_bad < 1.0):
            raise ValueError("loss rates must be in [0, 1)")
        if mean_good_s <= 0 or mean_bad_s <= 0:
            raise ValueError("state sojourn means must be positive")
        self._rng = rng
        self.h_good = h_good
        self.h_bad = h_bad
        self.mean_good_s = mean_good_s
        self.mean_bad_s = mean_bad_s
        self.in_bad = False
        self.transitions = 0
        self._until = start_s + rng.expovariate(1.0 / mean_good_s)

    def loss_rate_at(self, now: float) -> float:
        """Advance the chain to ``now`` and return the current loss rate."""
        while now >= self._until:
            self.in_bad = not self.in_bad
            self.transitions += 1
            mean = self.mean_bad_s if self.in_bad else self.mean_good_s
            self._until += self._rng.expovariate(1.0 / mean)
        return self.h_bad if self.in_bad else self.h_good


# ----------------------------------------------------------------------
# The injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Expands a :class:`FaultPlan` into scheduled actions on a world."""

    def __init__(self, sim: Simulator, world: World, plan: FaultPlan):
        self.sim = sim
        self.world = world
        self.plan = plan
        #: Fired actions as ``(time, action, target)`` — test/report aid.
        self.injected: List[Tuple[float, str, str]] = []
        self._installed = False
        # Mirror every activation into telemetry (no-ops when disabled):
        # a "fault" event per action plus a running count, so traces show
        # faults inline with the join spans they disrupt.
        self._obs = sim.telemetry
        self._obs_count = sim.telemetry.counter("faults.injected")

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Schedule every event in the plan (idempotence guarded)."""
        if self._installed:
            raise RuntimeError("fault plan already installed")
        self._installed = True
        for event in self.plan.events:
            self._install_event(event)

    def _install_event(self, event: FaultEvent) -> None:
        if isinstance(event, ApOutage):
            bssid = self._target_ap(event.bssid)
            self._at(event.at_s, self._fail_ap, bssid)
            if math.isfinite(event.duration_s):
                self._at(event.at_s + event.duration_s, self._recover_ap, bssid)
        elif isinstance(event, ApFlap):
            bssid = self._target_ap(event.bssid)
            t = event.start_s
            for _ in range(event.count):
                self._at(t, self._fail_ap, bssid)
                self._at(t + event.down_s, self._recover_ap, bssid)
                t += event.down_s + event.up_s
        elif isinstance(event, DhcpStall):
            self._at(
                event.at_s, self._dhcp_window, "stall", event.bssid,
                event.at_s + event.duration_s,
            )
        elif isinstance(event, DhcpNakBurst):
            self._at(
                event.at_s, self._dhcp_window, "nak", event.bssid,
                event.at_s + event.duration_s,
            )
        elif isinstance(event, LeaseExhaustion):
            self._at(
                event.at_s, self._dhcp_window, "exhaust", event.bssid,
                event.at_s + event.duration_s,
            )
        elif isinstance(event, BurstyLoss):
            self._at(event.at_s, self._bursty_on, event)
            if math.isfinite(event.duration_s):
                self._at(event.at_s + event.duration_s, self._bursty_off)
        elif isinstance(event, RandomOutages):
            self._expand_random_outages(event)
        else:
            raise TypeError(f"unknown fault event {event!r}")

    def _expand_random_outages(self, event: RandomOutages) -> None:
        if event.rate_per_min <= 0 or event.end_s <= event.start_s:
            return
        schedule_rng = self.sim.rng("faults.schedule")
        target_rng = self.sim.rng("faults.target")
        bssids = sorted(self.world.aps)
        t = event.start_s
        while True:
            t += schedule_rng.expovariate(event.rate_per_min / 60.0)
            if t >= event.end_s:
                break
            down_s = schedule_rng.expovariate(1.0 / event.mean_down_s)
            bssid = target_rng.choice(bssids) if bssids else None
            if bssid is None:
                continue
            self._at(t, self._fail_ap, bssid)
            self._at(t + down_s, self._recover_ap, bssid)

    # ------------------------------------------------------------------
    def _at(self, time_s: float, fn, *args) -> None:
        self.sim.schedule_at(max(time_s, self.sim.now), fn, *args)

    def _target_ap(self, bssid: Optional[str]) -> str:
        if bssid is not None:
            return bssid
        bssids = sorted(self.world.aps)
        if not bssids:
            raise ValueError("fault plan targets an AP but the world has none")
        return self.sim.rng("faults.target").choice(bssids)

    def _servers(self, bssid: Optional[str]):
        if bssid is not None:
            ap = self.world.aps.get(bssid)
            return [(bssid, ap.dhcp)] if ap is not None else []
        return [(b, self.world.aps[b].dhcp) for b in sorted(self.world.aps)]

    # ------------------------------------------------------------------
    # Actions (fire on the engine clock)
    # ------------------------------------------------------------------
    def _record(self, action: str, target: str) -> None:
        self.injected.append((self.sim.now, action, target))
        self._obs_count.inc()
        self._obs.event("fault", action=action, target=target)

    def _fail_ap(self, bssid: str) -> None:
        ap = self.world.aps.get(bssid)
        if ap is not None and not ap.failed:
            ap.fail()
            self._record("ap_fail", bssid)

    def _recover_ap(self, bssid: str) -> None:
        ap = self.world.aps.get(bssid)
        if ap is not None and ap.failed:
            ap.recover()
            self._record("ap_recover", bssid)

    def _dhcp_window(self, action: str, bssid: Optional[str], until_s: float) -> None:
        for target, server in self._servers(bssid):
            if action == "stall":
                server.stall(until_s)
            elif action == "nak":
                server.force_nak(until_s)
            else:
                server.exhaust(until_s)
            self._record(f"dhcp_{action}", target)

    def _bursty_on(self, event: BurstyLoss) -> None:
        model = GilbertElliottLoss(
            self.sim.rng("medium.gilbert"),
            h_good=event.h_good,
            h_bad=event.h_bad,
            mean_good_s=event.mean_good_s,
            mean_bad_s=event.mean_bad_s,
            start_s=self.sim.now,
        )
        self.world.medium.set_bursty_loss(model)
        self._record("bursty_on", "medium")

    def _bursty_off(self) -> None:
        self.world.medium.clear_bursty_loss()
        self._record("bursty_off", "medium")


def install_faults(
    sim: Simulator, world: World, plan: Optional[FaultPlan]
) -> Optional[FaultInjector]:
    """Install a plan against a built world; ``None``/empty plans are no-ops."""
    if not plan:
        return None
    injector = FaultInjector(sim, world, plan)
    injector.install()
    return injector
