"""Wireless medium: channels, range, airtime serialization, and loss.

The model is deliberately at the granularity the paper's analysis needs:

* **Channels** are orthogonal; a frame on channel 6 is invisible on 1 and 11.
* **Airtime** on a channel is serialized FIFO — a transmission begins when the
  channel is free, so stations sharing a channel share its capacity.  This is
  a first-order stand-in for CSMA/CA that preserves the "wireless bandwidth
  Bw is split among users of the channel" behaviour Eq. 8 assumes.  The
  serialization is *global* per channel; pass a
  :class:`~repro.sim.contention.ContentionSpec` to replace it with CSMA/CA
  per-cell spatial reuse (carrier-sense domains, backoff, hidden-terminal
  collisions) for dense multi-cell worlds.
* **Range** is a disk of radius ``range_m`` (the paper assumes 100 m).
* **Loss** is i.i.d. per delivery with probability ``loss_rate`` (the model's
  ``h``) for management-plane frames — beacons, probes, the association
  handshake, DHCP — matching the per-message loss the join model assumes.
  Unicast *data* frames (TCP segments, pings) additionally benefit from
  802.11 link-layer retransmission: their residual loss is
  ``h^(1+retry_limit)`` and their airtime is inflated by the expected
  number of transmissions ``1/(1-h)``.
* **RSSI** follows a log-distance path-loss curve and is reported to
  receivers so AP selection can break ties on signal strength.

Stations are any objects satisfying :class:`Station`; mobile clients and APs
both register with the medium.

Observability: delivered frames are visible to ``delivery_hooks``
subscribers such as :class:`repro.sim.tracing.FrameTrace`; frames killed by
the loss draw never reach the hooks and surface only through the
``medium.drops`` counter in :mod:`repro.obs` (mirroring ``frames_lost``).
"""

from __future__ import annotations

import logging
import math
import os
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Protocol, Tuple

from .contention import ContentionSpec, ContentionState
from .engine import Simulator
from .frames import BROADCAST, Frame, FrameKind

__all__ = [
    "Station",
    "Medium",
    "rssi_from_distance",
    "BATCH_ENV",
    "VECTOR_ENV",
    "BACKLOG_WARN_S",
]

logger = logging.getLogger(__name__)

#: Environment variable disabling per-channel delivery batching when set to
#: ``0``/``off``/``false`` (useful for A/B determinism tests and bisection).
BATCH_ENV = "REPRO_MEDIUM_BATCH"

#: Environment variable disabling the numpy-backed delivery index (see
#: :mod:`repro.sim.medium_vec`) when set to ``0``/``off``/``false``.  The
#: vector path is semantics-preserving, so the toggle exists for A/B
#: determinism tests, bisection, and perf comparisons — and the medium
#: falls back to the scalar scan on its own when numpy is not installed.
VECTOR_ENV = "REPRO_MEDIUM_VECTOR"


def _batching_enabled_from_env() -> bool:
    value = os.environ.get(BATCH_ENV, "").strip().lower()
    return value not in ("0", "off", "false", "no")


def _vector_enabled_from_env() -> bool:
    value = os.environ.get(VECTOR_ENV, "").strip().lower()
    return value not in ("0", "off", "false", "no")

#: Frame kinds that enjoy 802.11 link-layer retransmission (data plane).
_RETRIED_KINDS = frozenset(
    {FrameKind.DATA, FrameKind.PING_REQUEST, FrameKind.PING_REPLY}
)

#: 802.11 retry limit applied to data-plane unicast frames.
DATA_RETRY_LIMIT = 3

#: Per-frame fixed MAC/PHY overhead added to airtime, seconds (preamble,
#: DIFS/SIFS, link-layer ACK).  A round number in the right regime.
FRAME_OVERHEAD_S = 3.0e-4

#: One-way propagation delay, seconds.  Negligible at Wi-Fi ranges but kept
#: non-zero so event ordering between tx and rx is unambiguous.
PROPAGATION_DELAY_S = 1.0e-6

#: A channel backlog (time a new frame waits for the air) beyond this many
#: seconds of sim time indicates the medium is saturated — the dense-world
#: failure mode the contention model exists to fix.  Crossing it bumps the
#: ``medium.backlog_warnings`` counter (once per channel) and logs.
BACKLOG_WARN_S = 1.0

#: Below this many registered stations the scalar scan (with its cached
#: candidate lists) beats the array round-trip, so the vector index engages
#: only once the world is dense enough to pay for it.  Both paths are
#: byte-identical, so the crossover may be chosen — and even crossed
#: mid-run as stations register — purely on speed.
VECTOR_MIN_STATIONS = 64


def rssi_from_distance(distance_m: float) -> float:
    """Log-distance path-loss RSSI estimate in dBm.

    Calibrated so that ~1 m gives -40 dBm and 100 m (edge of the paper's
    assumed range) gives roughly -90 dBm.
    """
    d = max(distance_m, 1.0)
    return -40.0 - 25.0 * math.log10(d)


class Station(Protocol):
    """What the medium requires of a registered radio endpoint.

    Stations may additionally expose ``is_static = True`` to promise that
    their position *and* tuned channel never change after registration
    (true of access points).  The medium indexes static stations by channel
    and coarse spatial bin so delivery never iterates the whole town.
    """

    station_id: str

    def position(self) -> Tuple[float, float]:
        """Current (x, y) coordinates in metres."""
        ...

    def tuned_channel(self) -> Optional[int]:
        """Channel the radio is listening on, or None if off/resetting."""
        ...

    def accepts(self, dst: str) -> bool:
        """True if a unicast frame addressed to ``dst`` is for this station.

        A physical client NIC accepts the MAC of every virtual interface it
        hosts; an AP accepts its BSSID.
        """
        ...

    def on_frame(self, frame: Frame, rssi: float) -> None:
        """Deliver a received frame."""
        ...


class Medium:
    """The shared wireless medium.

    Parameters
    ----------
    sim:
        Owning simulator.
    data_rate_bps:
        Channel bit rate; the paper's Bw = 11 Mb/s by default.
    range_m:
        Radio range (disk model); 100 m per the paper.
    loss_rate:
        i.i.d. per-delivery frame-loss probability ``h``.
    """

    def __init__(
        self,
        sim: Simulator,
        data_rate_bps: float = 11e6,
        range_m: float = 100.0,
        loss_rate: float = 0.1,
        batch_delivery: Optional[bool] = None,
        vector_delivery: Optional[bool] = None,
        contention: Optional[ContentionSpec] = None,
        contention_vector: Optional[bool] = None,
    ):
        # ``isfinite`` guards are explicit: ``nan`` slips through plain
        # ``<=`` comparisons (every comparison with nan is False) and
        # ``inf`` satisfies ``> 0``, yet both poison airtime and range
        # arithmetic far from here.
        if not math.isfinite(loss_rate) or not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate!r}")
        if not math.isfinite(data_rate_bps) or data_rate_bps <= 0:
            raise ValueError(
                f"data_rate_bps must be positive and finite: {data_rate_bps!r}"
            )
        if not math.isfinite(range_m) or range_m <= 0:
            raise ValueError(f"range_m must be positive and finite: {range_m!r}")
        self.sim = sim
        self.data_rate_bps = data_rate_bps
        self.range_m = range_m
        self.loss_rate = loss_rate
        self._one_minus_loss = 1.0 - loss_rate
        self._stations: Dict[str, Station] = {}
        self._busy_until: Dict[int, float] = {}
        self._rng = sim.rng("medium.loss")
        # Delivery-path index.  Static stations (APs: fixed position, fixed
        # channel) are binned by (channel, cell) with cell edge = range_m,
        # so any in-range static receiver is in the 3x3 neighbourhood of
        # the sender's cell.  Mobile stations (a handful of vehicles vs.
        # hundreds of APs) are kept in a flat dict and always probed.
        # ``_reg_seq`` preserves registration order: candidates are visited
        # in that order so loss draws and callbacks consume randomness
        # exactly as the un-indexed implementation did.
        # Optional bursty-loss override (Gilbert–Elliott chain installed by
        # the fault injector).  None means the i.i.d. ``loss_rate`` applies.
        self._bursty = None
        self._bin_m = max(range_m, 1.0)
        self._static_bins: Dict[Tuple[int, int, int], List[Station]] = {}
        self._static_where: Dict[str, Tuple[int, int, int]] = {}
        self._mobile: Dict[str, Station] = {}
        self._reg_seq: Dict[str, int] = {}
        self._reg_counter = 0
        # Candidate lists are a pure function of (channel, sender cell) and
        # the registration set: static bins never move and the mobile list
        # is membership-only.  Cache them and invalidate on (un)register so
        # the delivery hot path skips the 3x3 bin walk and the sort.
        self._cand_cache: Dict[Tuple[int, int, int], List[Station]] = {}
        # Frame-event batching: instead of one engine event per frame, each
        # channel keeps a FIFO of (deliver_time, sender_id, frame) and a
        # single in-flight drain event.  The drain delivers every queued
        # frame that falls inside the current event horizon (see
        # Simulator.peek_next_event_time) by warping the clock to each
        # frame's true completion time, so back-to-back bursts on a busy
        # channel cost one engine event instead of one per frame while
        # remaining byte-identical to per-frame scheduling.
        if batch_delivery is None:
            batch_delivery = _batching_enabled_from_env()
        self.batch_delivery = bool(batch_delivery)
        # Per-channel [pending deque of (deliver_time, sender_id, frame),
        # drain-event-in-flight flag] — one dict lookup on the transmit
        # hot path covers both.
        self._chan_state: Dict[int, List] = {}
        #: Optional observers called as fn(frame, receiver_id) on delivery.
        self.delivery_hooks: List[Callable[[Frame, str], None]] = []
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        # Lost frames never reach delivery_hooks, so FrameTrace
        # (sim/tracing.py) cannot see them; the obs counter is the only
        # place drops surface.  Cached here so the disabled path pays a
        # single no-op call on the (rare) loss branch.
        self._obs_drops = sim.telemetry.counter("medium.drops")
        # Channel backlog diagnosis: ``channel_busy_until`` was consulted
        # internally but never exposed, so a saturated channel (the dense
        # world's 10+ s beacon backlogs) was invisible from telemetry.  The
        # gauge tracks the high-water wait a frame saw before its airtime
        # began; the counter trips once per channel past BACKLOG_WARN_S.
        # Both are created unconditionally (like ``medium.drops``) so every
        # telemetry export carries them and A/B runs stay byte-comparable.
        self._obs_backlog = sim.telemetry.gauge("medium.backlog_s")
        self._obs_backlog_warnings = sim.telemetry.counter("medium.backlog_warnings")
        self._backlog_warned: set = set()
        # Vectorized candidate selection (repro.sim.medium_vec): numpy
        # arrays prune receiver candidates, the exact scalar predicates
        # confirm survivors, and the shared apply loop below consumes the
        # loss stream in registration order — byte-identical results, one
        # array pass instead of a Python scan.  Created unconditionally so
        # the counter appears (at zero) in every telemetry export and A/B
        # runs stay byte-comparable; nondeterministic because its value
        # reflects the host's installed packages, not the seed.
        self._obs_vector_fallbacks = sim.telemetry.counter(
            "medium.vector_fallbacks", deterministic=False
        )
        if vector_delivery is None:
            vector_delivery = _vector_enabled_from_env()
        self._vec = None
        if vector_delivery:
            from .medium_vec import make_index

            self._vec = make_index(self)
            if self._vec is None:
                # numpy missing: graceful scalar fallback, surfaced only
                # through the obs counter (per-Medium, so one per world).
                self._obs_vector_fallbacks.inc()
        self.vector_delivery = self._vec is not None
        # CSMA/CA contention with per-cell spatial reuse (see
        # repro.sim.contention).  Built last: the state machine reuses the
        # spatial binning configured above.  ``None`` and a disabled spec
        # are byte-identical — the state (and its dedicated RNG stream)
        # only exists when the model is actually on.  The array-backed
        # state (repro.sim.contention_vec) is picked unless
        # REPRO_CONTENTION_VECTOR (or the explicit ``contention_vector``
        # argument) pins the scalar one; like the delivery index, the
        # fallback counter is created unconditionally and flagged
        # nondeterministic (it reflects installed packages, not the seed).
        self._obs_contention_fallbacks = sim.telemetry.counter(
            "contention.vector_fallbacks", deterministic=False
        )
        self.contention_spec = contention
        self.contention: Optional[ContentionState] = None
        self.vector_contention = False
        if contention is not None and contention.enabled:
            from .contention_vec import make_contention_state

            state, fell_back = make_contention_state(
                self, contention, contention_vector
            )
            if fell_back:
                self._obs_contention_fallbacks.inc()
            self.contention = state
            self.vector_contention = state.is_vector
        #: Frames destroyed by hidden-terminal collisions (contention mode
        #: only; mirrored by the ``contention.collisions`` obs counter).
        self.frames_collided = 0
        # Contention mode models each sender as a NIC with a FIFO transmit
        # queue whose *head* frame contends for the air; frames arriving
        # while the head is contending or in flight wait their turn.  A
        # sender_id key exists exactly while that sender has a head frame
        # outstanding.  (The legacy path needs none of this — its global
        # per-channel FIFO orders everything.)
        self._tx_queues: Dict[str, Deque[Frame]] = {}
        # Head frame currently *deferring* (contending but not yet
        # granted), per sender.  A management frame may preempt a
        # deferring data head — the NIC's internal priority scheduler —
        # whereas a granted head is already on the air and cannot be
        # recalled.
        self._tx_contending: Dict[str, Frame] = {}
        # Per-sender contention-chain generation, bumped on every
        # _transmit_contended entry.  Pending retry events carry the
        # generation they were scheduled under and no-op on mismatch.
        # Frame identity is not enough: a preempted head can be
        # re-promoted from the queue and defer again *before* its old
        # retry event fires, and that event would then see the same
        # frame object contending and fork a second concurrent chain.
        # Entries are never removed — monotonicity is the safety
        # property, and a re-registered sender id must not restart at a
        # generation an orphaned event might still carry.
        self._tx_gen: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _cell_of(self, channel: int, x: float, y: float) -> Tuple[int, int, int]:
        return (channel, int(x // self._bin_m), int(y // self._bin_m))

    def register(self, station: Station) -> None:
        """Add a station; id collisions are programming errors."""
        if station.station_id in self._stations:
            raise ValueError(f"duplicate station id {station.station_id!r}")
        self._stations[station.station_id] = station
        self._reg_seq[station.station_id] = self._reg_counter
        self._reg_counter += 1
        self._cand_cache.clear()
        channel = station.tuned_channel()
        if getattr(station, "is_static", False) and channel is not None:
            x, y = station.position()
            cell = self._cell_of(channel, x, y)
            self._static_bins.setdefault(cell, []).append(station)
            self._static_where[station.station_id] = cell
            if self._vec is not None:
                self._vec.add_static(station, channel, x, y)
        else:
            self._mobile[station.station_id] = station
            if self._vec is not None:
                self._vec.mobiles_changed()

    def unregister(self, station_id: str) -> None:
        """Remove a station from the medium."""
        self._stations.pop(station_id, None)
        self._reg_seq.pop(station_id, None)
        was_mobile = self._mobile.pop(station_id, None) is not None
        self._cand_cache.clear()
        cell = self._static_where.pop(station_id, None)
        if cell is not None:
            bucket = self._static_bins.get(cell, [])
            self._static_bins[cell] = [
                s for s in bucket if s.station_id != station_id
            ]
            if self._vec is not None:
                self._vec.remove_static(station_id, cell[0])
        elif was_mobile and self._vec is not None:
            self._vec.mobiles_changed()

    def stations(self) -> List[Station]:
        """All registered stations."""
        return list(self._stations.values())

    # ------------------------------------------------------------------
    def _is_retried(self, frame: Frame) -> bool:
        # Identity comparisons: enum members are singletons and the
        # frozenset-membership version spent measurable time in
        # ``Enum.__hash__`` on the delivery hot path.
        kind = frame.kind
        return (
            kind is FrameKind.DATA
            or kind is FrameKind.PING_REQUEST
            or kind is FrameKind.PING_REPLY
        ) and frame.dst != BROADCAST

    def airtime(self, frame: Frame) -> float:
        """Seconds of channel time a frame occupies.

        Data-plane unicast frames include the expected cost of link-layer
        retransmissions (``1/(1-h)`` transmissions on average).
        """
        base = frame.size * 8.0 / self.data_rate_bps + FRAME_OVERHEAD_S
        kind = frame.kind
        if (
            self.loss_rate > 0.0
            and (
                kind is FrameKind.DATA
                or kind is FrameKind.PING_REQUEST
                or kind is FrameKind.PING_REPLY
            )
            and frame.dst != BROADCAST
        ):
            # Division (not multiply-by-reciprocal) keeps the result
            # bit-identical to the historical ``base / (1 - h)``.
            return base / self._one_minus_loss
        return base

    def delivery_loss_probability(self, frame: Frame) -> float:
        """Residual loss probability after any link-layer retries.

        Reports the *stationary* (i.i.d. ``loss_rate``) figure; when a
        bursty model is installed the delivery path evaluates the
        time-varying rate via :meth:`_effective_loss` instead.
        """
        if self._is_retried(frame):
            return self.loss_rate ** (1 + DATA_RETRY_LIMIT)
        return self.loss_rate

    # ------------------------------------------------------------------
    # Bursty-loss override (fault injection)
    # ------------------------------------------------------------------
    def set_bursty_loss(self, model) -> None:
        """Route per-delivery loss through ``model.loss_rate_at(now)``.

        ``airtime`` keeps using the stationary ``loss_rate`` (it models the
        *average* retry cost); only the delivery coin-flip goes bursty.
        """
        self._bursty = model

    def clear_bursty_loss(self) -> None:
        """Return to the i.i.d. ``loss_rate`` model."""
        self._bursty = None

    @property
    def bursty_loss(self):
        """The installed bursty-loss model, if any."""
        return self._bursty

    def _effective_loss(self, frame: Frame) -> float:
        if self._bursty is None:
            h = self.loss_rate
        else:
            h = self._bursty.loss_rate_at(self.sim.now)
        kind = frame.kind
        if (
            kind is FrameKind.DATA
            or kind is FrameKind.PING_REQUEST
            or kind is FrameKind.PING_REPLY
        ) and frame.dst != BROADCAST:
            return h ** (1 + DATA_RETRY_LIMIT)
        return h

    def channel_busy_until(self, channel: int) -> float:
        """Absolute time the channel's current transmissions end.

        Under contention this is the latest busy horizon over the
        channel's carrier-sense cells — a diagnosis aid, not a sense
        point (sensing is per-cell).
        """
        if self.contention is not None:
            return self.contention.busy_until(channel)
        return self._busy_until.get(channel, 0.0)

    def _note_backlog(self, channel: int, wait_s: float) -> None:
        """Record the airtime wait a frame saw before transmitting."""
        self._obs_backlog.set_max(wait_s)
        if wait_s > BACKLOG_WARN_S and channel not in self._backlog_warned:
            self._backlog_warned.add(channel)
            self._obs_backlog_warnings.inc()
            logger.warning(
                "channel %d backlog %.2fs of sim time exceeds %.1fs: "
                "the medium is saturated (consider the contention model)",
                channel,
                wait_s,
                BACKLOG_WARN_S,
            )

    def transmit(self, sender: Station, frame: Frame) -> float:
        """Queue a frame for transmission on ``frame.channel``.

        Without contention, returns the absolute time at which the
        transmission completes.  The channel is serialized: the frame
        starts when the channel frees up.  Delivery (including the
        in-range and tuned checks) happens at completion time, so
        stations that moved away or retuned mid-flight miss the frame —
        exactly the hazard the join model studies.

        With contention enabled, serialization is per carrier-sense cell
        instead of global: the frame contends via CSMA/CA (DIFS + slotted
        backoff), may collide with hidden terminals, and is scheduled as
        its own engine event — concurrent cells complete out of FIFO
        order, which the per-channel drain queue cannot represent.  The
        completion time is then unknowable at transmit time (it depends
        on future backoff draws and queue preemption), so the return
        value is only a lower-bound *estimate* — do not pace off it.
        """
        now = self.sim.now
        channel = frame.channel
        if self.contention is not None:
            queue = self._tx_queues.get(sender.station_id)
            if queue is not None:
                # A frame from this sender is already contending or in
                # flight: queue behind it (one head frame per NIC, like
                # real hardware — also what keeps a TCP burst in order).
                # Management frames jump ahead of queued data (WMM-style
                # access categories): an AP mid-download must still answer
                # probes and handshakes before draining a ~30 ms TCP
                # burst, or every join under load times out.
                kind = frame.kind
                if (
                    kind is FrameKind.DATA
                    or kind is FrameKind.PING_REQUEST
                    or kind is FrameKind.PING_REPLY
                ):
                    queue.append(frame)
                    return now + self.airtime(frame)
                index = len(queue)
                for i, queued in enumerate(queue):
                    qk = queued.kind
                    if (
                        qk is FrameKind.DATA
                        or qk is FrameKind.PING_REQUEST
                        or qk is FrameKind.PING_REPLY
                    ):
                        index = i
                        break
                head = self._tx_contending.get(sender.station_id)
                hk = head.kind if head is not None else None
                if (
                    hk is FrameKind.DATA
                    or hk is FrameKind.PING_REQUEST
                    or hk is FrameKind.PING_REPLY
                ):
                    # The head is a data frame still *deferring* (its
                    # airtime is not booked): preempt it.  The handshake
                    # contends now (bumping the sender's chain
                    # generation, which orphans the data head's pending
                    # retry event); the data frame re-queues ahead of
                    # the other data.  A granted head is on the air and
                    # cannot be recalled.
                    queue.insert(index, head)
                    return self._transmit_contended(sender, frame, now)
                queue.insert(index, frame)
                return now + self.airtime(frame)
            self._tx_queues[sender.station_id] = deque()
            return self._transmit_contended(sender, frame, now)
        start = max(now, self._busy_until.get(channel, 0.0))
        done = start + self.airtime(frame)
        self._busy_until[channel] = done
        self.frames_sent += 1
        if start > now:
            self._note_backlog(channel, start - now)
        deliver_at = done + PROPAGATION_DELAY_S
        if not self.batch_delivery:
            self.sim.schedule_fire(deliver_at, self._deliver, sender.station_id, frame)
            return done
        state = self._chan_state.get(channel)
        if state is None:
            state = self._chan_state[channel] = [deque(), False]
        state[0].append((deliver_at, sender.station_id, frame))
        if not state[1]:
            # The drain event is scheduled eagerly at transmit time so its
            # heap position (and hence same-instant tie-breaking) matches
            # the per-frame event the unbatched path would have created.
            state[1] = True
            self.sim.schedule_fire(deliver_at, self._drain, channel)
        return done

    def _drain(self, channel: int) -> None:
        """Deliver queued frames for ``channel`` up to the event horizon.

        Frames are delivered strictly in completion-time order with the
        clock warped to each frame's own arrival time, so receivers observe
        positions, tuned channels, and timestamps exactly as they would
        under per-frame scheduling.  The loop stops at the first frame due
        beyond the horizon — the next live engine event or the active
        ``run(until=...)`` bound — because state may change there; a
        follow-up drain is scheduled for that frame instead.
        """
        state = self._chan_state[channel]
        pending = state[0]
        sim = self.sim
        first = True
        while pending:
            deliver_at = pending[0][0]
            if deliver_at > sim.now:
                # The horizon is re-read every iteration: a delivery's
                # callbacks may have scheduled new events inside the span
                # we measured before.
                horizon = sim.peek_next_event_time()
                bound = sim.run_until_bound()
                if bound < horizon:
                    horizon = bound
                if deliver_at > horizon:
                    sim.schedule_fire(deliver_at, self._drain, channel)
                    return
                sim.advance_clock(deliver_at)
            _, sender_id, frame = pending.popleft()
            if first:
                first = False  # the dispatching engine event counted itself
            else:
                sim.count_logical_event()
            self._deliver(sender_id, frame)
        state[1] = False

    def _transmit_contended(
        self,
        sender: Station,
        frame: Frame,
        first_attempt_s: float,
        airtime: Optional[float] = None,
        priority: bool = False,
    ) -> float:
        """CSMA/CA transmit for a sender's head frame: book or retry.

        An idle-medium grant books the frame's airtime and schedules its
        delivery; a busy medium books nothing and schedules a fresh
        attempt (re-sensing at the sender's then-current position) when
        the sensed air frees up.  ``first_attempt_s`` rides along so the
        backlog gauge reports the wait since the frame *first* tried,
        across every retry.  Each entry here starts a new contention
        chain for the sender: the generation bump invalidates any retry
        event still pending from a previous chain.  Returns the
        (possibly estimated) completion time; callers ignore it.
        """
        sender_id = sender.station_id
        gen = self._tx_gen.get(sender_id, 0) + 1
        self._tx_gen[sender_id] = gen
        sx, sy = sender.position()
        if airtime is None:
            # Computed once per frame and carried through every retry —
            # frame size never changes mid-chain.  (The position *is*
            # re-read per attempt: the sender may have moved.)
            airtime = self.airtime(frame)
            kind = frame.kind
            priority = not (
                kind is FrameKind.DATA
                or kind is FrameKind.PING_REQUEST
                or kind is FrameKind.PING_REPLY
            )
        granted, a, b = self.contention.acquire(
            sender_id, frame.channel, sx, sy, airtime, priority=priority
        )
        if not granted:
            self._tx_contending[sender_id] = frame
            # Fire-and-forget: stale retries are invalidated by the
            # generation token, never cancelled, so no handle is needed.
            self.sim.schedule_fire(
                a,
                self._retry_contended,
                sender_id,
                frame,
                first_attempt_s,
                gen,
                airtime,
                priority,
            )
            return a + airtime
        self._tx_contending.pop(sender_id, None)
        start, done = a, b
        self.frames_sent += 1
        if start > first_attempt_s:
            self._note_backlog(frame.channel, start - first_attempt_s)
        self.sim.schedule_fire(
            done + PROPAGATION_DELAY_S,
            self._deliver_contended,
            sender_id,
            frame,
            start,
            done,
        )
        return done

    def _retry_contended(
        self,
        sender_id: str,
        frame: Frame,
        first_attempt_s: float,
        gen: int,
        airtime: Optional[float] = None,
        priority: bool = False,
    ) -> None:
        """Re-contend for a deferred head frame."""
        if self._tx_gen.get(sender_id) != gen:
            # The sender's chain moved on while this retry sat in the
            # heap — a management frame preempted the head (it went back
            # into the queue), or the head was already re-promoted and
            # is contending under a newer generation.  Frame identity
            # cannot distinguish those cases (the same frame object may
            # legitimately be deferring again), so stale events check
            # the generation and no-op.
            return
        sender = self._stations.get(sender_id)
        if sender is None:
            # Sender vanished while waiting (e.g., torn down): its queued
            # frames die with it.
            self._tx_queues.pop(sender_id, None)
            self._tx_contending.pop(sender_id, None)
            return
        self._transmit_contended(sender, frame, first_attempt_s, airtime, priority)

    def _advance_tx_queue(self, sender_id: str) -> None:
        """The head frame finished: promote the next queued frame, if any."""
        queue = self._tx_queues.get(sender_id)
        if queue is None:
            return
        if not queue:
            del self._tx_queues[sender_id]
            return
        sender = self._stations.get(sender_id)
        if sender is None:
            del self._tx_queues[sender_id]
            return
        self._transmit_contended(sender, queue.popleft(), self.sim.now)

    def _deliver_contended(
        self, sender_id: str, frame: Frame, start: float, done: float
    ) -> None:
        """Delivery tail for the contention path: the scalar receiver scan
        plus the receiver-side hidden-terminal check.

        A candidate receiver whose own cell saw a foreign flight overlap
        ``[start, done)`` misses the frame without consuming a loss draw —
        interference destroyed it before channel noise got a say.
        Receivers outside the interferer's footprint still hear it.  A
        unicast frame whose destination was wiped fails exactly like an
        out-of-range one (the ACK never comes back), and additionally
        widens the sender's contention window.

        When the vector index is engaged, receiver resolution goes
        through the same survivor rows as the uncontended path (the rows
        carry each receiver's position and exact distance, which is all
        the per-receiver interference geometry needs) and
        :meth:`_apply_contended` runs the contended tail; otherwise the
        scalar candidate walk below does both.
        """
        sender = self._stations.get(sender_id)
        if sender is None:
            # Sender vanished mid-flight (e.g., torn down): its queued
            # frames die with it.
            self._tx_queues.pop(sender_id, None)
            self._tx_contending.pop(sender_id, None)
            return
        contention = self.contention
        sx, sy = sender.position()
        if self._vec is not None and len(self._stations) >= VECTOR_MIN_STATIONS:
            self._apply_contended(
                sender,
                frame,
                self._vec.survivors(sender_id, frame, sx, sy),
                start,
                done,
            )
            return
        receiver_reachable = False
        interfered_any = False
        loss_p = self._effective_loss(frame)
        channel = frame.channel
        dst = frame.dst
        broadcast = dst == BROADCAST
        range_m = self.range_m
        rng_random = self._rng.random
        hooks = self.delivery_hooks
        hypot = math.hypot
        for station, static_pos in self._candidates(channel, sx, sy):
            if station.station_id == sender_id:
                continue
            if static_pos is None:
                if station.tuned_channel() != channel:
                    continue
                if not broadcast and not station.accepts(dst):
                    continue
                rx, ry = station.position()
            else:
                if not broadcast and not station.accepts(dst):
                    continue
                rx, ry = static_pos
            distance = hypot(sx - rx, sy - ry)
            if distance > range_m:
                continue
            if contention.interfered(
                sender_id, channel, rx, ry, start, done, distance
            ):
                interfered_any = True
                continue
            receiver_reachable = True
            if rng_random() < loss_p:
                self.frames_lost += 1
                self._obs_drops.inc()
                continue
            self.frames_delivered += 1
            for hook in hooks:
                hook(frame, station.station_id)
            station.on_frame(frame, rssi_from_distance(distance))
        if interfered_any:
            self.frames_collided += 1
            contention.note_collision(
                sender_id, frame_failed=not broadcast and not receiver_reachable
            )
        if not broadcast and not receiver_reachable:
            failed = getattr(sender, "on_delivery_failed", None)
            if failed is not None:
                failed(frame)
        self._advance_tx_queue(sender_id)

    # ------------------------------------------------------------------
    def _candidates(
        self, frame_channel: int, sx: float, sy: float
    ) -> List[Tuple[Station, Optional[Tuple[float, float]]]]:
        """Receiver candidates: all mobiles + static stations near (sx, sy).

        Each entry is ``(station, pos)`` where ``pos`` is the fixed position
        of a static station (its ``is_static`` contract: position and tuned
        channel never change) or ``None`` for a mobile one, letting the
        delivery loop skip the per-frame position/tuned-channel calls for
        the static majority.  Sorted by registration order so the delivery
        loop is byte-for-byte deterministic with the historical scan over
        every station.  The list is a pure function of (channel, sender
        cell) and the current registration set, so it is cached until the
        next (un)register.
        """
        key = (frame_channel, int(sx // self._bin_m), int(sy // self._bin_m))
        cached = self._cand_cache.get(key)
        if cached is not None:
            return cached
        candidates: List[Tuple[Station, Optional[Tuple[float, float]]]] = [
            (s, None) for s in self._mobile.values()
        ]
        _, bx, by = key
        bins = self._static_bins
        for cx in (bx - 1, bx, bx + 1):
            for cy in (by - 1, by, by + 1):
                bucket = bins.get((frame_channel, cx, cy))
                if bucket:
                    candidates.extend((s, s.position()) for s in bucket)
        if len(candidates) > 1:
            seq = self._reg_seq
            candidates.sort(key=lambda c: seq[c[0].station_id])
        self._cand_cache[key] = candidates
        return candidates

    def _deliver(self, sender_id: str, frame: Frame) -> None:
        sender = self._stations.get(sender_id)
        if sender is None:
            return  # sender vanished mid-flight (e.g., torn down)
        sx, sy = sender.position()
        if self._vec is not None and len(self._stations) >= VECTOR_MIN_STATIONS:
            self._apply(
                sender, frame, self._vec.survivors(sender_id, frame, sx, sy)
            )
            return
        receiver_reachable = False
        loss_p = self._effective_loss(frame)
        channel = frame.channel
        dst = frame.dst
        broadcast = dst == BROADCAST
        range_m = self.range_m
        rng_random = self._rng.random
        hooks = self.delivery_hooks
        hypot = math.hypot
        for station, static_pos in self._candidates(channel, sx, sy):
            if station.station_id == sender_id:
                continue
            if static_pos is None:
                # Mobile: channel and position can change frame to frame.
                if station.tuned_channel() != channel:
                    continue
                if not broadcast and not station.accepts(dst):
                    continue
                rx, ry = station.position()
            else:
                # Static: the bin key already guarantees the channel match.
                if not broadcast and not station.accepts(dst):
                    continue
                rx, ry = static_pos
            distance = hypot(sx - rx, sy - ry)
            if distance > range_m:
                continue
            receiver_reachable = True
            if rng_random() < loss_p:
                self.frames_lost += 1
                self._obs_drops.inc()
                continue
            self.frames_delivered += 1
            for hook in hooks:
                hook(frame, station.station_id)
            station.on_frame(frame, rssi_from_distance(distance))
        if not broadcast and not receiver_reachable:
            # No eligible receiver: the link-layer ACK never comes back.
            # Senders that care (APs re-queueing toward sleeping clients)
            # implement on_delivery_failed.
            failed = getattr(sender, "on_delivery_failed", None)
            if failed is not None:
                failed(frame)

    def _apply(self, sender: Station, frame: Frame, survivors: List) -> None:
        """Deliver to a pre-resolved receiver list (the vector path's tail).

        ``survivors`` holds ``(seq, station, rssi, ignores_beacons, rx,
        ry, distance)`` rows in registration order, every row already
        past the exact channel, ``accepts`` and range predicates — so the
        loss draws taken here consume the ``medium.loss`` stream exactly
        as the scalar scan in :meth:`_deliver` does: one draw per
        in-range receiver, in registration order, interleaved with the
        receiver callbacks just like the scalar loop.  Beacon deliveries
        to stations declaring ``ignores_beacons`` skip the no-op
        ``on_frame`` call — counters, hooks, and the loss draw still
        happen, keeping every observable identical.  (The position/
        distance columns exist for :meth:`_apply_contended`.)
        """
        loss_p = self._effective_loss(frame)
        rng_random = self._rng.random
        hooks = self.delivery_hooks
        beacon = frame.kind is FrameKind.BEACON
        lost = 0
        delivered = 0
        for _seq, station, rssi, ignores_beacons, _rx, _ry, _dist in survivors:
            if rng_random() < loss_p:
                lost += 1
                continue
            delivered += 1
            if hooks:
                for hook in hooks:
                    hook(frame, station.station_id)
            if beacon and ignores_beacons:
                continue
            station.on_frame(frame, rssi)
        if delivered:
            self.frames_delivered += delivered
        if lost:
            self.frames_lost += lost
            self._obs_drops.inc(lost)
        if frame.dst != BROADCAST and not survivors:
            failed = getattr(sender, "on_delivery_failed", None)
            if failed is not None:
                failed(frame)

    def _apply_contended(
        self,
        sender: Station,
        frame: Frame,
        survivors: List,
        start: float,
        done: float,
    ) -> None:
        """Contended delivery to pre-resolved receivers (vector tail).

        Mirrors the scalar loop in :meth:`_deliver_contended` row for
        row: survivor rows arrive in registration order with the exact
        ``math.hypot`` distance the scalar walk would compute, each row
        runs the same receiver-side :meth:`ContentionState.interfered`
        check first (a wiped receiver consumes no loss draw), and the
        collision/window/failed-delivery accounting at the tail is the
        same code shape — so results, counters, and both RNG streams stay
        byte-identical whichever path resolved the receivers.
        """
        contention = self.contention
        sender_id = sender.station_id
        channel = frame.channel
        broadcast = frame.dst == BROADCAST
        loss_p = self._effective_loss(frame)
        rng_random = self._rng.random
        hooks = self.delivery_hooks
        beacon = frame.kind is FrameKind.BEACON
        # Flags are precomputed per delivery (one batched state call):
        # they consume no randomness and mid-delivery bookings can never
        # overlap this delivery, so the early evaluation is invisible to
        # the draw streams and the scalar walk's answers.
        wiped = (
            contention.interfered_rows(sender_id, channel, survivors, start, done)
            if survivors
            else ()
        )
        receiver_reachable = False
        interfered_any = False
        for hit, (_seq, station, rssi, ignores_beacons, _rx, _ry, _dist) in zip(
            wiped, survivors
        ):
            if hit:
                interfered_any = True
                continue
            receiver_reachable = True
            if rng_random() < loss_p:
                self.frames_lost += 1
                self._obs_drops.inc()
                continue
            self.frames_delivered += 1
            for hook in hooks:
                hook(frame, station.station_id)
            if beacon and ignores_beacons:
                continue
            station.on_frame(frame, rssi)
        if interfered_any:
            self.frames_collided += 1
            contention.note_collision(
                sender_id, frame_failed=not broadcast and not receiver_reachable
            )
        if not broadcast and not receiver_reachable:
            failed = getattr(sender, "on_delivery_failed", None)
            if failed is not None:
                failed(frame)
        self._advance_tx_queue(sender_id)
