"""Discrete-event wireless network substrate.

Everything the paper's testbed provided in hardware, rebuilt as a
timing-faithful simulator: an event engine, an 802.11 medium with channels
and loss, APs with DHCP servers / PSM buffering / backhaul bottlenecks
(plus optional split-connection TCP proxies), a packet-level TCP model with
pluggable congestion control (Reno/CUBIC/BBR-lite/QUIC-0RTT), mobility,
client NIC virtualization, and the stock-driver baseline.
"""

from .engine import EventHandle, PeriodicProcess, Simulator
from .frames import BROADCAST, DhcpMessage, Frame, FrameKind, TcpSegment
from .mobility import (
    LinearMobility,
    LoopMobility,
    MobilityModel,
    StaticPosition,
    VariableSpeedLoopMobility,
    circle_point,
    ring_distance,
)
from .radio import Medium, rssi_from_distance
from .nic import ScanEntry, ScanTable, VirtualInterface, WifiNic
from .mac import Associator, AssociationState
from .dhcp import DhcpClient, DhcpServer, LeaseCache
from .ap import AccessPoint, BackhaulLink, SplitTcpProxy
from .cc import (
    BbrLiteCC,
    CC_NAMES,
    CongestionController,
    CubicCC,
    QuicZeroRttCC,
    RenoCC,
    TransportSpec,
    make_controller,
    resolve_transport,
)
from .tcp import TcpParams, TcpReceiver, TcpSender
from .world import ServerHost, World
from .faults import (
    ApFlap,
    ApOutage,
    BurstyLoss,
    DhcpNakBurst,
    DhcpStall,
    FaultInjector,
    FaultPlan,
    GilbertElliottLoss,
    LeaseExhaustion,
    RandomOutages,
    install_faults,
)
from .traffic import ClientFlow, LivenessMonitor, PingService
from .metrics import JoinAttempt, JoinLog, ThroughputRecorder, segment_lengths
from .tracing import FrameTrace, TraceRecord
from .stock_client import StockClient

__all__ = [
    "EventHandle",
    "PeriodicProcess",
    "Simulator",
    "BROADCAST",
    "DhcpMessage",
    "Frame",
    "FrameKind",
    "TcpSegment",
    "LinearMobility",
    "LoopMobility",
    "MobilityModel",
    "StaticPosition",
    "VariableSpeedLoopMobility",
    "circle_point",
    "ring_distance",
    "Medium",
    "rssi_from_distance",
    "ScanEntry",
    "ScanTable",
    "VirtualInterface",
    "WifiNic",
    "Associator",
    "AssociationState",
    "DhcpClient",
    "DhcpServer",
    "LeaseCache",
    "AccessPoint",
    "BackhaulLink",
    "SplitTcpProxy",
    "BbrLiteCC",
    "CC_NAMES",
    "CongestionController",
    "CubicCC",
    "QuicZeroRttCC",
    "RenoCC",
    "TransportSpec",
    "make_controller",
    "resolve_transport",
    "TcpParams",
    "TcpReceiver",
    "TcpSender",
    "ServerHost",
    "World",
    "ApFlap",
    "ApOutage",
    "BurstyLoss",
    "DhcpNakBurst",
    "DhcpStall",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliottLoss",
    "LeaseExhaustion",
    "RandomOutages",
    "install_faults",
    "ClientFlow",
    "LivenessMonitor",
    "PingService",
    "JoinAttempt",
    "JoinLog",
    "ThroughputRecorder",
    "segment_lengths",
    "StockClient",
    "FrameTrace",
    "TraceRecord",
]
