"""Deterministic discrete-event simulation engine.

The engine is the foundation of the :mod:`repro.sim` substrate.  It provides

* a time-ordered event queue with stable FIFO ordering for simultaneous
  events (insertion order breaks ties, which keeps runs reproducible),
* cancellable timers,
* named, independently seeded random streams so that changing how one
  subsystem consumes randomness does not perturb another subsystem, and
* a tiny periodic-process helper used by beaconing, ping probers, and the
  link-management tick.

The design is intentionally callback-based rather than coroutine-based:
protocol logic in this package is written as explicit state machines, and
explicit machines are easier to unit-test and to reason about than implicit
generator state.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs.telemetry import NULL_TELEMETRY

__all__ = ["EventHandle", "Simulator", "PeriodicProcess"]

# The heap stores plain ``(time, seq, handle)`` tuples.  Tuple comparison is
# implemented in C and ``seq`` is unique, so ordering never falls through to
# the handle — measurably cheaper than a dataclass with ``order=True`` on
# the schedule/pop hot path.  Fire-and-forget events (schedule_fire) ride
# the same heap as ``(time, seq, None, fn, args)``: the unique ``seq``
# still breaks every tie, so mixed arities never compare past it.
_QueueEntry = Tuple[Any, ...]

#: Heaps smaller than this are never compacted (not worth the churn).
_COMPACT_MIN_QUEUE = 64


class EventHandle:
    """A cancellable reference to a scheduled event.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  Calling :meth:`cancel` before the event
    fires prevents the callback from running; cancelling after it fired is a
    harmless no-op.
    """

    __slots__ = ("fn", "args", "cancelled", "fired", "time", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., None],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        # Drop references eagerly so cancelled timers do not pin objects.
        self.fn = None
        self.args = ()
        if self._sim is not None:
            self._sim._note_cancelled()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not (self.cancelled or self.fired)


class Simulator:
    """A discrete-event simulator with deterministic execution.

    Parameters
    ----------
    seed:
        Base seed for all random streams.  Two simulators constructed with
        the same seed and driven by the same code execute identically.
    telemetry:
        An optional :class:`repro.obs.Telemetry` registry.  ``None`` (the
        default) binds the shared null registry, which keeps the hot loop
        untouched: ``run()`` checks ``telemetry.enabled`` once per call and
        only the profiled loop pays per-event instrumentation.  Telemetry
        never schedules events or consumes RNG, so enabling it does not
        perturb simulation results.
    """

    def __init__(self, seed: int = 0, telemetry=None):
        self.seed = seed
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.telemetry.bind_clock(self)
        self.now: float = 0.0
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._streams: Dict[str, random.Random] = {}
        self._running = False
        self.events_processed = 0
        # Live = scheduled, neither fired nor cancelled.  Tracking the two
        # counts makes pending_events() O(1) and tells us when the heap is
        # mostly dead weight and worth compacting.
        self._live = 0
        self._cancelled_in_queue = 0
        self.compactions = 0
        # Bound of the innermost active run(); +inf outside run().  Event
        # batchers (the medium's per-channel drain) must not warp the clock
        # past it, or frames due after ``until`` would be delivered early.
        self._run_until = math.inf

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use.

        Each stream is seeded from ``(base seed, stream name)`` so streams
        are mutually independent and stable across runs.
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._streams[name] = stream
        return stream

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run at absolute simulation ``time``."""
        if time != time:  # inline NaN check; math.isnan costs a call here
            raise ValueError("event time is NaN")
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._queue, (time, next(self._seq), handle))
        self._live += 1
        return handle

    def schedule_fire(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``time`` with no cancellation handle.

        The fire-and-forget twin of :meth:`schedule_at`, for hot callers
        whose events are never cancelled (the radio's contended retries
        are invalidated by generation tokens, not cancellation): it skips
        the :class:`EventHandle` allocation and the handle bookkeeping in
        the dispatch loop, which is measurable at a few hundred thousand
        schedules per contended city trial.  Dispatch order is identical
        to :meth:`schedule_at` — the heap orders on ``(time, seq)`` alone,
        so swapping one for the other never reorders events.
        """
        if time != time:  # inline NaN check; math.isnan costs a call here
            raise ValueError("event time is NaN")
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, next(self._seq), None, fn, args))
        self._live += 1

    # ------------------------------------------------------------------
    # Cancelled-event accounting (called by EventHandle.cancel)
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._live -= 1
        self._cancelled_in_queue += 1
        # Long drives cancel far more timers (link-layer retries, DHCP
        # budgets) than ever fire; compact once most of the heap is dead so
        # cancelled entries stop pinning memory and inflating pops.
        if (
            self._cancelled_in_queue * 2 > len(self._queue)
            and len(self._queue) >= _COMPACT_MIN_QUEUE
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (heapify is O(n)).

        Compaction mutates the list in place rather than rebinding
        ``self._queue`` so that ``run()``'s local alias to the queue stays
        valid when a callback's cancel triggers a compaction mid-run.
        """
        self._queue[:] = [e for e in self._queue if e[2] is None or not e[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Run events in order until the queue drains or ``until`` is reached.

        The clock is advanced to ``until`` at the end of the run (when
        ``until`` is finite), so periodic processes observe a full window.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        budget = math.inf if max_events is None else max_events
        self._run_until = until
        # Local aliases shave attribute lookups off the per-event cost;
        # _compact() mutates the queue list in place, so the alias survives
        # mid-run compactions.
        queue = self._queue
        heappop = heapq.heappop
        # Dispatch counters accumulate locally and flush in the finally
        # block: nothing reads events_processed or pending_events() from
        # inside a callback (count_logical_event's attribute increments
        # commute with the deferred flush), and two read-modify-write
        # attribute round-trips per event are measurable at city scale.
        dispatched = 0
        try:
            if self.telemetry.enabled:
                # Profiled twin of the loop below; selected once per run()
                # so the disabled path stays byte-identical to pre-telemetry.
                self._run_profiled(until, budget)
                if until != math.inf and until > self.now:
                    self.now = until
                return
            while queue:
                entry = queue[0]
                time = entry[0]
                if time > until:
                    break
                heappop(queue)
                handle = entry[2]
                if handle is None:
                    # Fire-and-forget entry (schedule_fire): no handle to
                    # bookkeep, so dispatch straight from the tuple.
                    if budget <= 0:
                        raise RuntimeError(
                            "event budget exhausted; possible event storm"
                        )
                    budget -= 1
                    self.now = time
                    dispatched += 1
                    entry[3](*entry[4])
                    continue
                if handle.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                if budget <= 0:
                    raise RuntimeError("event budget exhausted; possible event storm")
                budget -= 1
                self.now = time
                handle.fired = True
                fn, args = handle.fn, handle.args
                handle.fn, handle.args = None, ()
                dispatched += 1
                fn(*args)  # type: ignore[misc]
            if until != math.inf and until > self.now:
                self.now = until
        finally:
            self._live -= dispatched
            self.events_processed += dispatched
            self._running = False
            self._run_until = math.inf

    def _run_profiled(self, until: float, budget: float) -> None:
        """The telemetry-enabled twin of ``run()``'s hot loop.

        Profiling accumulates into local dicts (one perf_counter pair and
        two dict updates per event) and folds into the registry when the
        loop exits, so the instrumented loop stays within a small constant
        factor of the plain one.  Event/heap figures are deterministic;
        wall-clock figures are registered ``deterministic=False`` so they
        stay out of bit-equality comparisons (see
        :meth:`repro.obs.TelemetrySnapshot.deterministic`).
        """
        queue = self._queue
        heappop = heapq.heappop
        dispatch_counts: Dict[str, int] = {}
        dispatch_wall: Dict[str, float] = {}
        heap_high_water = len(queue)
        events_run = 0
        processed_at_entry = self.events_processed
        wall_start = perf_counter()
        try:
            while queue:
                entry = queue[0]
                time = entry[0]
                if time > until:
                    break
                heappop(queue)
                handle = entry[2]
                if handle is None:
                    fn = entry[3]
                    args = entry[4]
                else:
                    if handle.cancelled:
                        self._cancelled_in_queue -= 1
                        continue
                    handle.fired = True
                if budget <= 0:
                    raise RuntimeError("event budget exhausted; possible event storm")
                budget -= 1
                self.now = time
                self._live -= 1
                if handle is not None:
                    fn, args = handle.fn, handle.args
                    handle.fn, handle.args = None, ()
                self.events_processed += 1
                events_run += 1
                depth = len(queue)
                if depth > heap_high_water:
                    heap_high_water = depth
                kind = getattr(fn, "__qualname__", None) or type(fn).__name__
                tick = perf_counter()
                fn(*args)  # type: ignore[misc]
                elapsed = perf_counter() - tick
                dispatch_counts[kind] = dispatch_counts.get(kind, 0) + 1
                dispatch_wall[kind] = dispatch_wall.get(kind, 0.0) + elapsed
        finally:
            wall_s = perf_counter() - wall_start
            tele = self.telemetry
            # "engine.events" counts *logical* events (dispatched + frames
            # folded into batched drains via count_logical_event) so it
            # reconciles exactly with Simulator.events_processed;
            # "engine.dispatched" is the subset that went through the loop.
            tele.counter("engine.events").inc(
                self.events_processed - processed_at_entry
            )
            tele.counter("engine.dispatched").inc(events_run)
            tele.gauge("engine.heap_depth").set_max(heap_high_water)
            for kind, count in dispatch_counts.items():
                tele.counter(f"engine.dispatch.{kind}").inc(count)
            for kind, spent in dispatch_wall.items():
                tele.counter(
                    f"engine.wall.dispatch.{kind}", deterministic=False
                ).inc(spent)
            tele.counter("engine.wall.run_s", deterministic=False).inc(wall_s)
            if wall_s > 0:
                tele.gauge("engine.wall.events_per_sec", deterministic=False).set(
                    events_run / wall_s
                )

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    # ------------------------------------------------------------------
    # Event-horizon introspection (used by batched delivery)
    # ------------------------------------------------------------------
    def peek_next_event_time(self) -> float:
        """Time of the next live event, or +inf with an empty queue.

        Cancelled entries at the top of the heap are popped as a side
        effect (they would be skipped by ``run`` anyway), so the returned
        time always belongs to an event that will actually fire.  Together
        with :meth:`run_until_bound` this defines the *event horizon*: the
        span of simulated time in which no callback can observe or change
        state, which is what makes it safe for the wireless medium to
        deliver a run of queued frames from a single engine event.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            handle = entry[2]
            if handle is not None and handle.cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            return entry[0]
        return math.inf

    def run_until_bound(self) -> float:
        """The ``until`` bound of the active run (+inf outside ``run``)."""
        return self._run_until

    def advance_clock(self, time: float) -> None:
        """Warp ``now`` forward within the current event horizon.

        Callers (the medium's drain loop) must only pass times that are
        ``<= min(peek_next_event_time(), run_until_bound())``; anything
        later would reorder the warped work against real events.
        """
        if time < self.now:
            raise ValueError(f"cannot warp backwards: {time} < {self.now}")
        self.now = time

    def count_logical_event(self) -> None:
        """Count one unit of work folded into a batched engine event.

        Batched delivery replaces N per-frame engine events with one drain
        dispatch; crediting the N-1 folded frames keeps ``events_processed``
        meaning "logical simulation events" so the figure stays comparable
        across batched and unbatched runs (and across PRs).
        """
        self.events_processed += 1


class PeriodicProcess:
    """Invoke a callback at a fixed period until stopped.

    The callback runs first after ``phase`` seconds (default: one full
    period), then every ``period`` seconds.  Used for beacons, ping probers,
    link-manager ticks, and metric sampling.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        fn: Callable[[], None],
        phase: Optional[float] = None,
    ):
        if period <= 0:
            raise ValueError(f"period must be positive: {period!r}")
        self.sim = sim
        self.period = period
        self.fn = fn
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        first = period if phase is None else phase
        self._handle = sim.schedule(first, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fn()
        if not self._stopped:
            self._handle = self.sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        """Stop the process; pending tick (if any) is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        """Whether the process is still scheduled."""
        return not self._stopped
