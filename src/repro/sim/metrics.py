"""Metric collection: the four key metrics of §4.3 plus join-event logs.

* **Average throughput** — bytes delivered to the sink per unit time.
* **Average connectivity** — percentage of time bins with non-zero delivery.
* **Disruption length** — contiguous periods with no delivery.
* **Instantaneous bandwidth** — per-second delivery during connected bins.

:class:`ThroughputRecorder` bins delivered bytes into fixed-width windows
and derives all four.  :class:`JoinLog` records every join attempt with how
far it got (association / DHCP / end-to-end), feeding Figs. 5, 6, 14, 15 and
Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .engine import Simulator

__all__ = ["ThroughputRecorder", "JoinAttempt", "JoinLog", "segment_lengths"]


def segment_lengths(flags: List[bool], bin_s: float) -> Tuple[List[float], List[float]]:
    """Split a boolean timeline into (connected, disrupted) segment lengths.

    Returns two lists of durations in seconds: maximal runs of True bins and
    maximal runs of False bins.  Together they partition the timeline.
    """
    connected: List[float] = []
    disrupted: List[float] = []
    run_value: Optional[bool] = None
    run_length = 0
    for value in flags:
        if value == run_value:
            run_length += 1
            continue
        if run_value is not None:
            (connected if run_value else disrupted).append(run_length * bin_s)
        run_value = value
        run_length = 1
    if run_value is not None and run_length:
        (connected if run_value else disrupted).append(run_length * bin_s)
    return connected, disrupted


class ThroughputRecorder:
    """Delivered-byte timeline with fixed-width bins."""

    def __init__(self, sim: Simulator, bin_s: float = 1.0):
        if bin_s <= 0:
            raise ValueError(f"bin width must be positive: {bin_s!r}")
        self.sim = sim
        self.bin_s = bin_s
        self._bins: Dict[int, int] = {}
        self.total_bytes = 0
        self.started_at = sim.now
        # Open-bin accumulator: deliveries land here with plain integer
        # adds and are folded into ``_bins`` only when the clock crosses a
        # bin boundary (or a reader asks), keeping the per-delivery path
        # free of dict writes.  Integer addition is exact, so the folded
        # totals are identical to per-record dict updates.
        self._open_index: Optional[int] = None
        self._open_bytes = 0

    def record(self, byte_count: int) -> None:
        """Credit bytes to the current time bin."""
        if byte_count <= 0:
            return
        index = int(self.sim.now / self.bin_s)
        if index != self._open_index:
            self._flush()
            self._open_index = index
        self._open_bytes += byte_count
        self.total_bytes += byte_count

    def _flush(self) -> None:
        """Fold the open bin into the timeline (no-op when empty)."""
        if self._open_bytes:
            index = self._open_index
            self._bins[index] = self._bins.get(index, 0) + self._open_bytes
            self._open_bytes = 0

    # ------------------------------------------------------------------
    def _bin_range(self, duration_s: Optional[float]) -> Tuple[int, int]:
        start = int(self.started_at / self.bin_s)
        if duration_s is None:
            end = int(self.sim.now / self.bin_s)
        else:
            end = int((self.started_at + duration_s) / self.bin_s)
        return start, max(end, start)

    def timeline(self, duration_s: Optional[float] = None) -> List[int]:
        """Bytes per bin from the recorder's start over the duration."""
        self._flush()
        start, end = self._bin_range(duration_s)
        return [self._bins.get(i, 0) for i in range(start, end)]

    def connected_flags(self, duration_s: Optional[float] = None) -> List[bool]:
        """Per-bin booleans: was anything delivered in the bin?"""
        return [b > 0 for b in self.timeline(duration_s)]

    # ------------------------------------------------------------------
    # The four §4.3 metrics
    # ------------------------------------------------------------------
    def average_throughput_bps(self, duration_s: Optional[float] = None) -> float:
        """Mean delivery rate in bytes/second over the whole window."""
        timeline = self.timeline(duration_s)
        if not timeline:
            return 0.0
        return sum(timeline) / (len(timeline) * self.bin_s)

    def connectivity_fraction(self, duration_s: Optional[float] = None) -> float:
        """Fraction of bins with non-zero delivery."""
        flags = self.connected_flags(duration_s)
        if not flags:
            return 0.0
        return sum(flags) / len(flags)

    def connection_durations(self, duration_s: Optional[float] = None) -> List[float]:
        """Lengths of maximal connected runs, seconds."""
        connected, _ = segment_lengths(self.connected_flags(duration_s), self.bin_s)
        return connected

    def disruption_durations(self, duration_s: Optional[float] = None) -> List[float]:
        """Lengths of maximal disconnected runs, seconds."""
        _, disrupted = segment_lengths(self.connected_flags(duration_s), self.bin_s)
        return disrupted

    def instantaneous_bandwidths_bps(self, duration_s: Optional[float] = None) -> List[float]:
        """Per-bin delivery rate during connected bins only (Fig. 13)."""
        return [b / self.bin_s for b in self.timeline(duration_s) if b > 0]

    def average_throughput_between_bps(self, start_s: float, end_s: float) -> float:
        """Mean delivery rate over an absolute window (warm-up exclusion)."""
        if end_s <= start_s:
            raise ValueError("end_s must exceed start_s")
        self._flush()
        first = int(start_s / self.bin_s)
        last = int(end_s / self.bin_s)
        total = sum(self._bins.get(i, 0) for i in range(first, last))
        return total / ((last - first) * self.bin_s) if last > first else 0.0


@dataclass
class JoinAttempt:
    """One attempt to join one AP, however far it got."""

    bssid: str
    channel: int
    started_at: float
    associated: bool = False
    association_time_s: Optional[float] = None
    leased: bool = False
    dhcp_time_s: Optional[float] = None
    used_cache: bool = False
    verified: bool = False
    join_time_s: Optional[float] = None  # association + dhcp (Figs. 14/15)
    failure_reason: Optional[str] = None
    nak_received: bool = False  # server refused a (cached) binding

    @property
    def dhcp_attempted(self) -> bool:
        """True if the attempt reached the DHCP stage."""
        return self.associated


class JoinLog:
    """Accumulates :class:`JoinAttempt` records for a whole run."""

    def __init__(self) -> None:
        self.attempts: List[JoinAttempt] = []

    def new_attempt(self, bssid: str, channel: int, now: float) -> JoinAttempt:
        """Open a new join-attempt record."""
        attempt = JoinAttempt(bssid=bssid, channel=channel, started_at=now)
        self.attempts.append(attempt)
        return attempt

    def __repr__(self) -> str:
        # Content-based (no object address): two runs that recorded the same
        # attempts serialize identically, which the generic ``--json-out``
        # fallback and the cache's warm-vs-cold byte-identity rely on.
        return f"JoinLog(attempts={self.attempts!r})"

    # ------------------------------------------------------------------
    def association_times(self) -> List[float]:
        """Durations of successful link-layer associations."""
        return [
            a.association_time_s
            for a in self.attempts
            if a.association_time_s is not None
        ]

    def dhcp_times(self) -> List[float]:
        """Durations of successful lease acquisitions."""
        return [a.dhcp_time_s for a in self.attempts if a.dhcp_time_s is not None]

    def join_times(self) -> List[float]:
        """Durations of complete joins (association + DHCP)."""
        return [a.join_time_s for a in self.attempts if a.join_time_s is not None]

    def association_success_rate(self) -> float:
        """Fraction of attempts that associated."""
        if not self.attempts:
            return math.nan
        return sum(a.associated for a in self.attempts) / len(self.attempts)

    def dhcp_failure_rate(self) -> float:
        """Failed DHCP attempts / attempts that reached DHCP (Table 3)."""
        reached = [a for a in self.attempts if a.dhcp_attempted]
        if not reached:
            return math.nan
        return sum(not a.leased for a in reached) / len(reached)

    def nak_count(self) -> int:
        """Attempts during which the server NAKed a binding."""
        return sum(a.nak_received for a in self.attempts)

    def failure_breakdown(self) -> Dict[str, int]:
        """Where attempts ended, Table 3-style.

        Classifies by the recorded failure reason, so attempts still in
        flight when the run ends land in ``incomplete`` rather than being
        miscounted as failures.
        """
        out = {
            "attempts": len(self.attempts),
            "verified": 0,
            "association_failed": 0,
            "dhcp_failed": 0,
            "verify_failed": 0,
            "incomplete": 0,
            "naks": 0,
        }
        for a in self.attempts:
            if a.nak_received:
                out["naks"] += 1
            if a.verified:
                out["verified"] += 1
            elif a.failure_reason is None:
                out["incomplete"] += 1
            elif a.failure_reason.startswith("dhcp"):
                out["dhcp_failed"] += 1
            elif a.failure_reason.startswith("verify"):
                out["verify_failed"] += 1
            else:
                out["association_failed"] += 1
        return out

    def cache_hit_rate(self) -> float:
        """Fraction of successful leases served from cache."""
        leased = [a for a in self.attempts if a.leased]
        if not leased:
            return math.nan
        return sum(a.used_cache for a in leased) / len(leased)

    def __len__(self) -> int:
        return len(self.attempts)
