"""Mobility models: where a node is at any simulation time.

Two models cover the paper's scenarios:

* :class:`StaticPosition` — APs and the indoor-testbed client.
* :class:`LinearMobility` — a vehicle moving along a straight road at
  constant speed (the analytical model's setting: time in range
  ``t = 2 * range / speed`` for an AP on the road).
* :class:`LoopMobility` — a vehicle repeatedly driving a closed circuit,
  the "same route multiple times" protocol of §4.1.

Positions are 2-D metres; roads are laid along the x axis and APs may be
offset in y to shorten their effective in-range window.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "MobilityModel",
    "StaticPosition",
    "LinearMobility",
    "LoopMobility",
    "VariableSpeedLoopMobility",
    "circle_point",
    "ring_distance",
]


class MobilityModel:
    """Interface: ``position_at(t)`` in metres."""

    #: Upper bound on instantaneous speed, m/s, or ``None`` when the model
    #: declares no bound.  The vectorized medium snapshots mobile positions
    #: and prunes receivers with a drift allowance of ``max_speed_mps *
    #: elapsed``; a model without a bound keeps its stations on the exact
    #: per-delivery scan.  Subclasses must guarantee the bound is a
    #: Lipschitz constant of ``position_at`` (Euclidean displacement over
    #: ``dt`` never exceeds ``max_speed_mps * dt``).
    max_speed_mps: Optional[float] = None

    def position_at(self, t: float) -> Tuple[float, float]:
        """Position (x, y) in metres at simulation time ``t``."""
        raise NotImplementedError

    def positions_at(self, ts: Sequence[float]) -> List[Tuple[float, float]]:
        """Positions for a whole time vector — one call per tick batch.

        The default delegates to ``position_at`` per element, so results
        are bit-identical to scalar sampling by construction; array-backed
        consumers (trajectory precomputation, the dense-world bench) get
        the batch API without every model reimplementing it.
        """
        return [self.position_at(t) for t in ts]


class StaticPosition(MobilityModel):
    """A node that never moves."""

    max_speed_mps = 0.0

    def __init__(self, x: float, y: float = 0.0):
        self.x = x
        self.y = y

    def position_at(self, t: float) -> Tuple[float, float]:
        """Position (x, y) in metres at simulation time ``t``."""
        return (self.x, self.y)

    def __repr__(self) -> str:
        return f"StaticPosition({self.x}, {self.y})"


class LinearMobility(MobilityModel):
    """Constant-speed motion along the x axis starting at ``start_x``."""

    def __init__(self, speed_mps: float, start_x: float = 0.0, y: float = 0.0):
        if speed_mps < 0:
            raise ValueError(f"speed must be non-negative: {speed_mps!r}")
        self.speed_mps = speed_mps
        self.max_speed_mps = speed_mps
        self.start_x = start_x
        self.y = y

    def position_at(self, t: float) -> Tuple[float, float]:
        """Position (x, y) in metres at simulation time ``t``."""
        return (self.start_x + self.speed_mps * t, self.y)

    def time_in_range_of(self, ap_x: float, range_m: float) -> float:
        """Seconds this trajectory spends within ``range_m`` of x=``ap_x``.

        With the AP on the road (y offset 0) this is ``2 * range / speed``,
        the ``T`` of the paper's optimization framework.
        """
        if self.speed_mps == 0:
            return math.inf if abs(self.start_x - ap_x) <= range_m else 0.0
        return 2.0 * range_m / self.speed_mps

    def __repr__(self) -> str:
        return f"LinearMobility({self.speed_mps} m/s from x={self.start_x})"


def circle_point(arc_position_m: float, loop_length_m: float) -> Tuple[float, float]:
    """Map an arc-length position on a circuit to 2-D coordinates.

    The circuit is embedded as a circle of circumference ``loop_length_m``,
    so Euclidean distances between nearby arc positions approximate arc
    distances and the geometry is continuous across lap boundaries.  AP
    placement along a loop route uses the same mapping (see
    :mod:`repro.workloads.town`).
    """
    radius = loop_length_m / (2.0 * math.pi)
    theta = 2.0 * math.pi * (arc_position_m % loop_length_m) / loop_length_m
    return (radius * math.cos(theta), radius * math.sin(theta))


class LoopMobility(MobilityModel):
    """Motion around a closed circuit of length ``loop_length_m``.

    The circuit is embedded as a circle (see :func:`circle_point`), the
    "same route multiple times" protocol of §4.1.
    """

    def __init__(self, speed_mps: float, loop_length_m: float, start_arc_m: float = 0.0):
        if speed_mps < 0:
            raise ValueError(f"speed must be non-negative: {speed_mps!r}")
        if loop_length_m <= 0:
            raise ValueError(f"loop length must be positive: {loop_length_m!r}")
        self.speed_mps = speed_mps
        # Chord displacement on the circle embedding never exceeds arc
        # displacement, so the cruise speed is a valid Lipschitz bound.
        self.max_speed_mps = speed_mps
        self.loop_length_m = loop_length_m
        self.start_arc_m = start_arc_m

    def arc_position_at(self, t: float) -> float:
        """Arc-length position (metres along the route, wrapped)."""
        return (self.start_arc_m + self.speed_mps * t) % self.loop_length_m

    def position_at(self, t: float) -> Tuple[float, float]:
        """Position (x, y) in metres at simulation time ``t``."""
        return circle_point(self.arc_position_at(t), self.loop_length_m)

    def lap_time(self) -> float:
        """Seconds per full circuit."""
        if self.speed_mps == 0:
            return math.inf
        return self.loop_length_m / self.speed_mps

    def __repr__(self) -> str:
        return (
            f"LoopMobility({self.speed_mps} m/s, loop {self.loop_length_m} m)"
        )


class VariableSpeedLoopMobility(MobilityModel):
    """Loop motion with a piecewise-constant speed profile.

    ``profile`` is a sequence of ``(duration_s, speed_mps)`` segments that
    repeats indefinitely — a commute alternating between downtown crawling
    and arterial driving, or stop-and-go traffic.  Positions integrate the
    profile exactly, so the model is deterministic and seam-free across
    profile repetitions.
    """

    def __init__(
        self,
        profile: Sequence[Tuple[float, float]],
        loop_length_m: float,
        start_arc_m: float = 0.0,
    ):
        if loop_length_m <= 0:
            raise ValueError(f"loop length must be positive: {loop_length_m!r}")
        if not profile:
            raise ValueError("profile needs at least one segment")
        for duration, speed in profile:
            if duration <= 0:
                raise ValueError(f"segment duration must be positive: {duration!r}")
            if speed < 0:
                raise ValueError(f"segment speed must be non-negative: {speed!r}")
        self.profile = list(profile)
        self.max_speed_mps = max(speed for _, speed in self.profile)
        self.loop_length_m = loop_length_m
        self.start_arc_m = start_arc_m
        self._cycle_s = sum(d for d, _ in self.profile)
        self._cycle_arc_m = sum(d * v for d, v in self.profile)

    def speed_at(self, t: float) -> float:
        """Instantaneous speed at simulation time ``t``."""
        offset = t % self._cycle_s
        for duration, speed in self.profile:
            if offset < duration:
                return speed
            offset -= duration
        return self.profile[-1][1]

    def arc_position_at(self, t: float) -> float:
        """Arc-length position along the loop at time ``t``."""
        cycles, offset = divmod(t, self._cycle_s)
        arc = cycles * self._cycle_arc_m
        for duration, speed in self.profile:
            step = min(offset, duration)
            arc += step * speed
            offset -= step
            if offset <= 0:
                break
        return (self.start_arc_m + arc) % self.loop_length_m

    def position_at(self, t: float) -> Tuple[float, float]:
        """Position (x, y) in metres at simulation time ``t``."""
        return circle_point(self.arc_position_at(t), self.loop_length_m)

    def __repr__(self) -> str:
        return (
            f"VariableSpeedLoopMobility({len(self.profile)} segments, "
            f"loop {self.loop_length_m} m)"
        )


def ring_distance(a: float, b: float, loop_length_m: float) -> float:
    """Shortest distance between two arc positions on the circuit."""
    d = abs(a - b) % loop_length_m
    return min(d, loop_length_m - d)
