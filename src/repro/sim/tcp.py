"""Packet-level TCP Reno model.

Figures 7, 8, and 10 of the paper hinge on two TCP mechanisms:

* **retransmission timeouts** fire when the client is away from the data
  channel longer than the RTO, collapsing cwnd to one segment, and
* **slow start** must then rebuild the window, so every timeout costs far
  more than the time away.

This module implements enough of RFC 5681/6298 to exhibit both: slow start,
congestion avoidance, RFC 6298 SRTT/RTTVAR estimation with Karn's algorithm,
exponential RTO backoff, triple-duplicate-ACK fast retransmit, and a
receiver with out-of-order reassembly and cumulative ACKs.

Senders and receivers are transport endpoints only: the caller supplies a
``transmit`` function, and the :mod:`repro.sim.world` plumbing routes
segments across the wired core, AP backhaul, and wireless hop.

Congestion control itself is pluggable: the window arithmetic lives in
:mod:`repro.sim.cc` strategy objects (Reno by default and byte-identical to
the historical inline code; CUBIC / BBR-lite / QUIC-0RTT selectable via
:class:`repro.sim.cc.TransportSpec`), while this module keeps the sequence
state, timers, and retransmission machinery that drive them.
"""

from __future__ import annotations

import logging
import math
import warnings
from typing import Callable, Dict, Optional

from .cc import RenoCC, TcpParams, TransportSpec
from .engine import EventHandle, Simulator
from .frames import TcpSegment

__all__ = [
    "TcpParams",
    "TransportSpec",
    "TcpSender",
    "TcpReceiver",
    "TCP_HEADER_BYTES",
]

logger = logging.getLogger(__name__)

#: Wire overhead per data segment (IP + TCP headers), bytes.
TCP_HEADER_BYTES = 52


class TcpSender:
    """Bulk-data sender; congestion control is a pluggable strategy.

    ``transmit(segment)`` hands a segment to the network.  ``on_complete``
    fires once when ``total_bytes`` (if given) are cumulatively ACKed.
    The window lives in a :class:`repro.sim.cc.CongestionController`
    (Reno by default, byte-identical to the historical inline code);
    select another via ``transport=TransportSpec(cc=...)``.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        src_ip: str,
        dst_ip: str,
        transmit: Callable[[TcpSegment], None],
        params: Optional[TcpParams] = None,
        total_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[], None]] = None,
        transport: Optional[TransportSpec] = None,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.transmit = transmit
        if transport is None:
            if params is not None:
                warnings.warn(
                    "TcpSender(params=TcpParams(...)) is deprecated; pass "
                    "transport=TransportSpec(...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            transport = TransportSpec.from_params(params)
        self.transport = transport
        self.p = transport.params()
        self.cc = transport.controller()
        self.total_bytes = total_bytes
        self.on_complete = on_complete

        self.snd_una = 0
        self.snd_nxt = 0
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = self.p.rto_initial_s
        self.dupacks = 0
        self.closed = False
        self.timeouts = 0
        self.fast_retransmits = 0
        self.segments_sent = 0
        self.bytes_acked = 0
        # Telemetry covers the rare recovery paths only (RTO, fast
        # retransmit) plus a flow-open event — never the per-segment hot
        # path.  Cached instruments are no-ops when telemetry is disabled.
        tele = sim.telemetry
        self._obs_rto = tele.counter("tcp.rto_fired")
        self._obs_fast_rtx = tele.counter("tcp.fast_retransmits")
        tele.event("tcp.flow_open", flow=flow_id, dst=dst_ip)
        # Per-CC instruments exist only for non-default controllers, so the
        # default path — and an *explicit* --cc reno — export exactly the
        # seed's telemetry (the CI byte-identity gate depends on this).
        if self.cc.name != RenoCC.name:
            prefix = f"tcp.cc.{self.cc.name}"
            self._obs_cc_rto = tele.counter(f"{prefix}.rto_fired")
            self._obs_cc_fast_rtx = tele.counter(f"{prefix}.fast_retransmits")
            self._obs_cc_cwnd_at_loss = tele.histogram(
                f"{prefix}.cwnd_at_loss",
                bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
            )
        else:
            self._obs_cc_rto = None
            self._obs_cc_fast_rtx = None
            self._obs_cc_cwnd_at_loss = None

        self._timer: Optional[EventHandle] = None
        # Lazy RTO timer: the *logical* deadline lives here (+inf = not
        # armed); the engine event may sit earlier than the deadline, in
        # which case it re-arms itself instead of firing the RTO.  Every
        # ACK then just overwrites the deadline — O(1), no heap churn —
        # instead of the historical cancel + reschedule per ACK.
        self._rto_deadline = math.inf
        # One outstanding RTT probe at a time (Karn-safe).
        self._rtt_probe_ack: Optional[int] = None
        self._rtt_probe_sent_at = 0.0
        # Highest byte ever sent; anything below it is a retransmission
        # (Karn's algorithm excludes those from RTT sampling).
        self._max_sent = 0

    # ------------------------------------------------------------------
    @property
    def flight_bytes(self) -> int:
        """Bytes sent but not yet cumulatively ACKed."""
        return self.snd_nxt - self.snd_una

    @property
    def flight_segments(self) -> float:
        """Flight size in segments, floored at one.

        The single flight estimate every CC hook sees.  Historically
        ``_on_rto`` and ``_fast_retransmit`` each recomputed this inline —
        centralizing it here guarantees pluggable controllers can't observe
        divergent flight values on the two loss paths.
        """
        return max(self.flight_bytes / self.p.mss, 1.0)

    @property
    def cwnd(self) -> float:
        """Congestion window (segments); owned by the controller."""
        return self.cc.cwnd

    @cwnd.setter
    def cwnd(self, value: float) -> None:
        self.cc.cwnd = value

    @property
    def ssthresh(self) -> float:
        """Slow-start threshold (segments); owned by the controller."""
        return self.cc.ssthresh

    @ssthresh.setter
    def ssthresh(self, value: float) -> None:
        self.cc.ssthresh = value

    def start(self) -> None:
        """Start the component."""
        self._fill_window()

    def close(self) -> None:
        """Stop sending and cancel timers (connection torn down)."""
        self.closed = True
        self._cancel_timer()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _remaining(self) -> Optional[int]:
        if self.total_bytes is None:
            return None
        return max(self.total_bytes - self.snd_nxt, 0)

    def _fill_window(self) -> None:
        if self.closed:
            return
        window_bytes = int(min(self.cwnd, self.p.max_cwnd_segments) * self.p.mss)
        while self.flight_bytes + self.p.mss <= window_bytes:
            remaining = self._remaining()
            if remaining is not None and remaining <= 0:
                break
            length = self.p.mss if remaining is None else min(self.p.mss, remaining)
            # After an RTO rewinds snd_nxt (go-back-N), bytes below the
            # high-water mark are retransmissions.
            self._send_segment(
                self.snd_nxt, length, retransmit=self.snd_nxt < self._max_sent
            )
            self.snd_nxt += length
            self._max_sent = max(self._max_sent, self.snd_nxt)
        if self.flight_bytes > 0:
            self._ensure_timer()

    def _send_segment(self, seq: int, length: int, retransmit: bool) -> None:
        segment = TcpSegment(
            flow_id=self.flow_id,
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            seq=seq,
            payload_bytes=length,
            sent_at=self.sim.now,
            retransmit=retransmit,
        )
        self.segments_sent += 1
        if not retransmit and self._rtt_probe_ack is None:
            self._rtt_probe_ack = seq + length
            self._rtt_probe_sent_at = self.sim.now
        self.transmit(segment)

    # ------------------------------------------------------------------
    # Timer
    # ------------------------------------------------------------------
    def _ensure_timer(self) -> None:
        if self._rto_deadline == math.inf:
            self._arm(self.sim.now + self.rto)

    def _restart_timer(self) -> None:
        if self.flight_bytes > 0:
            self._arm(self.sim.now + self.rto)
        else:
            # Logical disarm; a standing engine event (if any) fires as a
            # no-op.
            self._rto_deadline = math.inf

    def _arm(self, deadline: float) -> None:
        self._rto_deadline = deadline
        timer = self._timer
        if timer is not None and timer.pending:
            if timer.time <= deadline:
                return  # standing event fires first and re-arms itself
            # RTO shrank below the standing event (fresh RTT sample after
            # a backoff): the event would fire too late, so move it.
            timer.cancel()
        self._timer = self.sim.schedule_at(deadline, self._on_timer)

    def _cancel_timer(self) -> None:
        self._rto_deadline = math.inf
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timer(self) -> None:
        self._timer = None
        if self.closed:
            return
        deadline = self._rto_deadline
        if deadline == math.inf or self.flight_bytes == 0:
            return
        if self.sim.now < deadline:
            # The deadline moved while this event was in flight (new ACKs
            # pushed it out); chase it.
            self._timer = self.sim.schedule_at(deadline, self._on_timer)
            return
        self._on_rto()

    def _on_rto(self) -> None:
        self._rto_deadline = math.inf
        self.timeouts += 1
        self._obs_rto.inc()
        if self._obs_cc_rto is not None:
            self._obs_cc_rto.inc()
            self._obs_cc_cwnd_at_loss.observe(self.cc.cwnd)
        self.cc.on_rto(self.flight_segments, self.sim.now)
        self.rto = min(self.rto * 2.0, self.p.rto_max_s)
        self.dupacks = 0
        self._rtt_probe_ack = None  # Karn: no samples from retransmits
        # Go-back-N: rewind and let the window refill from snd_una, so a
        # burst loss recovers via slow start rather than one RTO per hole.
        self.snd_nxt = self.snd_una
        self._fill_window()

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack(self, segment: TcpSegment) -> None:
        """Process an incoming ACK segment."""
        if self.closed:
            return
        ack = segment.ack
        if ack > self._max_sent:
            return  # acking data never sent: ignore
        if ack > self.snd_una:
            # A late cumulative ACK can exceed a go-back-N-rewound snd_nxt;
            # it is still valid (the bytes were sent before the rewind).
            self.snd_nxt = max(self.snd_nxt, ack)
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.flight_bytes > 0:
            self.dupacks += 1
            if self.dupacks == self.p.dupack_threshold:
                self._fast_retransmit()

    def _on_new_ack(self, ack: int) -> None:
        acked_bytes = ack - self.snd_una
        self.bytes_acked += acked_bytes
        self.dupacks = 0
        if self._rtt_probe_ack is not None and ack >= self._rtt_probe_ack:
            self._take_rtt_sample(self.sim.now - self._rtt_probe_sent_at)
            self._rtt_probe_ack = None
        acked_segments = acked_bytes / self.p.mss
        self.cc.on_ack(acked_segments, self.flight_segments, self.sim.now)
        self.snd_una = ack
        self._restart_timer()
        if self._check_complete():
            return
        self._fill_window()

    def _check_complete(self) -> bool:
        """Close and fire ``on_complete`` once all bytes are ACKed.

        Split out (and overridable) so relay senders with a dynamically
        growing ``total_bytes`` can defer completion until their upstream
        signals EOF.
        """
        if self.total_bytes is not None and self.snd_una >= self.total_bytes:
            finished_cb = self.on_complete
            self.close()
            if finished_cb is not None:
                finished_cb()
            return True
        return False

    def _fast_retransmit(self) -> None:
        self.fast_retransmits += 1
        self._obs_fast_rtx.inc()
        if self._obs_cc_fast_rtx is not None:
            self._obs_cc_fast_rtx.inc()
            self._obs_cc_cwnd_at_loss.observe(self.cc.cwnd)
        self.cc.on_fast_retransmit(self.flight_segments, self.sim.now)
        self._rtt_probe_ack = None
        length = min(self.p.mss, self.flight_bytes)
        self._send_segment(self.snd_una, length, retransmit=True)
        self._restart_timer()

    def _take_rtt_sample(self, sample: float) -> None:
        self.cc.on_rtt_sample(sample, self.sim.now)
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            max(self.srtt + 4.0 * self.rttvar, self.p.rto_min_s), self.p.rto_max_s
        )


class TcpReceiver:
    """Cumulative-ACK receiver with out-of-order reassembly.

    ``send_ack(segment)`` transmits an ACK back toward the sender;
    ``on_deliver(byte_count)`` reports bytes newly delivered *in order*
    (the number the throughput metrics count).
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        src_ip: str,
        dst_ip: str,
        send_ack: Callable[[TcpSegment], None],
        on_deliver: Optional[Callable[[int], None]] = None,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.send_ack = send_ack
        self.on_deliver = on_deliver
        self.rcv_nxt = 0
        self.bytes_delivered = 0
        self.duplicate_segments = 0
        self._out_of_order: Dict[int, int] = {}  # seq -> length

    def on_segment(self, segment: TcpSegment) -> None:
        """Process an incoming data segment."""
        seq, length = segment.seq, segment.payload_bytes
        if length <= 0:
            return
        if seq + length <= self.rcv_nxt:
            self.duplicate_segments += 1
        elif seq <= self.rcv_nxt:
            advanced = seq + length - self.rcv_nxt
            self.rcv_nxt = seq + length
            if self._out_of_order:
                # Reassembly only when there are holes; the in-order common
                # case stays allocation-free.
                advanced += self._drain_out_of_order()
            self.bytes_delivered += advanced
            if self.on_deliver is not None:
                self.on_deliver(advanced)
        else:
            self._out_of_order[seq] = max(self._out_of_order.get(seq, 0), length)
        self._emit_ack()

    def _drain_out_of_order(self) -> int:
        advanced = 0
        while True:
            matched = None
            for seq, length in self._out_of_order.items():
                if seq <= self.rcv_nxt < seq + length:
                    matched = (seq, length)
                    break
            if matched is None:
                break
            seq, length = matched
            del self._out_of_order[seq]
            gain = seq + length - self.rcv_nxt
            if gain > 0:
                self.rcv_nxt += gain
                advanced += gain
        # Discard stale holes fully below rcv_nxt.
        if self._out_of_order:
            self._out_of_order = {
                s: l for s, l in self._out_of_order.items() if s + l > self.rcv_nxt
            }
        return advanced

    def _emit_ack(self) -> None:
        self.send_ack(
            TcpSegment(
                flow_id=self.flow_id,
                src_ip=self.src_ip,
                dst_ip=self.dst_ip,
                ack=self.rcv_nxt,
                is_ack=True,
                sent_at=self.sim.now,
            )
        )
