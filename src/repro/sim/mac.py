"""Client-side 802.11 link-layer association state machine.

The paper emphasises that a Wi-Fi join is a *multi-phase* handshake, not the
one-shot exchange its analytical model assumes: authentication request and
response, then association request and response, each step governed by its
own link-layer timeout ("the link-layer timeout reflects a timer for each
message in a multi-step protocol and not a timeout for the entire
request-response process", §2.2.1).  This module implements that four-way
handshake with per-step timeouts and retry budgets.

Reducing the per-step timeout from the stock 1 s to 100 ms is one of the
knobs Figs. 5/14/15 sweep.
"""

from __future__ import annotations

import enum
import logging
from typing import Callable, Optional

from .engine import EventHandle, Simulator
from .frames import Frame, FrameKind
from .nic import VirtualInterface

__all__ = ["AssociationState", "Associator", "DEFAULT_LL_TIMEOUT_S", "REDUCED_LL_TIMEOUT_S"]

logger = logging.getLogger(__name__)

#: Stock link-layer per-message timeout (seconds).
DEFAULT_LL_TIMEOUT_S = 1.0
#: The reduced timeout Eriksson et al. recommend and Spider adopts.
REDUCED_LL_TIMEOUT_S = 0.1
#: Retries per handshake step before the attempt is declared failed.
DEFAULT_MAX_RETRIES = 3


class AssociationState(enum.Enum):
    """Association state machine states."""
    IDLE = "idle"
    AUTHENTICATING = "authenticating"
    ASSOCIATING = "associating"
    ASSOCIATED = "associated"
    FAILED = "failed"


class Associator:
    """Drives one association attempt of one interface to one AP.

    Callbacks:

    ``on_success(elapsed_s)``
        The ASSOC_RESPONSE arrived; the interface is link-layer associated.
    ``on_failure(reason)``
        A step exhausted its retries (or the attempt was aborted).
    """

    def __init__(
        self,
        sim: Simulator,
        iface: VirtualInterface,
        bssid: str,
        channel: int,
        timeout_s: float = DEFAULT_LL_TIMEOUT_S,
        max_retries: int = DEFAULT_MAX_RETRIES,
        on_success: Optional[Callable[[float], None]] = None,
        on_failure: Optional[Callable[[str], None]] = None,
    ):
        if timeout_s <= 0:
            raise ValueError(f"timeout must be positive: {timeout_s!r}")
        self.sim = sim
        self.iface = iface
        self.bssid = bssid
        self.channel = channel
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.on_success = on_success
        self.on_failure = on_failure
        self.state = AssociationState.IDLE
        self.started_at: Optional[float] = None
        self.retries_used = 0
        self._timer: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the handshake (binds the interface to the AP's channel)."""
        if self.state is not AssociationState.IDLE:
            raise RuntimeError(f"associator already started (state={self.state})")
        self.started_at = self.sim.now
        self.iface.channel = self.channel
        self.iface.bssid = self.bssid
        self.iface.handlers[FrameKind.AUTH_RESPONSE] = self._on_auth_response
        self.iface.handlers[FrameKind.ASSOC_RESPONSE] = self._on_assoc_response
        self.state = AssociationState.AUTHENTICATING
        self.retries_used = 0
        self._send_current_step()

    def abort(self) -> None:
        """Cancel the attempt without invoking callbacks."""
        self._cancel_timer()
        self._detach_handlers()
        self.state = AssociationState.FAILED

    # ------------------------------------------------------------------
    def _send_current_step(self) -> None:
        if self.state is AssociationState.AUTHENTICATING:
            self.iface.send_mgmt(FrameKind.AUTH_REQUEST, self.bssid)
        elif self.state is AssociationState.ASSOCIATING:
            self.iface.send_mgmt(FrameKind.ASSOC_REQUEST, self.bssid)
        else:
            return
        self._arm_timer()

    def _arm_timer(self) -> None:
        self._cancel_timer()
        self._timer = self.sim.schedule(self.timeout_s, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self.state in (AssociationState.ASSOCIATED, AssociationState.FAILED):
            return
        if self.retries_used >= self.max_retries:
            self._fail(f"{self.state.value} timed out after {self.retries_used} retries")
            return
        self.retries_used += 1
        self._send_current_step()

    # ------------------------------------------------------------------
    def _on_auth_response(self, frame: Frame, rssi: float) -> None:
        if self.state is not AssociationState.AUTHENTICATING:
            return
        if frame.src != self.bssid:
            return
        self._cancel_timer()
        self.state = AssociationState.ASSOCIATING
        self.retries_used = 0
        self._send_current_step()

    def _on_assoc_response(self, frame: Frame, rssi: float) -> None:
        if self.state is not AssociationState.ASSOCIATING:
            return
        if frame.src != self.bssid:
            return
        accepted = True
        if isinstance(frame.payload, dict):
            accepted = frame.payload.get("accepted", True)
        self._cancel_timer()
        if not accepted:
            self._fail("association rejected by AP")
            return
        self.state = AssociationState.ASSOCIATED
        self._detach_handlers()
        started = self.started_at if self.started_at is not None else self.sim.now
        elapsed = self.sim.now - started
        logger.debug("%s associated to %s in %.3fs", self.iface.mac, self.bssid, elapsed)
        if self.on_success is not None:
            self.on_success(elapsed)

    # ------------------------------------------------------------------
    def _detach_handlers(self) -> None:
        self.iface.handlers.pop(FrameKind.AUTH_RESPONSE, None)
        self.iface.handlers.pop(FrameKind.ASSOC_RESPONSE, None)

    def _fail(self, reason: str) -> None:
        self._cancel_timer()
        self._detach_handlers()
        self.state = AssociationState.FAILED
        logger.debug("%s association to %s failed: %s", self.iface.mac, self.bssid, reason)
        if self.on_failure is not None:
            self.on_failure(reason)
