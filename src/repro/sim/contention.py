"""CSMA/CA contention with per-cell spatial airtime reuse.

The base :class:`~repro.sim.radio.Medium` serializes airtime *globally*
per channel — every co-channel station in the world shares one FIFO, so
the ``city`` world saturates on beacon load alone (10+ s channel
backlogs, starved joins, ~0 goodput).  Real 802.11 serializes only
within a carrier-sense domain: two APs ten blocks apart reuse the same
channel concurrently, which is what makes dense-urban deployments work
at all (cf. "Modeling Multi-Cell IEEE 802.11 WLANs with Application to
Channel Assignment", PAPERS.md).

This module supplies that model as an opt-in layer on the medium:

* **Carrier-sense domains** reuse the medium's per-channel spatial bins
  (cell edge = ``range_m``): a sender senses the busy horizon of its 3x3
  cell neighbourhood (802.11's sense range exceeds its data range) but
  busy-marks only its *own* cell, so nearby stations serialize while
  distant cells transmit concurrently and busy horizons stay bounded by
  local load.  Domain computation is O(cell), never O(world).
* **Slotted binary-exponential backoff**: every access attempt pays DIFS
  plus a uniform draw from ``[0, cw)`` slots off the dedicated seeded
  ``medium.contention`` stream.  A busy medium defers the sender to the
  sensed release plus a fresh backoff, where it re-contends from
  scratch; waiters and new arrivals race backoff-ordered for each idle
  period (DCF's fairness), so nobody reserves future airtime and busy
  horizons stay one frame deep.  A station's ``cw`` doubles (up to
  ``cw_max``) when its unicast frame was wiped by interference (the
  missed-ACK signal) and resets to ``cw_min`` on an idle grant.
* **Hidden-terminal collisions are receiver-side**: senders too far
  apart to sense each other may still cover a common receiver.
  In-flight transmissions are tracked per cell of the 3x3 interference
  footprint; at delivery time each candidate receiver checks *its own*
  cell for a foreign flight overlapping the frame's airtime and, when
  one exists, misses the frame (no loss draw is consumed — the frame
  was destroyed by interference, not channel noise).  Receivers outside
  the interferer's footprint still hear the frame, so one hidden
  terminal damages a pocket of the coverage area rather than the whole
  transmission.  A unicast sender whose destination was wiped gets the
  missing-ACK signal and doubles its window.
* **Accounting**: per-channel and per-sender airtime, deferral, and
  collision tallies, plus :mod:`repro.obs` counters and an
  :meth:`ContentionState.export_telemetry` hook that publishes per-AP /
  per-channel airtime-share and collision-rate gauges.

The layer is **off by default**.  ``ContentionSpec(enabled=False)`` (what
``--contention off`` builds) and the absent spec are byte-identical: the
``medium.contention`` RNG stream is only created when the model engages,
so default runs consume randomness exactly as before.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (radio imports us)
    from .radio import Medium, Station
    from .frames import Frame

__all__ = [
    "ContentionSpec",
    "ContentionState",
    "resolve_contention",
    "CONTENTION_ENV",
    "DEFAULT_SLOT_TIME_S",
    "DEFAULT_DIFS_S",
]

#: Environment variable behind the ``--contention`` CLI flag
#: (``off``/``on``/``on,stagger``/``off,stagger``; see
#: :func:`resolve_contention`).
CONTENTION_ENV = "REPRO_CONTENTION"

#: 802.11b slot time (long preamble), seconds.
DEFAULT_SLOT_TIME_S = 20e-6

#: DCF inter-frame space for 802.11b, seconds.
DEFAULT_DIFS_S = 50e-6

_FALSEY = ("0", "false", "no", "off")
_TRUTHY = ("1", "true", "yes", "on", "csma")

#: Cells shorter than this skip the expired-flight prune on booking; the
#: overlap predicates already exclude stale flights (see acquire), so the
#: only cost of keeping them briefly is a slightly longer exact scan.
_PRUNE_MIN = 16


@dataclass(frozen=True)
class ContentionSpec:
    """Frozen, picklable contention configuration for a world.

    Carried on ``ExperimentSpec``/``TownTrialSpec`` (hashing cleanly into
    the trial cache's canonical token) and threaded down to the
    :class:`~repro.sim.radio.Medium`.  ``enabled=False`` keeps the
    historical global-FIFO medium byte-identical to runs that predate the
    subsystem; ``beacon_stagger`` independently switches APs to per-BSSID
    seeded beacon phases (see :class:`~repro.sim.ap.AccessPoint`).
    """

    enabled: bool = True
    slot_time_s: float = DEFAULT_SLOT_TIME_S
    difs_s: float = DEFAULT_DIFS_S
    cw_min: int = 16
    cw_max: int = 1024
    #: EDCA-style priority access for management frames (beacons, probes,
    #: association/DHCP handshakes): they contend with this shorter
    #: inter-frame space (PIFS < DIFS) and a small *fixed* window
    #: ``cw_mgmt``, so a deferred handshake wakes earlier than deferred
    #: data senders and wins the next idle period far more often.  Without
    #: this, TCP bursts from saturated cells starve the very joins that
    #: Spider's control plane depends on.
    pifs_s: float = 30e-6
    cw_mgmt: int = 8
    #: Physical-layer capture: a receiver decodes its frame through an
    #: overlapping transmission when the interferer is at least this many
    #: times *farther* away than the wanted sender (~10 dB SIR at the
    #: medium's 25 dB/decade path loss).  Interference therefore wipes a
    #: receiver only when the interferer sits within ``capture_ratio``
    #: times the sender distance (and within radio range at all).
    capture_ratio: float = 2.5
    beacon_stagger: bool = False

    def __post_init__(self) -> None:
        if not math.isfinite(self.slot_time_s) or self.slot_time_s <= 0:
            raise ValueError(f"slot_time_s must be positive: {self.slot_time_s!r}")
        if not math.isfinite(self.difs_s) or self.difs_s < 0:
            raise ValueError(f"difs_s must be non-negative: {self.difs_s!r}")
        if not math.isfinite(self.pifs_s) or self.pifs_s < 0:
            raise ValueError(f"pifs_s must be non-negative: {self.pifs_s!r}")
        if self.cw_mgmt < 1:
            raise ValueError(f"cw_mgmt must be >= 1: {self.cw_mgmt!r}")
        if not self.capture_ratio >= 1.0:  # also rejects nan
            raise ValueError(f"capture_ratio must be >= 1: {self.capture_ratio!r}")
        if self.cw_min < 1:
            raise ValueError(f"cw_min must be >= 1: {self.cw_min!r}")
        if self.cw_max < self.cw_min:
            raise ValueError(
                f"cw_max ({self.cw_max!r}) must be >= cw_min ({self.cw_min!r})"
            )


def resolve_contention(mode: Optional[str] = None) -> Optional[ContentionSpec]:
    """Resolve the CLI/env contention selection into a spec, or ``None``.

    ``mode`` (the ``--contention`` flag) wins over the ``REPRO_CONTENTION``
    environment knob.  Accepted tokens (comma-separable): ``on``/``1``/
    ``true``/``yes``/``csma`` enable the CSMA/CA model, ``off``/``0``/
    ``false``/``no`` disable it, ``stagger`` additionally staggers beacon
    phases per AP.  ``stagger`` is a modifier, not a mode: it must be
    paired with an explicit on/off token (``on,stagger`` for CSMA/CA
    plus stagger, ``off,stagger`` for stagger alone) so asking for
    beacon stagger never switches the whole contention model on as a
    side effect.  Returns ``None`` when nothing was requested so the
    default path stays byte-identical to runs predating the subsystem.
    """
    if mode is None:
        mode = os.environ.get(CONTENTION_ENV)
    if mode is None:
        return None
    text = mode.strip().lower()
    if not text:
        return None
    enabled: Optional[bool] = None
    stagger = False
    for token in text.split(","):
        token = token.strip()
        if token in _FALSEY:
            enabled = False
        elif token in _TRUTHY:
            enabled = True
        elif token == "stagger":
            stagger = True
        else:
            raise ValueError(
                f"bad contention mode {token!r}; expected on/off/stagger "
                "(comma-separable)"
            )
    if enabled is None:
        # Only reachable for a bare "stagger": without an explicit
        # on/off it is ambiguous whether CSMA/CA itself was requested,
        # and ContentionSpec documents the two as independent.
        raise ValueError(
            "'stagger' is a modifier; pair it with on/off "
            "('on,stagger' or 'off,stagger')"
        )
    return ContentionSpec(enabled=enabled, beacon_stagger=stagger)


#: One in-flight transmission: (start, end, sender_id, x, y).  The
#: transmit position feeds the receiver-side capture check.
_Flight = Tuple[float, float, str, float, float]


class ContentionState:
    """Per-medium CSMA/CA machinery (only built when the model is on).

    The medium calls :meth:`acquire` instead of consulting its global
    ``_busy_until`` FIFO; everything here is keyed by the medium's own
    ``(channel, cell)`` bins so domain work stays O(cell).

    The three hot loops are isolated behind overridable hooks —
    :meth:`_sense` / :meth:`_book` (carrier sense + booking) and
    :meth:`_interfered` (the hidden-terminal flight scan) — so the
    array-backed subclass in :mod:`repro.sim.contention_vec` can replace
    the data structure per loop while :meth:`acquire` keeps one shared
    control flow (and therefore one shared RNG-draw sequence).
    """

    #: The scalar state; :class:`~repro.sim.contention_vec.ContentionVecState`
    #: flips this so the medium/tests can report which path engaged.
    is_vector = False

    def __init__(self, medium: "Medium", spec: ContentionSpec):
        self.medium = medium
        self.spec = spec
        self.sim = medium.sim
        #: Dedicated stream: created lazily *here* so contention-off runs
        #: never touch it and stay byte-identical to the seed.
        self._rng = medium.sim.rng("medium.contention")
        self._bin_m = medium._bin_m
        #: (channel, cx, cy) -> absolute time the cell's air frees up.
        self._busy: Dict[Tuple[int, int, int], float] = {}
        #: (channel, cx, cy) -> in-flight transmissions covering the cell.
        self._inflight: Dict[Tuple[int, int, int], List[_Flight]] = {}
        #: (channel, cx, cy) -> that cell's nine neighbourhood keys, so a
        #: grant re-visiting a cell (vehicles loop the same corridor all
        #: run) reuses the tuples instead of allocating nine per booking.
        self._nbr_keys: Dict[Tuple[int, int, int], Tuple] = {}
        #: Per-sender contention window (absent -> ``cw_min``).
        self._cw: Dict[str, int] = {}
        # Hot-path caches: ``acquire`` runs a few hundred thousand times
        # per contended city trial, so the frozen spec's fields and the
        # RNG's bound method are hoisted out of the per-call attribute
        # chains.
        self._slot_s = spec.slot_time_s
        self._difs_s = spec.difs_s
        self._pifs_s = spec.pifs_s
        self._cw_min = spec.cw_min
        self._cw_mgmt = spec.cw_mgmt
        # ``randrange(cw)`` with a positive int ``cw`` reduces to
        # ``_randbelow(cw)`` after argument normalisation; binding the
        # inner method draws the identical bit stream while skipping the
        # wrapper frame on every backoff draw.
        self._randrange = self._rng._randbelow
        #: Largest airtime granted so far; bounds how long a finished
        #: flight can still matter to a pending delivery's overlap check.
        self._max_airtime = 0.0
        #: channel -> latest ``done`` ever booked (running max).  Cell
        #: busy horizons only ever move forward, so the per-channel max
        #: is exact without scanning cells — ``busy_until`` is O(1).
        self._chan_horizon: Dict[int, float] = {}
        # -- deterministic accounting (pure functions of the sim) --------
        self.grants = 0
        self.deferrals = 0
        self.collisions = 0
        self.airtime_s_by_channel: Dict[int, float] = {}
        self.airtime_s_by_sender: Dict[str, float] = {}
        self.collisions_by_sender: Dict[str, int] = {}
        tele = medium.sim.telemetry
        self._obs_grants = tele.counter("contention.grants")
        self._obs_deferrals = tele.counter("contention.deferrals")
        self._obs_collisions = tele.counter("contention.collisions")
        # Per-phase dispatch counters (deterministic — pure functions of
        # the event sequence, so the scalar/vector byte-identity gates
        # cover them) plus wall-clock twins in the same style as the
        # engine's profiling twin loop: ``contention.wall.*`` attribute
        # contended wall time per phase and are flagged
        # ``deterministic=False`` so they never leak into the
        # deterministic snapshot projection.
        self._obs_sense = tele.counter("contention.sense")
        self._obs_defer = tele.counter("contention.defer")
        self._obs_collision_scan = tele.counter("contention.collision_scan")
        self._profile = bool(tele.enabled)
        self._wall_sense = tele.counter("contention.wall.sense", deterministic=False)
        self._wall_defer = tele.counter("contention.wall.defer", deterministic=False)
        self._wall_collision_scan = tele.counter(
            "contention.wall.collision_scan", deterministic=False
        )
        if not self._profile:
            # Telemetry off: the instrumented wrapper would only forward
            # to the hook, so bind the hook directly (one frame fewer on
            # a call that runs once per survivor per delivery).
            self.interfered = self._interfered  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def acquire(
        self,
        sender_id: str,
        channel: int,
        x: float,
        y: float,
        airtime: float,
        priority: bool = False,
    ) -> Tuple[bool, float, float]:
        """Contend for the air around ``(x, y)``.

        Returns ``(True, start, done)`` when the sensed medium was idle
        and the frame's airtime is booked, or ``(False, retry_at, 0.0)``
        when it was busy — the sender booked nothing and must re-contend
        (a fresh :meth:`acquire`) at ``retry_at``.  The medium re-checks
        interference per receiver at delivery time via :meth:`interfered`.

        ``priority`` marks management-plane access (EDCA-style): the
        frame waits only PIFS plus a draw from the small fixed
        ``cw_mgmt`` window, and leaves the sender's data-plane backoff
        state untouched.
        """
        profile = self._profile
        t0 = perf_counter() if profile else 0.0
        now = self.sim.now
        bin_m = self._bin_m
        cx = int(x // bin_m)
        cy = int(y // bin_m)
        sensed = self._sense(channel, cx, cy)
        if priority:
            ifs = self._pifs_s
            cw = self._cw_mgmt
        else:
            ifs = self._difs_s
            cw = self._cw.get(sender_id, self._cw_min)
        if sensed > now:
            # Deferral: the sender books *nothing* and re-contends (a
            # fresh sense, a fresh draw) when the sensed air frees up.
            # Reserving a future slot instead would build a FIFO queue
            # that couples across neighbouring cells — each deferral
            # re-extends the horizon its neighbours sense — and merge a
            # dense corridor into one global serialized queue; the
            # retry race also gives waiters and fresh arrivals the same
            # backoff-ordered shot at the next idle period, which is
            # DCF's fairness (priority frames wake earlier: PIFS plus a
            # small fixed window).  The window stays as-is: only
            # collisions widen it (802.11's missed-ACK signal; see
            # note_collision).
            self.deferrals += 1
            backoff = self._randrange(cw) * self._slot_s
            if profile:
                # The obs counters are null instruments whenever
                # telemetry is disabled (``_profile`` is exactly
                # ``telemetry.enabled``), so the hot path skips even the
                # no-op calls.
                self._obs_sense.inc()
                self._obs_deferrals.inc()
                self._obs_defer.inc()
                self._wall_defer.inc(perf_counter() - t0)
            return False, sensed + ifs + backoff, 0.0
        if not priority:
            # A station that found the medium idle starts a fresh
            # exchange: its previous collision penalty has served its
            # purpose.  (Management access never touches the data cw.)
            self._cw[sender_id] = cw = self._cw_min
        backoff = self._randrange(cw) * self._slot_s
        start = now + ifs + backoff
        done = start + airtime
        if airtime > self._max_airtime:
            self._max_airtime = airtime
        self._book(channel, cx, cy, done)
        flight: _Flight = (start, done, sender_id, x, y)
        inflight = self._inflight
        # Flights must outlive their own delivery events: an overlap is
        # re-checked per receiver at delivery time, so prune only what
        # ended more than a max-airtime (plus slack) ago.  Pruning is
        # lazy — it waits until a cell holds _PRUNE_MIN flights — which
        # is invisible to :meth:`interfered`: a stale flight has
        # ``f_end <= now - max_airtime - 1e-3``, while any later-checked
        # delivery has ``start >= done - max_airtime > now - 1us -
        # max_airtime``, so ``start < f_end`` can never hold for it.
        cutoff = now - self._max_airtime - 1e-3
        own = (channel, cx, cy)
        keys = self._nbr_keys.get(own)
        if keys is None:
            keys = self._nbr_keys[own] = tuple(
                (channel, nx, ny)
                for nx in (cx - 1, cx, cx + 1)
                for ny in (cy - 1, cy, cy + 1)
            )
        for key in keys:
            flights = inflight.get(key)
            if flights is None:
                inflight[key] = [flight]
            elif flights[0][1] <= cutoff and len(flights) >= _PRUNE_MIN:
                live = [f for f in flights if f[1] > cutoff]
                live.append(flight)
                inflight[key] = live
            else:
                flights.append(flight)
        self.grants += 1
        self.airtime_s_by_channel[channel] = (
            self.airtime_s_by_channel.get(channel, 0.0) + airtime
        )
        self.airtime_s_by_sender[sender_id] = (
            self.airtime_s_by_sender.get(sender_id, 0.0) + airtime
        )
        if profile:
            self._obs_sense.inc()
            self._obs_grants.inc()
            self._wall_sense.inc(perf_counter() - t0)
        return True, start, done

    # -- carrier-sense hooks (overridden by the array-backed state) ----
    def _sense(self, channel: int, cx: int, cy: int) -> float:
        """Busy horizon sensed from cell ``(cx, cy)``: the max over its
        3x3 neighbourhood.

        Carrier sense covers the whole neighbourhood — 802.11's sense
        range exceeds its data range, so a station hears (and defers to)
        transmitters it could never decode.  This is what protects a
        nearby receiver from one-cell-away interferers; only true hidden
        terminals (two or more cells out) remain.
        """
        busy = self._busy
        sensed = 0.0
        for nx in (cx - 1, cx, cx + 1):
            for ny in (cy - 1, cy, cy + 1):
                t = busy.get((channel, nx, ny), 0.0)
                if t > sensed:
                    sensed = t
        return sensed

    def _book(self, channel: int, cx: int, cy: int, done: float) -> None:
        """Busy-mark the sender's *own* cell until ``done``.

        Neighbours already hear the transmission through the 3x3 sense
        scan.  Marking the whole footprint instead would charge every
        frame's airtime to nine cells at once, and the coupled busy
        horizons then grow without bound under beacon load (deferred
        sends re-extend their neighbours, dominoing into worse-than-
        global serialization).
        """
        own = (channel, cx, cy)
        busy = self._busy
        if busy.get(own, 0.0) < done:
            busy[own] = done
        if done > self._chan_horizon.get(channel, 0.0):
            self._chan_horizon[channel] = done

    def interfered(
        self,
        sender_id: str,
        channel: int,
        rx: float,
        ry: float,
        start: float,
        done: float,
        sender_distance: float,
    ) -> bool:
        """Receiver-side hidden-terminal check with physical capture.

        True if a foreign flight overlapped ``[start, done)`` close
        enough to the receiver at ``(rx, ry)`` to actually damage it: the
        interferer must be within radio range *and* within
        ``capture_ratio`` times the wanted sender's distance — a receiver
        near its sender decodes straight through a far-off interferer.
        """
        if not self._profile:
            return self._interfered(
                sender_id, channel, rx, ry, start, done, sender_distance
            )
        self._obs_collision_scan.inc()
        t0 = perf_counter()
        hit = self._interfered(
            sender_id, channel, rx, ry, start, done, sender_distance
        )
        self._wall_collision_scan.inc(perf_counter() - t0)
        return hit

    def interfered_rows(
        self,
        sender_id: str,
        channel: int,
        rows: List[Tuple],
        start: float,
        done: float,
    ) -> List[bool]:
        """Per-survivor interference flags for one delivery.

        ``rows`` are the medium's survivor 7-tuples ``(seq, station,
        rssi, ignores_beacons, rx, ry, distance)``; the result holds
        :meth:`interfered` evaluated for each, in order.  One call per
        delivery lets the array-backed state amortize its per-delivery
        screening; with telemetry on, both states route through
        :meth:`interfered` so the deterministic ``contention.
        collision_scan`` counter advances once per survivor exactly as
        the scalar delivery scan does.
        """
        if self._profile:
            interfered = self.interfered
        else:
            interfered = self._interfered
        return [
            interfered(sender_id, channel, row[4], row[5], start, done, row[6])
            for row in rows
        ]

    def _interfered(
        self,
        sender_id: str,
        channel: int,
        rx: float,
        ry: float,
        start: float,
        done: float,
        sender_distance: float,
    ) -> bool:
        """The flight scan behind :meth:`interfered` (overridable)."""
        bin_m = self._bin_m
        flights = self._inflight.get((channel, int(rx // bin_m), int(ry // bin_m)))
        if not flights:
            return False
        reach = min(self.medium.range_m, self.spec.capture_ratio * sender_distance)
        hypot = math.hypot
        for f_start, f_end, f_sender, f_x, f_y in flights:
            if (
                f_sender != sender_id
                and f_start < done
                and start < f_end
                and hypot(rx - f_x, ry - f_y) <= reach
            ):
                return True
        return False

    def note_collision(self, sender_id: str, frame_failed: bool) -> None:
        """Record that a frame lost at least one receiver to interference.

        ``frame_failed`` — the unicast destination itself was wiped, i.e.
        the sender misses its ACK — is the 802.11 signal that widens the
        contention window; broadcast senders never learn and keep theirs.
        """
        self.collisions += 1
        self._obs_collisions.inc()
        self.collisions_by_sender[sender_id] = (
            self.collisions_by_sender.get(sender_id, 0) + 1
        )
        if frame_failed:
            cw = self._cw.get(sender_id, self.spec.cw_min)
            self._cw[sender_id] = min(cw * 2, self.spec.cw_max)

    # ------------------------------------------------------------------
    def busy_until(self, channel: int) -> float:
        """Latest busy horizon over every cell of ``channel`` (diagnosis).

        O(1): cell horizons only move forward, so a running per-channel
        max maintained at booking time is exact — telemetry exports
        (``medium.backlog_s`` samples every channel) must never pay an
        O(cells) scan of ``_busy``.
        """
        return self._chan_horizon.get(channel, 0.0)

    def collision_rate(self) -> float:
        """Collided fraction of all granted transmissions."""
        return self.collisions / self.grants if self.grants else 0.0

    # ------------------------------------------------------------------
    def export_telemetry(self, duration_s: float) -> None:
        """Publish airtime-share and collision-rate gauges to the registry.

        Per-channel airtime share is channel airtime over the run length;
        per-sender share is that sender's slice of its channel's run
        length.  The two live under distinct ``channel.``/``sender.``
        prefixes so a station id can never shadow a channel gauge.
        Every value is a pure function of (spec, seed), so the gauges
        survive the deterministic-telemetry byte-identity gates.
        """
        tele = self.sim.telemetry
        span = max(duration_s, 1e-9)
        for channel in sorted(self.airtime_s_by_channel):
            tele.gauge(f"contention.airtime_share.channel.{channel}").set(
                self.airtime_s_by_channel[channel] / span
            )
        for sender_id in sorted(self.airtime_s_by_sender):
            tele.gauge(f"contention.airtime_share.sender.{sender_id}").set(
                self.airtime_s_by_sender[sender_id] / span
            )
        for sender_id in sorted(self.collisions_by_sender):
            tele.gauge(f"contention.collisions.{sender_id}").set(
                float(self.collisions_by_sender[sender_id])
            )
        tele.gauge("contention.collision_rate").set(self.collision_rate())
