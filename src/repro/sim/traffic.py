"""Client-side applications: downloads, pings, liveness monitoring.

These are the moving parts the link-management module composes for every
joined interface:

* :class:`PingService` — sends ICMP-like echoes from an interface and
  demultiplexes replies by token.  Used both for the one-shot end-to-end
  verification that completes a join (step iii of the paper's join pipeline)
  and for continuous liveness probing.
* :class:`LivenessMonitor` — the paper's rule verbatim: pings at 10 per
  second, and "if thirty consecutive pings fail, Spider assumes that the
  connection is dropped".
* :class:`ClientFlow` — the client end of a bulk TCP download: a
  :class:`~repro.sim.tcp.TcpReceiver` wired to the interface, ACKing through
  the AP and reporting delivered bytes to the metrics recorder.
"""

from __future__ import annotations

import itertools
import logging
from typing import Callable, Dict, Optional

from .engine import EventHandle, PeriodicProcess, Simulator
from .frames import ACK_FRAME_BYTES, PING_FRAME_BYTES, Frame, FrameKind, TcpSegment
from .cc import TransportSpec
from .nic import VirtualInterface
from .tcp import TcpParams, TcpReceiver
from .world import World

__all__ = ["PingService", "LivenessMonitor", "ClientFlow"]

logger = logging.getLogger(__name__)

_ping_tokens = itertools.count(1)

#: Liveness probe rate (pings per second) from §3.2.2.
LIVENESS_PING_RATE_HZ = 10.0
#: Consecutive misses before the connection is declared dead.
LIVENESS_MISS_THRESHOLD = 30


class PingService:
    """Echo request/reply over one joined interface.

    ``target_ip=None`` pings the gateway (answered locally by the AP);
    otherwise the request crosses the backhaul and the server echoes it —
    the end-to-end case.
    """

    def __init__(self, sim: Simulator, iface: VirtualInterface, target_ip: Optional[str] = None):
        if iface.ip is None or iface.bssid is None:
            raise RuntimeError("PingService requires a joined interface")
        self.sim = sim
        self.iface = iface
        self.target_ip = target_ip
        self._waiting: Dict[int, Callable[[], None]] = {}
        self.requests_sent = 0
        self.replies_received = 0
        iface.handlers[FrameKind.PING_REPLY] = self._on_reply

    def send(self, on_reply: Callable[[], None]) -> int:
        """Send one echo request; ``on_reply`` fires if the reply returns."""
        token = next(_ping_tokens)
        self._waiting[token] = on_reply
        self.requests_sent += 1
        self.iface.send(
            Frame(
                kind=FrameKind.PING_REQUEST,
                src=self.iface.mac,
                dst=self.iface.bssid,  # type: ignore[arg-type]
                size=PING_FRAME_BYTES,
                bssid=self.iface.bssid,
                payload={
                    "src_ip": self.iface.ip,
                    "dst_ip": self.target_ip,
                    "token": token,
                },
            )
        )
        return token

    def probe(self, timeout_s: float, on_result: Callable[[bool], None]) -> None:
        """One-shot reachability check with a deadline."""
        timer_box: Dict[str, Optional[EventHandle]] = {"t": None}

        def reply() -> None:
            timer = timer_box["t"]
            if timer is not None and timer.pending:
                timer.cancel()
                on_result(True)

        def timeout() -> None:
            self._waiting.pop(token, None)
            on_result(False)

        token = self.send(reply)
        timer_box["t"] = self.sim.schedule(timeout_s, timeout)

    def close(self) -> None:
        """Close and release resources."""
        self._waiting.clear()
        if self.iface.handlers.get(FrameKind.PING_REPLY) == self._on_reply:
            del self.iface.handlers[FrameKind.PING_REPLY]

    def _on_reply(self, frame: Frame, rssi: float) -> None:
        payload = frame.payload if isinstance(frame.payload, dict) else {}
        token = payload.get("token")
        callback = self._waiting.pop(token, None)
        if callback is not None:
            self.replies_received += 1
            callback()


class LivenessMonitor:
    """Continuous connection-health probe (10 Hz, 30-miss death rule)."""

    def __init__(
        self,
        sim: Simulator,
        ping_service: PingService,
        on_dead: Callable[[], None],
        rate_hz: float = LIVENESS_PING_RATE_HZ,
        miss_threshold: int = LIVENESS_MISS_THRESHOLD,
    ):
        self.sim = sim
        self.ping_service = ping_service
        self.on_dead = on_dead
        self.miss_threshold = miss_threshold
        self.consecutive_misses = 0
        self._outstanding = 0
        self._dead = False
        self._process = PeriodicProcess(sim, 1.0 / rate_hz, self._tick)

    def _tick(self) -> None:
        if self._dead:
            return
        # Any probe still unanswered when the next fires counts as a miss.
        if self._outstanding > 0:
            self.consecutive_misses += self._outstanding
            self._outstanding = 0
            if self.consecutive_misses >= self.miss_threshold:
                self._declare_dead()
                return
        self._outstanding += 1
        self.ping_service.send(self._on_reply)

    def _on_reply(self) -> None:
        self._outstanding = 0
        self.consecutive_misses = 0

    def _declare_dead(self) -> None:
        self._dead = True
        self._process.stop()
        self.on_dead()

    def stop(self) -> None:
        """Stop the component and release its resources."""
        self._dead = True
        self._process.stop()


class ClientFlow:
    """The client end of a bulk download through one joined interface."""

    def __init__(
        self,
        sim: Simulator,
        world: World,
        iface: VirtualInterface,
        on_bytes: Optional[Callable[[int], None]] = None,
        tcp_params: Optional[TcpParams] = None,
        total_bytes: Optional[int] = None,
        transport: Optional[TransportSpec] = None,
    ):
        if iface.ip is None or iface.bssid is None:
            raise RuntimeError("ClientFlow requires a joined interface")
        self.sim = sim
        self.world = world
        self.iface = iface
        # World-scoped, not process-global: flow ids appear in telemetry
        # events, so numbering must be a pure function of the simulation
        # (identical whichever process layout ran the trial).
        self.flow_id = world.next_flow_id()
        self.closed = False

        def send_ack(segment: TcpSegment) -> None:
            if self.closed or iface.bssid is None:
                return
            iface.send(
                Frame(
                    kind=FrameKind.DATA,
                    src=iface.mac,
                    dst=iface.bssid,
                    size=ACK_FRAME_BYTES,
                    bssid=iface.bssid,
                    payload=segment,
                )
            )

        self.receiver = TcpReceiver(
            sim,
            flow_id=self.flow_id,
            src_ip=iface.ip,
            dst_ip=world.server.ip,
            send_ack=send_ack,
            on_deliver=on_bytes,
        )
        iface.handlers[FrameKind.DATA] = self._on_data
        self.sender = world.server.open_download(
            self.flow_id,
            client_ip=iface.ip,
            params=tcp_params,
            total_bytes=total_bytes,
            transport=transport,
        )

    def _on_data(self, frame: Frame, rssi: float) -> None:
        segment = frame.payload
        if isinstance(segment, TcpSegment) and segment.flow_id == self.flow_id:
            self.receiver.on_segment(segment)

    @property
    def bytes_delivered(self) -> int:
        """Bytes delivered in order to the receiver."""
        return self.receiver.bytes_delivered

    def close(self) -> None:
        """Close and release resources."""
        if self.closed:
            return
        self.closed = True
        self.world.server.close_flow(self.flow_id)
        if self.iface.handlers.get(FrameKind.DATA) == self._on_data:
            del self.iface.handlers[FrameKind.DATA]
