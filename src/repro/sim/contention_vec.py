"""Array-backed CSMA/CA state (numpy-accelerated, byte-identical).

:mod:`repro.sim.contention` keeps the whole carrier-sense world in
dictionaries: every :meth:`~repro.sim.contention.ContentionState.acquire`
hashes nine ``(channel, cx, cy)`` keys to sense the 3x3 neighbourhood,
and every receiver-side :meth:`interfered` check re-walks its cell's
flight list in Python.  At city scale (250 vehicles, 1350+ APs, every
beacon contending) those two loops dominate the contended hot path.

This module replaces the data structure under each loop while keeping
the control flow — and therefore every backoff/loss RNG draw — in the
shared base class:

* **Sense grid** — per channel, a dense 2-D float array of *sensed*
  horizons: booking a cell writes ``max(view, done)`` over its 3x3
  footprint, so a later sense reads exactly **one** element.  The
  propagated value at cell ``c`` is the max over ``c``'s neighbourhood
  of the own-cell bookings — precisely what the scalar 9-key walk
  computes, on the same floats.  Bookings are ~4x rarer than senses in
  contended city runs (most acquires defer), so moving the 3x3 work
  from the read side to the write side is a net win even before the
  dict-hashing savings.  The grid grows on demand with padding; reads
  outside it are idle air (0.0), exactly like a missing dict key.  (The
  backing store is nested Python lists, not an ndarray: access is always
  a single scalar element, where list indexing measures ~1.3-2x faster
  than any numpy read and yields genuine Python floats.)
* **Flight scan** — :meth:`interfered` calls for one delivery share one
  cached per-cell scan: the receiver-independent predicates (foreign
  sender, airtime overlap) are applied once per cell, and the surviving
  flight positions are confirmed per receiver with a squared-distance
  prefilter against the capture bound (``min(range_m, capture_ratio *
  sender_distance)`` plus :data:`~repro.sim.medium_vec.PREFILTER_MARGIN_M`)
  whose survivors re-run the exact ``math.hypot`` predicate in recording
  order.  Caching is identity-safe: a flight booked *during* the
  delivery (a receiver's ``on_frame`` transmitting synchronously) starts
  at ``now + ifs + backoff >= now``, while the delivery being scanned
  ended at ``done = now - propagation delay < now`` — the new flight can
  never satisfy ``f_start < done``, so the scalar walk would skip it too.
* **busy_until** stays the base class's O(1) running per-channel max.

Bit-identity contract: same discipline as :mod:`repro.sim.medium_vec` —
arrays only ever *prefilter*; every survivor is confirmed by the exact
scalar predicate on the same float values, in the same order, and the
RNG streams (``medium.contention`` backoff draws, ``medium.loss`` loss
draws) are consumed by the shared base-class control flow.

numpy is optional (the ``perf`` extra).  When it is missing,
:func:`make_contention_state` falls back to the scalar state and the
medium counts the event on the nondeterministic
``contention.vector_fallbacks`` obs counter, mirroring
``medium.vector_fallbacks``.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via make_contention_state() both ways
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from .contention import ContentionSpec, ContentionState
from .medium_vec import PREFILTER_MARGIN_M

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .radio import Medium

__all__ = [
    "CONTENTION_VECTOR_ENV",
    "ContentionVecState",
    "make_contention_state",
]

#: Environment toggle for the array-backed contention state, mirroring
#: ``REPRO_MEDIUM_VECTOR``: unset/truthy enables it (numpy permitting),
#: ``0``/``off``/``false``/``no`` pins the scalar state.
CONTENTION_VECTOR_ENV = "REPRO_CONTENTION_VECTOR"

#: Below this many overlap-surviving flights in a cell the exact scalar
#: distance loop beats the numpy round-trip.
VEC_MIN_FLIGHTS = 12

#: Cells beyond the grid edge trigger a regrow with this much padding on
#: the far side, so a fleet sweeping along a loop reallocates rarely.
_GRID_PAD = 8

_MISSING = object()


def vector_contention_enabled(env: Optional[str]) -> bool:
    """Decode the ``REPRO_CONTENTION_VECTOR`` setting (default: on)."""
    if env is None:
        return True
    return env.strip().lower() not in ("0", "off", "false", "no")


def make_contention_state(
    medium: "Medium", spec: ContentionSpec, vector: Optional[bool] = None
) -> Tuple[ContentionState, bool]:
    """Build the contention state for ``medium``.

    ``vector=None`` defers to :data:`CONTENTION_VECTOR_ENV`.  Returns
    ``(state, fell_back)`` — ``fell_back`` is True only when the vector
    state was requested but numpy is unavailable, so the caller can count
    the nondeterministic fallback without re-deriving the decision.
    """
    if vector is None:
        import os

        vector = vector_contention_enabled(os.environ.get(CONTENTION_VECTOR_ENV))
    if not vector:
        return ContentionState(medium, spec), False
    if _np is None:
        return ContentionState(medium, spec), True
    return ContentionVecState(medium, spec), False


class _SenseGrid:
    """One channel's dense sensed-horizon grid.

    ``rows[cx - x0][cy - y0]`` holds the max busy horizon any station in
    cell ``(cx, cy)`` senses — i.e. the neighbourhood-propagated max of
    the own-cell bookings.  ``horizon`` tracks the channel-wide max for
    O(1) ``busy_until``.

    The 2-D float array is nested Python lists rather than an ndarray:
    the grid is only ever touched one cell (sense) or nine cells (book)
    at a time, and for scalar point access plain list indexing beats the
    numpy round-trip (``.item()``/``memoryview`` reads measured ~1.3-2x
    slower per element) while returning genuine Python floats — numpy
    scalars must never leak into ``sensed + ifs + backoff`` (they would
    poison sim.now and the JSON exports with np.float64).  numpy stays
    where it vectorizes for real: the hidden-terminal distance prefilter
    below.
    """

    __slots__ = ("x0", "y0", "w", "h", "rows", "horizon")

    def __init__(self, cx: int, cy: int) -> None:
        self.x0 = cx - _GRID_PAD
        self.y0 = cy - _GRID_PAD
        side = 2 * _GRID_PAD + 1
        self.w = side
        self.h = side
        self.rows = [[0.0] * side for _ in range(side)]
        self.horizon = 0.0

    def sense(self, cx: int, cy: int) -> float:
        ix = cx - self.x0
        iy = cy - self.y0
        if 0 <= ix < self.w and 0 <= iy < self.h:
            return self.rows[ix][iy]
        return 0.0

    def book(self, cx: int, cy: int, done: float) -> None:
        ix = cx - self.x0
        iy = cy - self.y0
        if not (1 <= ix < self.w - 1 and 1 <= iy < self.h - 1):
            self._grow(cx, cy)
            ix = cx - self.x0
            iy = cy - self.y0
        for row in self.rows[ix - 1 : ix + 2]:
            if done > row[iy - 1]:
                row[iy - 1] = done
            if done > row[iy]:
                row[iy] = done
            if done > row[iy + 1]:
                row[iy + 1] = done
        if done > self.horizon:
            self.horizon = done

    def _grow(self, cx: int, cy: int) -> None:
        """Reallocate to cover ``(cx, cy)`` with a 1-cell write margin."""
        old = self.rows
        x0 = min(self.x0, cx - _GRID_PAD)
        y0 = min(self.y0, cy - _GRID_PAD)
        x1 = max(self.x0 + self.w, cx + _GRID_PAD + 1)
        y1 = max(self.y0 + self.h, cy + _GRID_PAD + 1)
        w = x1 - x0
        h = y1 - y0
        rows = [[0.0] * h for _ in range(w)]
        ox = self.x0 - x0
        oy = self.y0 - y0
        for i, old_row in enumerate(old):
            rows[ox + i][oy : oy + self.h] = old_row
        self.x0 = x0
        self.y0 = y0
        self.w = w
        self.h = h
        self.rows = rows


class ContentionVecState(ContentionState):
    """CSMA/CA state with array-backed sense + flight-scan hot loops.

    Overrides only the data-structure hooks (:meth:`_sense`,
    :meth:`_book`, :meth:`_interfered`, :meth:`busy_until`); every
    decision, draw, and accounting side effect runs in the shared base
    class, which is what makes the A/B byte-identity bar cheap to hold.
    """

    is_vector = True

    def __init__(self, medium: "Medium", spec: ContentionSpec):
        super().__init__(medium, spec)
        self._np = _np
        #: channel -> sense grid (built on first booking).
        self._grids: Dict[int, _SenseGrid] = {}
        #: One delivery's cached flight scans: key identifies the
        #: delivery, the dict maps receiver cells to their pre-screened
        #: foreign overlapping flights (or None when the cell is clean).
        self._scan_key: Optional[Tuple[int, str, float, float]] = None
        self._scan_cells: Dict[Tuple[int, int], object] = {}

    # -- carrier sense -------------------------------------------------
    def _sense(self, channel: int, cx: int, cy: int) -> float:
        # Inlined _SenseGrid.sense: this runs once per acquire (millions
        # of calls in a contended city run), so the extra frame matters.
        grid = self._grids.get(channel)
        if grid is None:
            return 0.0
        ix = cx - grid.x0
        iy = cy - grid.y0
        if 0 <= ix < grid.w and 0 <= iy < grid.h:
            return grid.rows[ix][iy]
        return 0.0

    def _book(self, channel: int, cx: int, cy: int, done: float) -> None:
        grid = self._grids.get(channel)
        if grid is None:
            grid = self._grids[channel] = _SenseGrid(cx, cy)
        grid.book(cx, cy, done)

    def busy_until(self, channel: int) -> float:
        grid = self._grids.get(channel)
        return grid.horizon if grid is not None else 0.0

    # -- hidden-terminal scan ------------------------------------------
    def _interfered(
        self,
        sender_id: str,
        channel: int,
        rx: float,
        ry: float,
        start: float,
        done: float,
        sender_distance: float,
    ) -> bool:
        key = (channel, sender_id, start, done)
        if key != self._scan_key:
            self._scan_key = key
            self._scan_cells = {}
        bin_m = self._bin_m
        cell = (int(rx // bin_m), int(ry // bin_m))
        cached = self._scan_cells.get(cell, _MISSING)
        if cached is _MISSING:
            cached = self._scan_cells[cell] = self._screen_cell(
                (channel, cell[0], cell[1]), sender_id, start, done
            )
        if cached is None:
            return False
        reach = min(self.medium.range_m, self.spec.capture_ratio * sender_distance)
        pts, xs, ys = cached
        hypot = math.hypot
        if pts is not None:
            for f_x, f_y in pts:
                if hypot(rx - f_x, ry - f_y) <= reach:
                    return True
            return False
        # Squared-distance prefilter with the medium_vec margin; the
        # numpy comparison is conservative, so the exact hypot predicate
        # (same floats, recording order) makes the final call.
        bound = reach + PREFILTER_MARGIN_M
        dx = xs - rx
        dy = ys - ry
        close = (dx * dx + dy * dy <= bound * bound).nonzero()[0]
        for i in close:
            if hypot(rx - xs[i], ry - ys[i]) <= reach:
                return True
        return False

    def interfered_rows(
        self,
        sender_id: str,
        channel: int,
        rows: List[Tuple],
        start: float,
        done: float,
    ):
        """Batched per-delivery scan: screen each receiver cell once.

        Interference flags consume no randomness, so evaluating them
        up front (instead of lazily inside the delivery loop) cannot
        perturb the draw stream; flights booked mid-delivery can never
        satisfy ``f_start < done`` (see the module docstring), so the
        answers match the scalar walk's bit for bit.  With telemetry on
        this defers to the base implementation so the deterministic
        dispatch counters advance per survivor.
        """
        if self._profile:
            return super().interfered_rows(sender_id, channel, rows, start, done)
        key = (channel, sender_id, start, done)
        if key != self._scan_key:
            self._scan_key = key
            self._scan_cells = {}
        cells = self._scan_cells
        bin_m = self._bin_m
        range_m = self.medium.range_m
        ratio = self.spec.capture_ratio
        hypot = math.hypot
        screen = self._screen_cell
        flags = []
        append = flags.append
        # Receivers arrive in registration order, so spatial neighbours
        # (co-located AP radios, a vehicle's own NICs) are adjacent; the
        # one-entry memo skips the dict round-trip for those runs.
        last_x = last_y = None
        cached = None
        for row in rows:
            rx = row[4]
            ry = row[5]
            cell_x = int(rx // bin_m)
            cell_y = int(ry // bin_m)
            if cell_x != last_x or cell_y != last_y:
                last_x = cell_x
                last_y = cell_y
                cell = (cell_x, cell_y)
                cached = cells.get(cell, _MISSING)
                if cached is _MISSING:
                    cached = cells[cell] = screen(
                        (channel, cell_x, cell_y), sender_id, start, done
                    )
            if cached is None:
                append(False)
                continue
            capture = ratio * row[6]
            reach = range_m if capture > range_m else capture
            pts, xs, ys = cached
            hit = False
            if pts is not None:
                for f_x, f_y in pts:
                    if hypot(rx - f_x, ry - f_y) <= reach:
                        hit = True
                        break
            else:
                bound = reach + PREFILTER_MARGIN_M
                dx = xs - rx
                dy = ys - ry
                for i in (dx * dx + dy * dy <= bound * bound).nonzero()[0]:
                    if hypot(rx - xs[i], ry - ys[i]) <= reach:
                        hit = True
                        break
            append(hit)
        return flags

    def _screen_cell(
        self,
        key: Tuple[int, int, int],
        sender_id: str,
        start: float,
        done: float,
    ):
        """Receiver-independent screening of one cell's flight list.

        Applies the exact foreign-sender and airtime-overlap predicates
        once, preserving recording order; returns ``None`` for a clean
        cell, a position list for small survivor sets, or numpy position
        arrays for large ones.
        """
        flights = self._inflight.get(key)
        if not flights:
            return None
        pts: List[Tuple[float, float]] = [
            (f_x, f_y)
            for f_start, f_end, f_sender, f_x, f_y in flights
            if f_sender != sender_id and f_start < done and start < f_end
        ]
        if not pts:
            return None
        if len(pts) < VEC_MIN_FLIGHTS:
            return (pts, None, None)
        np = self._np
        xs = np.array([p[0] for p in pts], dtype=float)
        ys = np.array([p[1] for p in pts], dtype=float)
        return (None, xs, ys)
