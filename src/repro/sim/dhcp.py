"""DHCP over the simulated link: server, client state machine, lease cache.

DHCP is the villain of the paper: join-time is dominated by the wait for the
server's OFFER, that wait cannot be covered by PSM buffering (the client has
no address yet), and default client timers (3 s of attempts, then 60 s of
idling) are hopeless at vehicular speeds.  The pieces here:

* :class:`DhcpServer` — per-AP server whose OFFER is delayed by a draw from
  the configured response-time distribution: this is the ``β ~ U[βmin, βmax]``
  of the analytical model (Eq. 4).
* :class:`DhcpClient` — DISCOVER/OFFER/REQUEST/ACK state machine with a
  configurable retransmission timeout and total attempt budget, plus the
  fast re-REQUEST path used when a cached lease exists.
* :class:`LeaseCache` — Spider's per-BSSID lease memory (Design §3.1:
  "per-BSSID dhcp caches are used to speed up the process of obtaining a
  lease").
"""

from __future__ import annotations

import enum
import itertools
import logging
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .engine import EventHandle, Simulator
from .frames import DHCP_FRAME_BYTES, DhcpMessage, DhcpType, Frame, FrameKind
from .nic import VirtualInterface

__all__ = [
    "DhcpServer",
    "DhcpClient",
    "DhcpClientState",
    "LeaseCache",
    "DEFAULT_DHCP_TIMEOUT_S",
    "DEFAULT_ATTEMPT_BUDGET_S",
    "DEFAULT_IDLE_AFTER_FAILURE_S",
]

logger = logging.getLogger(__name__)

#: Stock client retransmission timeout, seconds.
DEFAULT_DHCP_TIMEOUT_S = 1.0
#: Stock client total attempt budget ("the client attempts to acquire a
#: lease for 3 seconds").
DEFAULT_ATTEMPT_BUDGET_S = 3.0
#: Stock client idle period after a failed attempt ("it is idle for 60
#: seconds if it fails").  Enforced by the caller (link manager), surfaced
#: here as the canonical constant.
DEFAULT_IDLE_AFTER_FAILURE_S = 60.0

_xids = itertools.count(1)


@dataclass
class Lease:
    """One remembered DHCP lease."""
    ip: str
    gateway_ip: str
    expires_at: float


class DhcpServer:
    """The DHCP service an AP offers.

    ``response_delay`` is a zero-argument callable returning the OFFER delay
    in seconds; the default town workloads wire it to ``U[βmin, βmax]``
    minus a small association allowance.  ACK and NAK are fast (the heavy
    lifting — relay round-trips, address-pool checks — happens before the
    OFFER in real deployments).
    """

    def __init__(
        self,
        sim: Simulator,
        subnet: str,
        response_delay: Callable[[], float],
        ack_delay_s: float = 0.05,
        pool_size: int = 200,
        lease_time_s: float = 3600.0,
    ):
        self.sim = sim
        self.subnet = subnet
        self.response_delay = response_delay
        self.ack_delay_s = ack_delay_s
        self.pool_size = pool_size
        self.lease_time_s = lease_time_s
        self.gateway_ip = f"{subnet}.1"
        self._next_host = 10
        self._leases: Dict[str, str] = {}  # client_mac -> ip
        self._ips_in_use: Dict[str, str] = {self.gateway_ip: "gateway"}
        #: Per-transaction readiness time.  A server's slowness is a
        #: property of the transaction (relay round-trips, pool checks):
        #: the first DISCOVER starts the clock, and every DISCOVER —
        #: including retransmissions covering a lost OFFER — is answered no
        #: earlier than that readiness time.
        self._ready_at: Dict[tuple, float] = {}
        self.offers_sent = 0
        self.acks_sent = 0
        self.naks_sent = 0
        # Fault-injection windows (absolute sim times; 0 = inactive).
        self.offline_until = 0.0
        self.nak_until = 0.0
        self.exhausted_until = 0.0
        self.requests_dropped = 0

    # ------------------------------------------------------------------
    # Fault-injection windows
    # ------------------------------------------------------------------
    def stall(self, until_s: float) -> None:
        """Drop every message until ``until_s`` (upstream relay outage)."""
        self.offline_until = max(self.offline_until, until_s)

    def force_nak(self, until_s: float) -> None:
        """NAK every REQUEST until ``until_s``, forgetting the binding.

        Models a server that lost its lease database: the stale binding a
        client re-REQUESTs (cached or just-offered) is refused and purged.
        """
        self.nak_until = max(self.nak_until, until_s)

    def exhaust(self, until_s: float) -> None:
        """Refuse allocations to *new* clients until ``until_s``."""
        self.exhausted_until = max(self.exhausted_until, until_s)

    # ------------------------------------------------------------------
    def _allocate(self, client_mac: str) -> Optional[str]:
        existing = self._leases.get(client_mac)
        if existing is not None:
            return existing
        if len(self._leases) >= self.pool_size:
            return None
        if self.sim.now < self.exhausted_until:
            return None  # injected exhaustion: nothing for new clients
        ip = f"{self.subnet}.{self._next_host}"
        self._next_host += 1
        self._leases[client_mac] = ip
        self._ips_in_use[ip] = client_mac
        return ip

    def lease_for(self, client_mac: str) -> Optional[str]:
        """IP currently leased to the client MAC, if any."""
        return self._leases.get(client_mac)

    def mac_for_ip(self, ip: str) -> Optional[str]:
        """Reverse lookup used by the AP's downlink bridge."""
        owner = self._ips_in_use.get(ip)
        return None if owner in (None, "gateway") else owner

    # ------------------------------------------------------------------
    def handle(self, message: DhcpMessage, reply: Callable[[DhcpMessage, float], None]) -> None:
        """Process a client message; ``reply(msg, delay)`` sends the answer.

        The AP supplies ``reply`` so that the server stays transport-
        agnostic (answers go back over the air through the AP).
        """
        if self.sim.now < self.offline_until:
            self.requests_dropped += 1
            return  # stalled: a dead relay answers nothing at all
        if message.dhcp_type is DhcpType.DISCOVER:
            key = (message.client_mac, message.transaction_id)
            ready_at = self._ready_at.get(key)
            if ready_at is None:
                ready_at = self.sim.now + max(self.response_delay(), 0.0)
                self._ready_at[key] = ready_at
            ip = self._allocate(message.client_mac)
            if ip is None:
                return  # pool exhausted: silence, like a real busy server
            self.offers_sent += 1
            reply(
                DhcpMessage(
                    dhcp_type=DhcpType.OFFER,
                    transaction_id=message.transaction_id,
                    client_mac=message.client_mac,
                    offered_ip=ip,
                    gateway_ip=self.gateway_ip,
                    lease_time=self.lease_time_s,
                ),
                max(ready_at - self.sim.now, self.ack_delay_s),
            )
        elif message.dhcp_type is DhcpType.REQUEST:
            self._ready_at.pop((message.client_mac, message.transaction_id), None)
            requested = message.offered_ip
            if self.sim.now < self.nak_until:
                # Injected NAK burst: the lease database is gone.  Purge
                # whatever binding the client thinks it has and refuse.
                stale = self._leases.pop(message.client_mac, None)
                if stale is not None:
                    self._ips_in_use.pop(stale, None)
                self.naks_sent += 1
                reply(
                    DhcpMessage(
                        dhcp_type=DhcpType.NAK,
                        transaction_id=message.transaction_id,
                        client_mac=message.client_mac,
                    ),
                    self.ack_delay_s,
                )
                return
            valid = (
                requested is not None
                and self._ips_in_use.get(requested) == message.client_mac
            )
            if not valid and requested is not None:
                # Unknown binding (e.g., cached lease from a prior epoch):
                # re-admit it when the address is free, else NAK.
                if requested not in self._ips_in_use and requested.startswith(self.subnet + "."):
                    self._leases[message.client_mac] = requested
                    self._ips_in_use[requested] = message.client_mac
                    valid = True
            if valid:
                self.acks_sent += 1
                reply(
                    DhcpMessage(
                        dhcp_type=DhcpType.ACK,
                        transaction_id=message.transaction_id,
                        client_mac=message.client_mac,
                        offered_ip=requested,
                        gateway_ip=self.gateway_ip,
                        lease_time=self.lease_time_s,
                    ),
                    self.ack_delay_s,
                )
            else:
                self.naks_sent += 1
                reply(
                    DhcpMessage(
                        dhcp_type=DhcpType.NAK,
                        transaction_id=message.transaction_id,
                        client_mac=message.client_mac,
                    ),
                    self.ack_delay_s,
                )


class LeaseCache:
    """Per-BSSID remembered leases (client side)."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._cache: Dict[str, Lease] = {}
        self.hits = 0
        self.misses = 0

    def put(self, bssid: str, ip: str, gateway_ip: str, lease_time_s: float) -> None:
        """Store a lease for the BSSID."""
        self._cache[bssid] = Lease(ip, gateway_ip, self.sim.now + lease_time_s)

    def get(self, bssid: str) -> Optional[Lease]:
        """Fetch a valid (unexpired) lease for the BSSID, if cached."""
        lease = self._cache.get(bssid)
        if lease is None:
            self.misses += 1
            return None
        if lease.expires_at <= self.sim.now:
            del self._cache[bssid]
            self.misses += 1
            return None
        self.hits += 1
        return lease

    def invalidate(self, bssid: str) -> None:
        """Drop any cached lease for the BSSID."""
        self._cache.pop(bssid, None)

    def __len__(self) -> int:
        return len(self._cache)


class DhcpClientState(enum.Enum):
    """DHCP client state machine states."""
    IDLE = "idle"
    SELECTING = "selecting"    # DISCOVER sent, waiting for OFFER
    REQUESTING = "requesting"  # REQUEST sent, waiting for ACK
    BOUND = "bound"
    FAILED = "failed"


class DhcpClient:
    """One lease-acquisition attempt on one interface.

    Callbacks:

    ``on_success(ip, gateway_ip, elapsed_s, used_cache)``
    ``on_failure(reason)``

    A cached lease (``cached``) short-circuits to the REQUEST step; a NAK
    falls back to the full DISCOVER exchange within the same attempt budget.
    """

    def __init__(
        self,
        sim: Simulator,
        iface: VirtualInterface,
        server_bssid: str,
        timeout_s: float = DEFAULT_DHCP_TIMEOUT_S,
        attempt_budget_s: float = DEFAULT_ATTEMPT_BUDGET_S,
        cached: Optional[Lease] = None,
        on_success: Optional[Callable[[str, str, float, bool], None]] = None,
        on_failure: Optional[Callable[[str], None]] = None,
        on_nak: Optional[Callable[[], None]] = None,
        telemetry=None,
    ):
        if timeout_s <= 0 or attempt_budget_s <= 0:
            raise ValueError("timeout_s and attempt_budget_s must be positive")
        self.sim = sim
        # Telemetry: callers (the link manager) pass their own scope so
        # attempts land under e.g. "veh0.dhcp.*"; standalone clients write
        # the simulator-global registry.  Instruments are cached here so a
        # disabled registry costs a no-op call on the rare paths only.
        tele = telemetry if telemetry is not None else sim.telemetry
        self._obs = tele
        self._obs_retransmits = tele.counter("dhcp.retransmits")
        self._obs_naks = tele.counter("dhcp.naks")
        self._obs_lease_time = tele.histogram("dhcp.lease_time_s")
        self._obs_span = None
        self.iface = iface
        self.server_bssid = server_bssid
        self.timeout_s = timeout_s
        self.attempt_budget_s = attempt_budget_s
        self.cached = cached
        self.on_success = on_success
        self.on_failure = on_failure
        self.on_nak = on_nak
        self.naks_received = 0
        self.state = DhcpClientState.IDLE
        self.xid = next(_xids)
        self.started_at: Optional[float] = None
        self.used_cache = False
        self.retransmits = 0
        self._timer: Optional[EventHandle] = None
        self._budget_timer: Optional[EventHandle] = None
        self._requested_ip: Optional[str] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the component."""
        if self.state is not DhcpClientState.IDLE:
            raise RuntimeError(f"dhcp client already started (state={self.state})")
        self.started_at = self.sim.now
        self._obs_span = self._obs.begin_span(
            "dhcp.attempt", bssid=self.server_bssid, cached=self.cached is not None
        )
        self.iface.handlers[FrameKind.DHCP] = self._on_frame
        self._budget_timer = self.sim.schedule(self.attempt_budget_s, self._on_budget_exhausted)
        if self.cached is not None:
            self.used_cache = True
            self._requested_ip = self.cached.ip
            self.state = DhcpClientState.REQUESTING
        else:
            self.state = DhcpClientState.SELECTING
        self._send_current_step()

    def abort(self) -> None:
        """Abort without invoking completion callbacks."""
        self._teardown()
        self.state = DhcpClientState.FAILED
        if self._obs_span is not None:
            self._obs_span.end("cancelled")

    # ------------------------------------------------------------------
    def _send_current_step(self) -> None:
        if self.state is DhcpClientState.SELECTING:
            message = DhcpMessage(
                dhcp_type=DhcpType.DISCOVER,
                transaction_id=self.xid,
                client_mac=self.iface.mac,
            )
        elif self.state is DhcpClientState.REQUESTING:
            message = DhcpMessage(
                dhcp_type=DhcpType.REQUEST,
                transaction_id=self.xid,
                client_mac=self.iface.mac,
                offered_ip=self._requested_ip,
            )
        else:
            return
        self.iface.send(
            Frame(
                kind=FrameKind.DHCP,
                src=self.iface.mac,
                dst=self.server_bssid,
                size=DHCP_FRAME_BYTES,
                bssid=self.server_bssid,
                payload=message,
            )
        )
        self._arm_timer()

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        self._timer = self.sim.schedule(self.timeout_s, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if self.state in (DhcpClientState.BOUND, DhcpClientState.FAILED):
            return
        self.retransmits += 1
        self._obs_retransmits.inc()
        self._send_current_step()

    def _on_budget_exhausted(self) -> None:
        self._budget_timer = None
        if self.state in (DhcpClientState.BOUND, DhcpClientState.FAILED):
            return
        self._fail(f"attempt budget {self.attempt_budget_s}s exhausted in {self.state.value}")

    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame, rssi: float) -> None:
        message = frame.payload
        if not isinstance(message, DhcpMessage):
            return
        if message.transaction_id != self.xid or message.client_mac != self.iface.mac:
            return
        if message.dhcp_type is DhcpType.OFFER and self.state is DhcpClientState.SELECTING:
            self._requested_ip = message.offered_ip
            self.state = DhcpClientState.REQUESTING
            self._send_current_step()
        elif message.dhcp_type is DhcpType.ACK and self.state is DhcpClientState.REQUESTING:
            self._complete(message)
        elif message.dhcp_type is DhcpType.NAK and self.state is DhcpClientState.REQUESTING:
            # Cached address rejected: restart with a full DISCOVER.
            self.naks_received += 1
            self._obs_naks.inc()
            if self.on_nak is not None:
                self.on_nak()
            self.used_cache = False
            self._requested_ip = None
            self.state = DhcpClientState.SELECTING
            self._send_current_step()

    def _complete(self, message: DhcpMessage) -> None:
        self._teardown()
        self.state = DhcpClientState.BOUND
        started = self.started_at if self.started_at is not None else self.sim.now
        elapsed = self.sim.now - started
        ip = message.offered_ip or ""
        gateway = message.gateway_ip or ""
        self.iface.ip = ip
        self.iface.gateway_ip = gateway
        logger.debug(
            "%s leased %s from %s in %.3fs (cache=%s)",
            self.iface.mac, ip, self.server_bssid, elapsed, self.used_cache,
        )
        self._obs_lease_time.observe(elapsed)
        if self._obs_span is not None:
            self._obs_span.end("ok", used_cache=self.used_cache)
        if self.on_success is not None:
            self.on_success(ip, gateway, elapsed, self.used_cache)

    def _fail(self, reason: str) -> None:
        self._teardown()
        self.state = DhcpClientState.FAILED
        logger.debug("%s dhcp via %s failed: %s", self.iface.mac, self.server_bssid, reason)
        if self._obs_span is not None:
            self._obs_span.end("failed", reason=reason)
        if self.on_failure is not None:
            self.on_failure(reason)

    def _teardown(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._budget_timer is not None:
            self._budget_timer.cancel()
            self._budget_timer = None
        if self.iface.handlers.get(FrameKind.DHCP) == self._on_frame:
            del self.iface.handlers[FrameKind.DHCP]
