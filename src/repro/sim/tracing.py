"""Frame-level tracing: a tcpdump for the simulated medium.

Debugging a virtualized Wi-Fi driver is mostly staring at frame timelines.
:class:`FrameTrace` hooks the medium's delivery path and records every
delivered frame (kind, time, src, dst, channel, size), with optional
filters.  It can summarize by kind or station, compute per-channel airtime
occupancy, and render a compact text timeline — the tooling a developer
would reach for when a join pipeline stalls.

The trace observes *deliveries*; frames lost to the channel or to absent
receivers never appear (exactly like a sniffer co-located with the
receiver).  Loss is not invisible, though: the medium counts every frame
killed by the loss draw into the ``medium.drops`` counter of the
:mod:`repro.obs` telemetry registry (and into ``Medium.frames_lost``), so
a trial capture shows drops right next to the deliveries recorded here —
see the Observability note in :mod:`repro.sim.radio`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from .frames import Frame, FrameKind
from .radio import Medium

__all__ = ["TraceRecord", "FrameTrace"]


@dataclass(frozen=True)
class TraceRecord:
    """One delivered frame."""

    time: float
    kind: FrameKind
    src: str
    dst: str
    receiver: str
    channel: int
    size: int

    def render(self) -> str:
        """Render the result as printable text."""
        return (
            f"{self.time:10.4f}  ch{self.channel:<2d} {self.kind.value:<15s} "
            f"{self.src} -> {self.dst} ({self.size}B)"
        )


class FrameTrace:
    """Records frame deliveries from a :class:`Medium`.

    Parameters
    ----------
    medium:
        The medium to observe.
    kinds:
        Optional whitelist of frame kinds.
    stations:
        Optional set of station ids; a frame is recorded when its source,
        destination, or receiver matches.
    max_records:
        Ring-buffer cap; oldest records are discarded beyond it.
    """

    def __init__(
        self,
        medium: Medium,
        kinds: Optional[Iterable[FrameKind]] = None,
        stations: Optional[Iterable[str]] = None,
        max_records: int = 100_000,
    ):
        if max_records <= 0:
            raise ValueError(f"max_records must be positive: {max_records!r}")
        self.medium = medium
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.stations = frozenset(stations) if stations is not None else None
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.dropped_records = 0
        self._active = True
        medium.delivery_hooks.append(self._on_delivery)

    # ------------------------------------------------------------------
    def _matches(self, frame: Frame, receiver: str) -> bool:
        if self.kinds is not None and frame.kind not in self.kinds:
            return False
        if self.stations is not None and not (
            frame.src in self.stations
            or frame.dst in self.stations
            or receiver in self.stations
        ):
            return False
        return True

    def _on_delivery(self, frame: Frame, receiver: str) -> None:
        if not self._active or not self._matches(frame, receiver):
            return
        if len(self.records) >= self.max_records:
            self.records.pop(0)
            self.dropped_records += 1
        self.records.append(
            TraceRecord(
                time=self.medium.sim.now,
                kind=frame.kind,
                src=frame.src,
                dst=frame.dst,
                receiver=receiver,
                channel=frame.channel,
                size=frame.size,
            )
        )

    def stop(self) -> None:
        """Stop recording (records are kept)."""
        self._active = False
        if self._on_delivery in self.medium.delivery_hooks:
            self.medium.delivery_hooks.remove(self._on_delivery)

    def clear(self) -> None:
        """Discard all recorded frames."""
        self.records.clear()
        self.dropped_records = 0

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def counts_by_kind(self) -> Dict[FrameKind, int]:
        """Delivered-frame counts grouped by frame kind."""
        counts: Dict[FrameKind, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def counts_by_station(self) -> Dict[str, int]:
        """Frames sent per source station."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.src] = counts.get(record.src, 0) + 1
        return counts

    def bytes_by_channel(self) -> Dict[int, int]:
        """Delivered bytes grouped by channel."""
        totals: Dict[int, int] = {}
        for record in self.records:
            totals[record.channel] = totals.get(record.channel, 0) + record.size
        return totals

    def between(self, start_s: float, end_s: float) -> List[TraceRecord]:
        """Records within the half-open time window [start, end)."""
        return [r for r in self.records if start_s <= r.time < end_s]

    def conversation(self, a: str, b: str) -> List[TraceRecord]:
        """All frames exchanged between two stations, in order."""
        return [
            r
            for r in self.records
            if (r.src == a and r.dst == b) or (r.src == b and r.dst == a)
        ]

    def render(self, limit: int = 50) -> str:
        """The last ``limit`` records as a text timeline."""
        lines = [r.render() for r in self.records[-limit:]]
        header = (
            f"frame trace: {len(self.records)} records"
            + (f" (+{self.dropped_records} dropped)" if self.dropped_records else "")
        )
        return "\n".join([header] + lines)

    def __len__(self) -> int:
        return len(self.records)
