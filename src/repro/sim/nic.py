"""Client wireless hardware: one physical radio, many virtual interfaces.

This module models the hardware layer Spider's driver sits on:

* :class:`WifiNic` — the physical card.  It is tuned to exactly one channel
  at a time (or none, during the hardware reset a channel change requires),
  owns one outbound queue per channel, and hosts any number of virtual
  interfaces.  Frames sent for a channel the card is not currently on are
  buffered and flushed when the card returns — Design Choice 1 of the paper
  (per-*channel* queues rather than per-AP queues).
* :class:`VirtualInterface` — one 802.11 persona with its own MAC address,
  exposed to the host as a separate network device (Design Choice 3).
* :class:`ScanTable` — the opportunistic-scanning state: beacons and probe
  responses overheard on the current channel populate it without dedicated
  scan time.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .engine import Simulator
from .frames import BROADCAST, Frame, FrameKind, MGMT_FRAME_BYTES
from .mobility import MobilityModel
from .radio import Medium

__all__ = ["ScanEntry", "ScanTable", "VirtualInterface", "WifiNic"]

logger = logging.getLogger(__name__)

#: Hardware-reset time for a channel change, seconds.  Table 1 measures the
#: zero-interface switch at 4.94 ms and attributes most of it to this reset.
DEFAULT_RESET_S = 4.9e-3

#: Per-channel outbound queue depth, frames.
DEFAULT_QUEUE_DEPTH = 64

#: RSSI exponential-average weight for repeated sightings of the same AP.
_RSSI_EWMA = 0.5

#: Below this many fresh scan entries the Python sort wins; above it (dense
#: worlds overhear hundreds of APs) the numpy lexsort fast path kicks in.
_VECTOR_SORT_MIN = 64


@dataclass
class ScanEntry:
    """One AP sighting record in the scan table."""

    bssid: str
    ssid: str
    channel: int
    rssi: float
    last_seen: float
    sightings: int = 1


class ScanTable:
    """APs heard from recently, populated by opportunistic scanning."""

    def __init__(self, max_age_s: float = 5.0):
        self.max_age_s = max_age_s
        self._entries: Dict[str, ScanEntry] = {}

    def observe(self, frame: Frame, rssi: float, now: float) -> None:
        """Record a beacon or probe response."""
        bssid = frame.bssid or frame.src
        ssid = ""
        if isinstance(frame.payload, dict):
            ssid = frame.payload.get("ssid", "")
        entry = self._entries.get(bssid)
        if entry is None:
            self._entries[bssid] = ScanEntry(
                bssid=bssid, ssid=ssid, channel=frame.channel, rssi=rssi, last_seen=now
            )
        else:
            entry.rssi = (1 - _RSSI_EWMA) * entry.rssi + _RSSI_EWMA * rssi
            entry.last_seen = now
            entry.channel = frame.channel
            entry.sightings += 1

    def fresh_entries(self, now: float, channels: Optional[List[int]] = None) -> List[ScanEntry]:
        """Entries seen within ``max_age_s``, optionally channel-filtered.

        Stale entries are pruned as a side effect; results are sorted by
        descending RSSI so callers can use index 0 as "strongest".
        """
        cutoff = now - self.max_age_s
        stale = [b for b, e in self._entries.items() if e.last_seen < cutoff]
        for bssid in stale:
            del self._entries[bssid]
        entries = [
            e
            for e in self._entries.values()
            if channels is None or e.channel in channels
        ]
        if len(entries) >= _VECTOR_SORT_MIN:
            # Dense-world candidate lists (the LMM polls this every tick)
            # sort via numpy lexsort; the key comparisons are identical to
            # the tuple sort below, so the order is too.
            from .medium_vec import argsort_scan

            order = argsort_scan([e.rssi for e in entries], [e.bssid for e in entries])
            if order is not None:
                return [entries[i] for i in order]
        entries.sort(key=lambda e: (-e.rssi, e.bssid))
        return entries

    def get(self, bssid: str) -> Optional[ScanEntry]:
        """Fetch a valid (unexpired) lease for the BSSID, if cached."""
        return self._entries.get(bssid)

    def __len__(self) -> int:
        return len(self._entries)


class VirtualInterface:
    """One virtual 802.11 interface (one Linux netdev in real Spider).

    Protocol layers (association FSM, DHCP client, data plane) register
    per-frame-kind handlers; the NIC demultiplexes received unicast frames
    to the owning interface by destination MAC.
    """

    def __init__(self, nic: "WifiNic", index: int):
        self.nic = nic
        self.index = index
        self.mac = f"{nic.station_id}:if{index}"
        #: Channel this interface's AP lives on (None when unbound).
        self.channel: Optional[int] = None
        #: BSSID the interface is bound to / joining (None when idle).
        self.bssid: Optional[str] = None
        #: Leased IP address once DHCP completes.
        self.ip: Optional[str] = None
        self.gateway_ip: Optional[str] = None
        #: True once link-layer association has completed (PSM signalling
        #: applies only to associated interfaces).
        self.link_associated: bool = False
        #: True once the join pipeline has fully verified the link.
        self.routable: bool = False
        self.handlers: Dict[FrameKind, Callable[[Frame, float], None]] = {}

    def send(self, frame: Frame) -> None:
        """Send through the physical card (queued if the card is off-channel)."""
        if self.channel is None:
            raise RuntimeError(f"{self.mac}: send with no channel bound")
        frame.channel = self.channel
        self.nic.send(frame)

    def send_mgmt(self, kind: FrameKind, dst: str, payload=None, size: int = MGMT_FRAME_BYTES) -> None:
        """Convenience constructor+send for management frames."""
        self.send(
            Frame(kind=kind, src=self.mac, dst=dst, size=size, bssid=self.bssid, payload=payload)
        )

    def reset_binding(self) -> None:
        """Clear all join state (AP lost or released)."""
        self.channel = None
        self.bssid = None
        self.ip = None
        self.gateway_ip = None
        self.link_associated = False
        self.routable = False
        self.handlers.clear()

    @property
    def bound(self) -> bool:
        """Whether the interface is bound to (or joining) an AP."""
        return self.bssid is not None

    def __repr__(self) -> str:
        return f"VirtualInterface({self.mac}, bssid={self.bssid}, ip={self.ip})"


class WifiNic:
    """The physical Wi-Fi card shared by all virtual interfaces.

    The card is on exactly one channel at a time.  ``tune`` models the
    hardware reset a channel change requires: during the reset the radio
    hears nothing (``tuned_channel()`` is None).  Outbound frames for other
    channels wait in per-channel queues, preserving Spider's semantics that
    leaving a channel buffers that channel's traffic rather than dropping it.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        mobility: MobilityModel,
        nic_id: str,
        initial_channel: int = 1,
        reset_s: float = DEFAULT_RESET_S,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ):
        self.sim = sim
        self.medium = medium
        self.mobility = mobility
        self.station_id = nic_id
        self.reset_s = reset_s
        self.queue_depth = queue_depth
        self.current_channel: int = initial_channel
        self._resetting = False
        self.interfaces: List[VirtualInterface] = []
        self._iface_by_mac: Dict[str, VirtualInterface] = {}
        self._queues: Dict[int, Deque[Frame]] = {}
        self.scan_table = ScanTable()
        #: Called for every received frame (after dispatch); used by
        #: promiscuous observers such as metric collectors.
        self.sniffers: List[Callable[[Frame, float], None]] = []
        self.switches = 0
        self.frames_dropped_queue_full = 0
        self._pos_cache: Optional[Tuple[float, Tuple[float, float]]] = None
        medium.register(self)

    # ------------------------------------------------------------------
    # Station protocol
    # ------------------------------------------------------------------
    def position(self) -> Tuple[float, float]:
        """Current (x, y) coordinates in metres.

        Memoized per timestamp: several frames commonly complete at the
        same instant (back-to-back deliveries, probe fan-out), and mobility
        position is a pure function of time.
        """
        now = self.sim.now
        cached = self._pos_cache
        if cached is not None and cached[0] == now:
            return cached[1]
        pos = self.mobility.position_at(now)
        self._pos_cache = (now, pos)
        return pos

    @property
    def max_speed_mps(self) -> Optional[float]:
        """The mobility model's speed bound (``None`` if it declares none).

        Exposing it on the station lets the medium's vectorized index
        snapshot mobile positions with a sound drift allowance.
        """
        return getattr(self.mobility, "max_speed_mps", None)

    def tuned_channel(self) -> Optional[int]:
        """Channel the radio is currently listening on (None while resetting)."""
        return None if self._resetting else self.current_channel

    def accepts(self, dst: str) -> bool:
        """Whether a unicast frame addressed to ``dst`` is for this station."""
        return dst == self.station_id or dst in self._iface_by_mac

    def on_frame(self, frame: Frame, rssi: float) -> None:
        """Handle one received frame."""
        if frame.kind in (FrameKind.BEACON, FrameKind.PROBE_RESPONSE):
            self.scan_table.observe(frame, rssi, self.sim.now)
        for sniffer in self.sniffers:
            sniffer(frame, rssi)
        if frame.dst == BROADCAST:
            return
        iface = self._iface_by_mac.get(frame.dst)
        if iface is None:
            return
        handler = iface.handlers.get(frame.kind)
        if handler is not None:
            handler(frame, rssi)

    # ------------------------------------------------------------------
    # Interfaces
    # ------------------------------------------------------------------
    def add_interface(self) -> VirtualInterface:
        """Create and register a new virtual interface."""
        iface = VirtualInterface(self, len(self.interfaces))
        self.interfaces.append(iface)
        self._iface_by_mac[iface.mac] = iface
        return iface

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Transmit now if on-channel, otherwise buffer for that channel."""
        if not self._resetting and frame.channel == self.current_channel:
            self.medium.transmit(self, frame)
            return
        queue = self._queues.setdefault(frame.channel, deque())
        if len(queue) >= self.queue_depth:
            self.frames_dropped_queue_full += 1
            queue.popleft()  # oldest frame is the least useful to keep
        queue.append(frame)

    def send_probe_request(self) -> None:
        """Broadcast a probe request on the current channel."""
        if self._resetting:
            return
        self.medium.transmit(
            self,
            Frame(
                kind=FrameKind.PROBE_REQUEST,
                src=self.station_id,
                dst=BROADCAST,
                size=MGMT_FRAME_BYTES,
                channel=self.current_channel,
            ),
        )

    # ------------------------------------------------------------------
    # Channel control
    # ------------------------------------------------------------------
    def tune(self, channel: int, on_complete: Optional[Callable[[], None]] = None) -> None:
        """Retune the card: hardware reset, then flush the channel's queue.

        The caller (Spider's driver) is responsible for PSM signalling on
        the old channel *before* calling tune; this method only models the
        reset plus queue flush.
        """
        if self._resetting:
            raise RuntimeError(f"{self.station_id}: tune during reset")
        if channel == self.current_channel:
            if on_complete is not None:
                on_complete()
            return
        self._resetting = True
        self.switches += 1
        self.sim.schedule(self.reset_s, self._finish_tune, channel, on_complete)

    def _finish_tune(self, channel: int, on_complete: Optional[Callable[[], None]]) -> None:
        self.current_channel = channel
        self._resetting = False
        queue = self._queues.get(channel)
        while queue:
            self.medium.transmit(self, queue.popleft())
        if on_complete is not None:
            on_complete()

    def queued_frames(self, channel: int) -> int:
        """Frames buffered for the channel while off-channel."""
        return len(self._queues.get(channel, ()))
