"""Process-pool execution of independent trial jobs.

Every paper artifact repeats independent ``(config, seed)`` drives, so the
natural unit of parallelism is *one whole trial*: each job rebuilds its own
:class:`~repro.sim.engine.Simulator` from a seed, runs it to completion, and
returns a picklable metrics object.  Nothing is shared between jobs, which
is what makes the fan-out embarrassingly parallel *and* deterministic — a
trial's outcome is a pure function of its job spec.

The architecture follows PATHspider's worker/merger split: jobs are fanned
out to a pool of worker processes and the results are merged back in
**submission order**, never completion order, so a parallel run is
bit-identical to the serial one.

Every job comes back wrapped in a :class:`TrialResult` envelope: one trial
raising, crashing its worker, or hanging past the per-trial timeout no
longer aborts the whole suite.  Failed trials can be retried
(``REPRO_TRIAL_RETRIES``), hung trials are killed after
``REPRO_TRIAL_TIMEOUT`` seconds, and a crashed worker (which breaks the
whole pool without saying whose job did it) triggers isolation re-runs —
each unfinished job alone in a fresh single-worker pool — so blame lands on
exactly the trial that crashed, never on an innocent sibling.

Worker-count resolution (first match wins):

1. an explicit ``workers=`` argument (``0`` means "all cores"),
2. the ``REPRO_WORKERS`` environment variable (``0`` means "all cores"),
3. serial execution (``1``).

Serial execution short-circuits the pool entirely — no processes, no
pickling — so ``workers=1`` (or an unset environment) behaves exactly like
the historical in-process loop; exceptions are still enveloped and retried,
but timeouts are not enforced (there is no process to kill) and a hard
crash takes the parent down with it.  Jobs that cannot be pickled (e.g.
ad-hoc lambda factories from a notebook) also degrade to the serial path
rather than failing.

Telemetry rides the same envelopes: a trial that captures a
:class:`~repro.obs.telemetry.TelemetrySnapshot` (frozen and picklable by
design) returns it inside its result object, and the submission-order merge
discipline above is exactly what makes
:func:`~repro.obs.telemetry.merge_snapshots` deterministic across worker
counts — snapshots arrive in the same order whether the pool ran serial,
parallel, or sharded (replica captures deduplicate by snapshot ``key``).

Because a trial is a pure function of its job spec, the pool can also skip
it entirely: when a :class:`~repro.cache.TrialCache` is in effect (explicit
``cache=`` argument, an ambient :func:`repro.cache.activate` context, or
``REPRO_CACHE=1``), :func:`run_jobs` looks every job up by content address
before dispatching, replays hits as ordinary ``ok=True`` envelopes
(bit-identical to a fresh run, telemetry snapshot included), runs only the
misses, and stores their successful values.  Lookups and stores happen in
the submitting process, so worker children never touch the cache.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Set, Tuple

import multiprocessing

__all__ = [
    "TrialJob",
    "TrialResult",
    "TrialError",
    "TrialInterrupted",
    "ShardedJob",
    "resolve_workers",
    "resolve_trial_timeout",
    "resolve_trial_retries",
    "run_jobs",
    "run_sharded",
    "split_shards",
    "unwrap_all",
    "WORKERS_ENV",
    "TIMEOUT_ENV",
    "RETRIES_ENV",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"
#: Per-trial wall-clock timeout in seconds (unset/0 disables).
TIMEOUT_ENV = "REPRO_TRIAL_TIMEOUT"
#: How many times a failed/crashed/hung trial is re-run before giving up.
RETRIES_ENV = "REPRO_TRIAL_RETRIES"

#: Poll interval while waiting for a future to start running (seconds).
_RUNNING_POLL_S = 0.005


class TrialError(RuntimeError):
    """A trial (or a suite of trials) failed and the caller demanded values."""


class TrialInterrupted(TrialError):
    """The suite was interrupted (Ctrl-C) with some trials still unfinished.

    ``partial`` holds one slot per submitted job in submission order:
    the finished envelopes, ``None`` for trials the interrupt cut short.
    Worker processes are terminated before this is raised — an interrupted
    sweep never leaks orphaned children.
    """

    def __init__(self, message: str, partial: Sequence[Optional["TrialResult"]] = ()):
        super().__init__(message)
        self.partial: List[Optional[TrialResult]] = list(partial)


@dataclass(frozen=True)
class TrialJob:
    """One picklable unit of work: ``fn(*args, **kwargs)``.

    ``fn`` must be importable from a worker process — a module-level
    function or a picklable callable object (the experiment factories are
    dataclass callables for exactly this reason).  ``tag`` is an opaque
    caller-side key (e.g. ``(label, seed)``) carried along for regrouping;
    the pool itself never inspects it.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    tag: Any = None

    def run(self) -> Any:
        """Execute the job in the current process."""
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class TrialResult:
    """The envelope one job comes back in: value or diagnosis, never both.

    ``attempts`` counts every execution charged to this job, including the
    final one.  A job that was merely rescheduled because a *sibling* hung
    or crashed is not charged — innocent reruns are free.
    """

    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    tag: Any = None

    def unwrap(self) -> Any:
        """The trial's value, or :class:`TrialError` if it failed."""
        if not self.ok:
            raise TrialError(
                f"trial {self.tag!r} failed after {self.attempts} attempt(s): "
                f"{self.error}"
            )
        return self.value


def unwrap_all(results: Sequence[TrialResult]) -> List[Any]:
    """Values of all trials, or one :class:`TrialError` naming every failure."""
    failures = [r for r in results if not r.ok]
    if failures:
        shown = "; ".join(f"{r.tag!r}: {r.error}" for r in failures[:5])
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        raise TrialError(
            f"{len(failures)}/{len(results)} trials failed: {shown}{more}"
        )
    return [r.value for r in results]


def resolve_workers(workers: Optional[int] = None) -> int:
    """Turn an explicit/env worker request into a concrete count (>= 1).

    ``None`` defers to ``REPRO_WORKERS``; ``0`` (explicit or in the
    environment) means "one worker per core".  Out-of-range requests are
    clamped with a warning rather than raising — a bad environment variable
    should never kill an overnight suite.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            warnings.warn(f"ignoring non-integer {WORKERS_ENV}={env!r}")
            return 1
    if workers < 0:
        warnings.warn(f"clamping negative worker count {workers!r} to 1")
        return 1
    if workers == 0:
        workers = os.cpu_count() or 1
    ceiling = max(32, 4 * (os.cpu_count() or 1))
    if workers > ceiling:
        warnings.warn(f"clamping worker count {workers!r} to {ceiling}")
        return ceiling
    return workers


def resolve_trial_timeout(timeout_s: Optional[float] = None) -> Optional[float]:
    """Per-trial timeout in seconds, or ``None`` when disabled.

    ``None`` defers to ``REPRO_TRIAL_TIMEOUT``; ``0`` (explicit or in the
    environment) disables the timeout.  Garbage values warn and disable.
    """
    if timeout_s is None:
        env = os.environ.get(TIMEOUT_ENV, "").strip()
        if not env:
            return None
        try:
            timeout_s = float(env)
        except ValueError:
            warnings.warn(f"ignoring non-numeric {TIMEOUT_ENV}={env!r}")
            return None
    if timeout_s < 0:
        warnings.warn(f"ignoring negative trial timeout {timeout_s!r}")
        return None
    if timeout_s == 0:
        return None
    return float(timeout_s)


def resolve_trial_retries(retries: Optional[int] = None) -> int:
    """How many re-runs a failed trial gets (>= 0).

    ``None`` defers to ``REPRO_TRIAL_RETRIES`` (default 0).  Garbage or
    negative values warn and fall back to 0.
    """
    if retries is None:
        env = os.environ.get(RETRIES_ENV, "").strip()
        if not env:
            return 0
        try:
            retries = int(env)
        except ValueError:
            warnings.warn(f"ignoring non-integer {RETRIES_ENV}={env!r}")
            return 0
    if retries < 0:
        warnings.warn(f"clamping negative retry count {retries!r} to 0")
        return 0
    return retries


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _execute(payload: bytes) -> bytes:
    """Worker-side entry point: unpickle a job, run it, pickle the result.

    Shipping pre-pickled payloads keeps the executor's own serialization
    trivially cheap and makes pickling errors surface in the parent (where
    they can trigger the serial fallback) instead of killing a worker.
    """
    job: TrialJob = pickle.loads(payload)
    return pickle.dumps(job.run(), protocol=pickle.HIGHEST_PROTOCOL)


def _pool_context():
    """Prefer fork (cheap, shares the warmed-up interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _wait_until_running(future) -> None:
    """Block until a future is actually executing (or already settled).

    ``Future.result(timeout=...)`` measures from *now*, so waiting for the
    running state first makes the timeout bound a job's execution rather
    than its time in the queue behind slow siblings.
    """
    while not (future.running() or future.done()):
        time.sleep(_RUNNING_POLL_S)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool whose worker is stuck mid-job (no graceful path)."""
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass


def _run_serial(jobs: Sequence[TrialJob], retries: int) -> List[TrialResult]:
    results: List[TrialResult] = []
    try:
        for job in jobs:
            attempts = 0
            while True:
                attempts += 1
                try:
                    value = job.run()
                except Exception as exc:
                    if attempts <= retries:
                        continue
                    results.append(
                        TrialResult(
                            ok=False,
                            error=_describe(exc),
                            attempts=attempts,
                            tag=job.tag,
                        )
                    )
                    break
                results.append(
                    TrialResult(ok=True, value=value, attempts=attempts, tag=job.tag)
                )
                break
    except KeyboardInterrupt as exc:
        partial = list(results) + [None] * (len(jobs) - len(results))
        raise TrialInterrupted(
            f"interrupted with {len(results)}/{len(jobs)} trial(s) finished",
            partial,
        ) from exc
    return results


def _run_isolated(
    job: TrialJob, payload: bytes, timeout_s: Optional[float]
) -> TrialResult:
    """Run one job alone in a fresh single-worker pool.

    With the job isolated, a broken pool is an unambiguous diagnosis: *this*
    trial crashed its worker.  The returned envelope carries ``attempts=1``;
    the caller folds it into the job's running total.
    """
    pool = ProcessPoolExecutor(max_workers=1, mp_context=_pool_context())
    try:
        future = pool.submit(_execute, payload)
        try:
            if timeout_s is not None:
                _wait_until_running(future)
                raw = future.result(timeout=timeout_s)
            else:
                raw = future.result()
        except FuturesTimeoutError as exc:
            if timeout_s is None:  # the job itself raised a TimeoutError
                return TrialResult(ok=False, error=_describe(exc), tag=job.tag)
            _kill_pool(pool)
            return TrialResult(
                ok=False, error=f"timed out after {timeout_s:.6g}s", tag=job.tag
            )
        except BrokenProcessPool:
            return TrialResult(
                ok=False, error="worker process died (crash/OOM)", tag=job.tag
            )
        except Exception as exc:
            return TrialResult(ok=False, error=_describe(exc), tag=job.tag)
        return TrialResult(ok=True, value=pickle.loads(raw), tag=job.tag)
    except BaseException:
        # Ctrl-C (or any non-Exception) while the sandbox runs: terminate
        # the worker before unwinding so no orphaned child outlives us.
        _kill_pool(pool)
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def _run_round(
    jobs: Sequence[TrialJob],
    payloads: Sequence[bytes],
    count: int,
    timeout_s: Optional[float],
    retries: int,
    results: List[Optional[TrialResult]],
    attempts: List[int],
    pending: Sequence[int],
) -> Tuple[List[int], Set[int]]:
    """One pool pass over ``pending`` job indices.

    Harvests futures in submission order; under the executor's FIFO
    scheduling the future being waited on is always running, so
    ``result(timeout=...)`` bounds that job's own execution.  Returns the
    indices still unfinished plus the subset that must re-run in isolation
    (a broken pool hides which job crashed it).
    """
    retry: List[int] = []
    isolate: Set[int] = set()
    pool = ProcessPoolExecutor(
        max_workers=min(count, len(pending)), mp_context=_pool_context()
    )
    try:
        futures = {i: pool.submit(_execute, payloads[i]) for i in pending}
        aborted = False
        pool_broken = False
        for i in pending:
            future = futures[i]
            if aborted:
                # The pool is gone: salvage buffered successes, requeue the
                # rest free of charge (they were never proven guilty).
                if future.done():
                    try:
                        raw = future.result()
                    except Exception:
                        retry.append(i)
                        if pool_broken:
                            isolate.add(i)
                        continue
                    attempts[i] += 1
                    results[i] = TrialResult(
                        ok=True,
                        value=pickle.loads(raw),
                        attempts=attempts[i],
                        tag=jobs[i].tag,
                    )
                else:
                    retry.append(i)
                    if pool_broken:
                        isolate.add(i)
                continue
            try:
                if timeout_s is not None and not future.done():
                    _wait_until_running(future)
                    raw = future.result(timeout=timeout_s)
                else:
                    raw = future.result()
            except FuturesTimeoutError as exc:
                attempts[i] += 1
                if timeout_s is None:  # the job itself raised a TimeoutError
                    message = _describe(exc)
                else:
                    message = f"timed out after {timeout_s:.6g}s"
                    _kill_pool(pool)
                    aborted = True
                if attempts[i] <= retries:
                    retry.append(i)
                else:
                    results[i] = TrialResult(
                        ok=False, error=message, attempts=attempts[i], tag=jobs[i].tag
                    )
                continue
            except BrokenProcessPool:
                # A worker died but FIFO scheduling does not say whose job
                # killed it — charge no one; isolation runs will pinpoint
                # the crasher without smearing blame onto siblings.
                aborted = True
                pool_broken = True
                retry.append(i)
                isolate.add(i)
                continue
            except Exception as exc:
                attempts[i] += 1
                if attempts[i] <= retries:
                    retry.append(i)
                else:
                    results[i] = TrialResult(
                        ok=False,
                        error=_describe(exc),
                        attempts=attempts[i],
                        tag=jobs[i].tag,
                    )
                continue
            attempts[i] += 1
            results[i] = TrialResult(
                ok=True, value=pickle.loads(raw), attempts=attempts[i], tag=jobs[i].tag
            )
    except BaseException:
        # Ctrl-C mid-harvest: terminate the workers before unwinding so an
        # interrupted sweep never leaks orphaned children (shutdown alone
        # only abandons them).
        _kill_pool(pool)
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return retry, isolate


def _run_parallel(
    jobs: Sequence[TrialJob],
    payloads: Sequence[bytes],
    count: int,
    timeout_s: Optional[float],
    retries: int,
) -> List[TrialResult]:
    total = len(jobs)
    results: List[Optional[TrialResult]] = [None] * total
    attempts = [0] * total
    pending: List[int] = list(range(total))
    isolate: Set[int] = set()
    try:
        return _drain_parallel(
            jobs, payloads, count, timeout_s, retries, results, attempts,
            pending, isolate,
        )
    except KeyboardInterrupt as exc:
        done = sum(1 for r in results if r is not None)
        raise TrialInterrupted(
            f"interrupted with {done}/{total} trial(s) finished", list(results)
        ) from exc


def _drain_parallel(
    jobs: Sequence[TrialJob],
    payloads: Sequence[bytes],
    count: int,
    timeout_s: Optional[float],
    retries: int,
    results: List[Optional[TrialResult]],
    attempts: List[int],
    pending: List[int],
    isolate: Set[int],
) -> List[TrialResult]:
    while pending:
        if isolate:
            still_pending: List[int] = []
            next_isolate: Set[int] = set()
            for i in pending:
                if i not in isolate:
                    still_pending.append(i)
                    continue
                outcome = _run_isolated(jobs[i], payloads[i], timeout_s)
                attempts[i] += 1
                if outcome.ok or attempts[i] > retries:
                    results[i] = TrialResult(
                        ok=outcome.ok,
                        value=outcome.value,
                        error=outcome.error,
                        attempts=attempts[i],
                        tag=jobs[i].tag,
                    )
                else:
                    # A crasher stays isolated: re-running it inside a shared
                    # pool would break the pool again and stall siblings.
                    still_pending.append(i)
                    next_isolate.add(i)
            pending, isolate = still_pending, next_isolate
            continue
        pending, isolate = _run_round(
            jobs, payloads, count, timeout_s, retries, results, attempts, pending
        )
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


@dataclass(frozen=True)
class ShardedJob:
    """One trial whose per-item work can be split across workers.

    ``fn(shard, *args, **kwargs)`` receives a contiguous subsequence of
    ``items`` and must return one result per shard item, in shard order.
    The canonical use is a fleet drive: the simulation's dynamics are a
    pure function of the seed, so every shard replays the identical run
    and extracts only its own vehicles' metrics; concatenating the shard
    outputs in item order is then bit-identical to one process extracting
    everything.  ``tag`` plays the same opaque-key role as on
    :class:`TrialJob`.
    """

    fn: Callable[..., Sequence[Any]]
    items: Tuple[Any, ...] = ()
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    tag: Any = None


def split_shards(items: Sequence[Any], shards: int) -> List[Tuple[Any, ...]]:
    """Deterministic contiguous split of ``items`` into ``shards`` chunks.

    Early chunks get the remainder, every chunk is non-empty, and
    concatenating the chunks reproduces ``items`` exactly — the property
    the sharded merge relies on.
    """
    items = tuple(items)
    if not items:
        return []
    count = max(1, min(shards, len(items)))
    base, extra = divmod(len(items), count)
    out: List[Tuple[Any, ...]] = []
    start = 0
    for k in range(count):
        size = base + (1 if k < extra else 0)
        out.append(items[start : start + size])
        start += size
    return out


def _shard_capacity() -> int:
    """How many shards are worth running as separate processes.

    Every shard *replays the whole coupled simulation* and extracts only its
    own items, so shards beyond the physical core count are pure overhead —
    the same work re-simulated on a timeshared core (the committed
    ``fleet_sharded`` bench once recorded a 0.477x "speedup" from exactly
    that on a 1-core container).  ``REPRO_SHARD_OVERCOMMIT=1`` lifts the
    clamp for tests that exercise multi-shard paths on small machines.
    """
    if os.environ.get("REPRO_SHARD_OVERCOMMIT", "").strip() in ("1", "true"):
        return 1 << 30
    return os.cpu_count() or 1


def run_sharded(
    job: ShardedJob,
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    cache: Any = None,
) -> TrialResult:
    """Run one :class:`ShardedJob` across workers and merge deterministically.

    Items are split into contiguous shards (one per worker), each shard runs
    as an ordinary :class:`TrialJob` — inheriting the envelope, per-shard
    timeout, retry, crash-isolation, and result-cache machinery — and the
    per-item results are concatenated in item order.  The merged envelope's
    ``attempts`` is the worst shard's count.  Any failed shard fails the
    whole trial (a partial fleet row is not a meaningful result), with every
    shard's diagnosis preserved in ``error``.

    The shard count is capped at the machine's core count (see
    :func:`_shard_capacity`); when that leaves one shard — one core, one
    item, or ``workers<=1`` — the job runs in-process with no worker
    processes and no pickling, exactly like the serial trial path.  The
    merged value is bit-identical across every layout either way.
    """
    items = tuple(job.items)
    if not items:
        return TrialResult(ok=True, value=[], tag=job.tag)
    count = min(resolve_workers(workers), len(items), _shard_capacity())
    shards = split_shards(items, count)
    subjobs = [
        TrialJob(
            job.fn,
            (shard,) + tuple(job.args),
            job.kwargs,
            tag=(job.tag, index),
        )
        for index, shard in enumerate(shards)
    ]
    envelopes = run_jobs(
        subjobs, workers=count, timeout_s=timeout_s, retries=retries, cache=cache
    )
    attempts = max(e.attempts for e in envelopes)
    failures = [e for e in envelopes if not e.ok]
    if failures:
        shown = "; ".join(f"shard {e.tag[1]}: {e.error}" for e in failures[:5])
        more = f" (+{len(failures) - 5} more)" if len(failures) > 5 else ""
        return TrialResult(
            ok=False,
            error=f"{len(failures)}/{len(shards)} shards failed: {shown}{more}",
            attempts=attempts,
            tag=job.tag,
        )
    merged: List[Any] = []
    for index, (shard, envelope) in enumerate(zip(shards, envelopes)):
        part = list(envelope.value)
        if len(part) != len(shard):
            return TrialResult(
                ok=False,
                error=(
                    f"shard {index} returned {len(part)} results for "
                    f"{len(shard)} items"
                ),
                attempts=attempts,
                tag=job.tag,
            )
        merged.extend(part)
    return TrialResult(ok=True, value=merged, attempts=attempts, tag=job.tag)


def _dispatch_jobs(
    jobs: List[TrialJob],
    workers: Optional[int],
    timeout_s: Optional[float],
    retries: Optional[int],
) -> List[TrialResult]:
    """The cache-free execution path: serial short-circuit or process pool."""
    count = min(resolve_workers(workers), len(jobs))
    timeout = resolve_trial_timeout(timeout_s)
    tries = resolve_trial_retries(retries)
    if count <= 1:
        return _run_serial(jobs, tries)

    try:
        payloads = [
            pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL) for job in jobs
        ]
    except Exception as exc:  # unpicklable ad-hoc factory: degrade gracefully
        warnings.warn(
            f"trial jobs are not picklable ({exc!r}); running serially"
        )
        return _run_serial(jobs, tries)
    return _run_parallel(jobs, payloads, count, timeout, tries)


def _dispatch_or_fabric(
    jobs: List[TrialJob],
    workers: Optional[int],
    timeout_s: Optional[float],
    retries: Optional[int],
) -> List[TrialResult]:
    """Route a fan-out through the ambient sweep fabric, if one is active.

    Graceful degradation is the contract: no fabric resolved (the common
    case) or a fabric that fails outright both land on the local
    :func:`_dispatch_jobs` path.  The fabric's merge discipline matches the
    pool's (submission order, identical envelopes), so which path ran is
    unobservable in the results.
    """
    from ..fabric import resolve_fabric  # late import: fabric pulls in obs

    fabric = resolve_fabric()
    if fabric is None:
        return _dispatch_jobs(jobs, workers, timeout_s, retries)
    try:
        return fabric.run(
            jobs, workers=workers, timeout_s=timeout_s, retries=retries
        )
    except (KeyboardInterrupt, TrialInterrupted):
        raise
    except Exception as exc:
        warnings.warn(
            f"sweep fabric {fabric!r} failed ({_describe(exc)}); "
            "falling back to the local pool"
        )
        return _dispatch_jobs(jobs, workers, timeout_s, retries)


def run_jobs(
    jobs: Sequence[TrialJob],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    cache: Any = None,
) -> List[TrialResult]:
    """Run jobs, returning :class:`TrialResult` envelopes in submission order.

    The deterministic merge is the contract callers rely on: submit jobs
    sorted by ``(config, seed)`` and the result list lines up regardless of
    which worker finished first.  With one worker (or one job) the pool is
    bypassed entirely.

    A raising, crashing, or hung trial yields ``TrialResult(ok=False, ...)``
    for exactly that trial; siblings still complete and their values are
    bit-identical to a fault-free run.  ``timeout_s``/``retries`` default to
    the ``REPRO_TRIAL_TIMEOUT``/``REPRO_TRIAL_RETRIES`` environment knobs.
    Timeouts require worker processes, so the serial path does not enforce
    them.

    ``cache`` resolves via :func:`repro.cache.resolve_cache` (a
    :class:`~repro.cache.TrialCache`, ``True``/``False``, or ``None`` for
    the ambient/environment default).  With a cache in effect, every job is
    looked up by content address first; hits come back as ``ok=True``
    envelopes with ``attempts=1`` — indistinguishable from a first-try
    success, which is what keeps warm reruns byte-identical to cold ones —
    and only misses are dispatched.  Successful miss values are stored;
    failures are never cached, so a flaky trial re-runs until it succeeds.
    Uncacheable jobs (no stable content address) silently bypass the cache.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    from ..cache import resolve_cache  # late import: cache pulls in repro.obs

    store = resolve_cache(cache)
    if store is None:
        return _dispatch_or_fabric(jobs, workers, timeout_s, retries)

    keys: List[Optional[str]] = [store.key_for(job) for job in jobs]
    results: List[Optional[TrialResult]] = [None] * len(jobs)
    misses: List[int] = []
    for i, (job, key) in enumerate(zip(jobs, keys)):
        if key is not None:
            hit, value = store.get(key)
            if hit:
                results[i] = TrialResult(ok=True, value=value, tag=job.tag)
                continue
        misses.append(i)
    if misses:
        try:
            fresh = _dispatch_or_fabric(
                [jobs[i] for i in misses], workers, timeout_s, retries
            )
        except TrialInterrupted as exc:
            # Bank what finished before re-raising: a resumed sweep replays
            # these as cache hits instead of re-running them.
            for i, envelope in zip(misses, exc.partial):
                if envelope is not None and envelope.ok and keys[i] is not None:
                    store.put(keys[i], envelope.value)
            raise
        for i, envelope in zip(misses, fresh):
            results[i] = envelope
            if envelope.ok and keys[i] is not None:
                store.put(keys[i], envelope.value)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
