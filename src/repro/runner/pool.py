"""Process-pool execution of independent trial jobs.

Every paper artifact repeats independent ``(config, seed)`` drives, so the
natural unit of parallelism is *one whole trial*: each job rebuilds its own
:class:`~repro.sim.engine.Simulator` from a seed, runs it to completion, and
returns a picklable metrics object.  Nothing is shared between jobs, which
is what makes the fan-out embarrassingly parallel *and* deterministic — a
trial's outcome is a pure function of its job spec.

The architecture follows PATHspider's worker/merger split: jobs are fanned
out to a pool of worker processes and the results are merged back in
**submission order**, never completion order, so a parallel run is
bit-identical to the serial one.

Worker-count resolution (first match wins):

1. an explicit ``workers=`` argument (``0`` means "all cores"),
2. the ``REPRO_WORKERS`` environment variable (``0`` means "all cores"),
3. serial execution (``1``).

Serial execution short-circuits the pool entirely — no processes, no
pickling — so ``workers=1`` (or an unset environment) behaves exactly like
the historical in-process loop.  Jobs that cannot be pickled (e.g. ad-hoc
lambda factories from a notebook) also degrade to the serial path rather
than failing.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

import multiprocessing

__all__ = ["TrialJob", "resolve_workers", "run_jobs", "WORKERS_ENV"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


@dataclass(frozen=True)
class TrialJob:
    """One picklable unit of work: ``fn(*args, **kwargs)``.

    ``fn`` must be importable from a worker process — a module-level
    function or a picklable callable object (the experiment factories are
    dataclass callables for exactly this reason).  ``tag`` is an opaque
    caller-side key (e.g. ``(label, seed)``) carried along for regrouping;
    the pool itself never inspects it.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    tag: Any = None

    def run(self) -> Any:
        """Execute the job in the current process."""
        return self.fn(*self.args, **dict(self.kwargs))


def resolve_workers(workers: Optional[int] = None) -> int:
    """Turn an explicit/env worker request into a concrete count (>= 1).

    ``None`` defers to ``REPRO_WORKERS``; ``0`` (explicit or in the
    environment) means "one worker per core".
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            warnings.warn(f"ignoring non-integer {WORKERS_ENV}={env!r}")
            return 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0: {workers!r}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, workers)


def _execute(payload: bytes) -> bytes:
    """Worker-side entry point: unpickle a job, run it, pickle the result.

    Shipping pre-pickled payloads keeps the executor's own serialization
    trivially cheap and makes pickling errors surface in the parent (where
    they can trigger the serial fallback) instead of killing a worker.
    """
    job: TrialJob = pickle.loads(payload)
    return pickle.dumps(job.run(), protocol=pickle.HIGHEST_PROTOCOL)


def _pool_context():
    """Prefer fork (cheap, shares the warmed-up interpreter) when available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_jobs(
    jobs: Sequence[TrialJob],
    workers: Optional[int] = None,
) -> List[Any]:
    """Run jobs, returning their results in **submission order**.

    The deterministic merge is the contract callers rely on: submit jobs
    sorted by ``(config, seed)`` and the result list lines up regardless of
    which worker finished first.  With one worker (or one job) the pool is
    bypassed entirely.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    count = resolve_workers(workers)
    count = min(count, len(jobs))
    if count <= 1:
        return [job.run() for job in jobs]

    try:
        payloads = [
            pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL) for job in jobs
        ]
    except Exception as exc:  # unpicklable ad-hoc factory: degrade gracefully
        warnings.warn(
            f"trial jobs are not picklable ({exc!r}); running serially"
        )
        return [job.run() for job in jobs]

    with ProcessPoolExecutor(
        max_workers=count, mp_context=_pool_context()
    ) as pool:
        futures = [pool.submit(_execute, payload) for payload in payloads]
        return [pickle.loads(future.result()) for future in futures]
