"""Parallel execution of independent simulation trials.

:mod:`repro.runner` fans independent ``(factory, seed, duration, town)``
jobs out across worker processes and merges the results deterministically
(submission order, never completion order).  Every job returns in a
:class:`TrialResult` envelope so one crashed or hung trial never takes a
whole suite down.  See :mod:`repro.runner.pool` for the execution model and
:mod:`repro.experiments.common` for the town-trial specs built on top of it.
"""

from .pool import (
    RETRIES_ENV,
    TIMEOUT_ENV,
    WORKERS_ENV,
    ShardedJob,
    TrialError,
    TrialJob,
    TrialResult,
    resolve_trial_retries,
    resolve_trial_timeout,
    resolve_workers,
    run_jobs,
    run_sharded,
    split_shards,
    unwrap_all,
)

__all__ = [
    "TrialJob",
    "TrialResult",
    "TrialError",
    "ShardedJob",
    "resolve_workers",
    "resolve_trial_timeout",
    "resolve_trial_retries",
    "run_jobs",
    "run_sharded",
    "split_shards",
    "unwrap_all",
    "WORKERS_ENV",
    "TIMEOUT_ENV",
    "RETRIES_ENV",
]
