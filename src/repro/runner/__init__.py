"""Parallel execution of independent simulation trials.

:mod:`repro.runner` fans independent ``(factory, seed, duration, town)``
jobs out across worker processes and merges the results deterministically
(submission order, never completion order).  See :mod:`repro.runner.pool`
for the execution model and :mod:`repro.experiments.common` for the
town-trial specs built on top of it.
"""

from .pool import WORKERS_ENV, TrialJob, resolve_workers, run_jobs

__all__ = ["TrialJob", "resolve_workers", "run_jobs", "WORKERS_ENV"]
