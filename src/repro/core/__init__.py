"""Spider: the paper's primary contribution.

Channel-based scheduling (:class:`SpiderDriver`), utility-driven AP
selection, the link-management module (:class:`LinkManager`), and the
:class:`SpiderClient` façade exposing the four evaluation configurations.
"""

from .schedule import OperationMode
from .ap_selection import (
    ApOption,
    JoinOutcome,
    UtilityTracker,
    knapsack_select_bruteforce,
    knapsack_select_dp,
    knapsack_select_greedy,
    select_aps,
)
from .adaptive import AdaptiveScheduler
from .driver import SpiderDriver
from .fatvap import ApSlicedDriver
from .link_manager import LinkManager, SpiderConfig
from .spider import ORTHOGONAL_CHANNELS, SpiderClient
from .striping import ChunkState, StripedDownload

__all__ = [
    "OperationMode",
    "ApOption",
    "JoinOutcome",
    "UtilityTracker",
    "knapsack_select_bruteforce",
    "knapsack_select_dp",
    "knapsack_select_greedy",
    "select_aps",
    "AdaptiveScheduler",
    "SpiderDriver",
    "ApSlicedDriver",
    "LinkManager",
    "SpiderConfig",
    "ORTHOGONAL_CHANNELS",
    "SpiderClient",
    "ChunkState",
    "StripedDownload",
]
