"""FatVAP-style AP-sliced scheduling — the ablation for Design Choice 1.

FatVAP and Juggler slice the card's time across *APs*: while AP ``k`` holds
the card, every other associated AP is told (via PSM) to buffer.  Spider's
criticism (§3.1) is that an AP's queue can then "reserve the driver for a
long time", and that two APs on the *same* channel cannot be served
concurrently.  :class:`ApSlicedDriver` implements the per-AP reservation
discipline on our substrate so the two designs can be compared on identical
topologies (see ``benchmarks/test_bench_ablation_queues.py``).

The driver grants each bound interface an equal time slice.  At each slice
boundary it PSMs every other associated AP (even same-channel ones — the
reservation), retunes if the next AP lives elsewhere, and PS-polls the
scheduled AP.  With no bound interfaces it falls back to cycling the
configured channels so discovery still works.
"""

from __future__ import annotations

import logging
from typing import List, Optional

from ..sim.engine import EventHandle, Simulator
from ..sim.frames import FrameKind
from ..sim.nic import VirtualInterface, WifiNic
from .driver import SpiderDriver
from .schedule import OperationMode

__all__ = ["ApSlicedDriver"]

logger = logging.getLogger(__name__)


class ApSlicedDriver(SpiderDriver):
    """Per-AP time slicing (FatVAP/Juggler discipline) on the Spider NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic: WifiNic,
        mode: OperationMode,
        slice_s: float = 0.1,
        probe_interval_s: Optional[float] = None,
    ):
        super().__init__(sim, nic, mode, probe_interval_s=probe_interval_s)
        self.slice_s = slice_s
        self._ap_cursor = 0
        self._slice_timer: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the component."""
        if self.running:
            raise RuntimeError("driver already started")
        self.running = True
        self._arm_slice(first=True)

    def stop(self) -> None:
        """Stop the component and release its resources."""
        if self._slice_timer is not None:
            self._slice_timer.cancel()
            self._slice_timer = None
        super().stop()

    def _bound_ifaces(self) -> List[VirtualInterface]:
        # Joining interfaces participate in the rotation too: their AP's
        # channel needs airtime or the handshake can never complete.
        return [i for i in self.nic.interfaces if i.bssid is not None and i.channel]

    # ------------------------------------------------------------------
    def _arm_slice(self, first: bool = False) -> None:
        if not self.running:
            return
        delay = 0.0 if first else self.slice_s
        self._slice_timer = self.sim.schedule(delay, self._next_slice)

    def _next_slice(self) -> None:
        self._slice_timer = None
        if not self.running:
            return
        bound = self._bound_ifaces()
        if not bound:
            # Discovery: rotate the configured channels like Spider does.
            channels = self.mode.channels
            self._ap_cursor = (self._ap_cursor + 1) % len(channels)
            target_channel = channels[self._ap_cursor % len(channels)]
            self._retune_then_poll(target_channel, scheduled=None)
            return
        self._ap_cursor = (self._ap_cursor + 1) % len(bound)
        scheduled = bound[self._ap_cursor]
        # The reservation: every *other* associated AP buffers, including
        # those sharing the scheduled AP's channel.
        for iface in bound:
            if iface is not scheduled and iface.link_associated:
                iface.send_mgmt(FrameKind.PSM, iface.bssid)  # type: ignore[arg-type]
        self._retune_then_poll(scheduled.channel, scheduled)

    def _retune_then_poll(self, channel: Optional[int], scheduled: Optional[VirtualInterface]) -> None:
        def after_tune() -> None:
            if (
                scheduled is not None
                and scheduled.link_associated
                and scheduled.bssid is not None
            ):
                scheduled.send_mgmt(FrameKind.PS_POLL, scheduled.bssid)
            self._arm_slice()

        if channel is not None and channel != self.nic.current_channel:
            self.nic.tune(channel, after_tune)
        else:
            after_tune()
