"""AP selection: join-success utilities, the shipping heuristic, and the
exact (exponential) formulation it replaces.

Design Choice 2 of the paper: optimal multi-AP selection is NP-hard
(Appendix A reduces it to 0-1 knapsack), so Spider ranks APs by a
*join-success utility* instead of end-to-end bandwidth:

* every attempt is scored by how far it got — association only (``va``),
  DHCP lease (``vb``), end-to-end verified (``vc``), with
  ``va < vb < vc`` — and failures at association score zero;
* an AP's utility is a recency-weighted average of its attempt scores;
* unseen open APs with sufficient signal bootstrap at the maximum utility
  "so that the AP is considered for association at least once";
* signal strength breaks ties.

The module also implements the Appendix-A knapsack exactly (dynamic
programming) plus a brute-force checker and a greedy ratio heuristic, used
by the ablation benches to show why the exact approach is infeasible online.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sim.nic import ScanEntry

__all__ = [
    "JoinOutcome",
    "UtilityTracker",
    "select_aps",
    "ApOption",
    "knapsack_select_dp",
    "knapsack_select_bruteforce",
    "knapsack_select_greedy",
]

#: Stage rewards, va < vb < vc (§3.1 Design Choice 2).
VA_ASSOCIATED = 0.3
VB_LEASED = 0.6
VC_VERIFIED = 1.0
#: Reward for an attempt that failed during link-layer association.
V_FAILED = 0.0

#: Recency weight: "recent joins are given larger weights".
_EWMA_ALPHA = 0.5

#: Minimum RSSI (dBm) for an AP to be considered at all ("sufficient
#: signal strength").
MIN_USABLE_RSSI_DBM = -88.0


class JoinOutcome:
    """How far one join attempt progressed (symbolic constants)."""

    FAILED = "failed"
    ASSOCIATED = "associated"
    LEASED = "leased"
    VERIFIED = "verified"

    REWARDS = {
        FAILED: V_FAILED,
        ASSOCIATED: VA_ASSOCIATED,
        LEASED: VB_LEASED,
        VERIFIED: VC_VERIFIED,
    }


class UtilityTracker:
    """Recency-weighted join-success utility per AP."""

    def __init__(self, alpha: float = _EWMA_ALPHA, bootstrap: float = VC_VERIFIED):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha!r}")
        self.alpha = alpha
        self.bootstrap = bootstrap
        self._utilities: Dict[str, float] = {}
        self._attempts: Dict[str, int] = {}

    def record(self, bssid: str, outcome: str) -> None:
        """Fold one attempt's outcome into the AP's utility."""
        reward = JoinOutcome.REWARDS[outcome]
        previous = self._utilities.get(bssid)
        if previous is None:
            self._utilities[bssid] = reward
        else:
            self._utilities[bssid] = (
                (1.0 - self.alpha) * previous + self.alpha * reward
            )
        self._attempts[bssid] = self._attempts.get(bssid, 0) + 1

    def utility(self, bssid: str) -> float:
        """Current utility; unseen APs bootstrap at the maximum."""
        return self._utilities.get(bssid, self.bootstrap)

    def attempts(self, bssid: str) -> int:
        """Number of recorded join attempts for the AP."""
        return self._attempts.get(bssid, 0)

    def known(self) -> Set[str]:
        """BSSIDs with at least one recorded attempt."""
        return set(self._utilities)


def select_aps(
    candidates: Sequence[ScanEntry],
    tracker: UtilityTracker,
    count: int,
    exclude: Optional[Set[str]] = None,
    min_rssi_dbm: float = MIN_USABLE_RSSI_DBM,
) -> List[ScanEntry]:
    """Spider's shipping heuristic: top-``count`` APs by utility.

    ``exclude`` holds BSSIDs already bound to another interface (the
    synchronization rule: no two interfaces on the same AP) or currently
    blacklisted.  Ties in utility break on signal strength, then BSSID for
    determinism.
    """
    if count <= 0:
        return []
    excluded = exclude or set()
    usable = [
        e
        for e in candidates
        if e.bssid not in excluded and e.rssi >= min_rssi_dbm
    ]
    usable.sort(key=lambda e: (-tracker.utility(e.bssid), -e.rssi, e.bssid))
    return usable[:count]


# ----------------------------------------------------------------------
# Appendix A: exact selection as 0-1 knapsack
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApOption:
    """One candidate (or candidate subset) in the Appendix-A formulation.

    ``value`` is ``T_i × W_i`` (time in range times offered bandwidth) and
    ``cost`` is ``T_i + ⌈T_i/T⌉ × D_i`` (time plus switching/queue overhead).
    """

    name: str
    value: float
    cost: float

    def __post_init__(self) -> None:
        if self.value < 0 or self.cost < 0:
            raise ValueError("value and cost must be non-negative")


def knapsack_select_dp(
    options: Sequence[ApOption], budget: float, resolution: float = 0.01
) -> Tuple[float, List[ApOption]]:
    """Exact 0-1 knapsack via DP over cost quantized at ``resolution``.

    Returns ``(total_value, chosen_options)``.  Costs are floored to the
    grid, so the solution is exact for grid-aligned instances and an upper
    bound otherwise; tests use grid-aligned instances.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative: {budget!r}")
    if resolution <= 0:
        raise ValueError(f"resolution must be positive: {resolution!r}")
    capacity = int(math.floor(budget / resolution + 1e-9))
    costs = [int(math.floor(o.cost / resolution + 1e-9)) for o in options]
    # best[c] = (value, chosen-bitmask-as-int) at cost exactly <= c
    best_value = [0.0] * (capacity + 1)
    best_pick: List[int] = [0] * (capacity + 1)
    for index, option in enumerate(options):
        cost = costs[index]
        if cost > capacity:
            continue
        for c in range(capacity, cost - 1, -1):
            candidate = best_value[c - cost] + option.value
            if candidate > best_value[c] + 1e-12:
                best_value[c] = candidate
                best_pick[c] = best_pick[c - cost] | (1 << index)
    best_c = max(range(capacity + 1), key=lambda c: best_value[c])
    chosen = [o for i, o in enumerate(options) if best_pick[best_c] >> i & 1]
    return best_value[best_c], chosen


def knapsack_select_bruteforce(
    options: Sequence[ApOption], budget: float
) -> Tuple[float, List[ApOption]]:
    """Enumerate all subsets — the exponential baseline (testing only)."""
    best_value = 0.0
    best_subset: Tuple[ApOption, ...] = ()
    for r in range(len(options) + 1):
        for subset in itertools.combinations(options, r):
            cost = sum(o.cost for o in subset)
            if cost > budget + 1e-12:
                continue
            value = sum(o.value for o in subset)
            if value > best_value + 1e-12:
                best_value = value
                best_subset = subset
    return best_value, list(best_subset)


def knapsack_select_greedy(
    options: Sequence[ApOption], budget: float
) -> Tuple[float, List[ApOption]]:
    """Greedy value/cost-ratio heuristic (real-time feasible)."""
    remaining = budget
    chosen: List[ApOption] = []
    total = 0.0
    ranked = sorted(
        options,
        key=lambda o: (-(o.value / o.cost) if o.cost > 0 else -math.inf, o.name),
    )
    for option in ranked:
        if option.cost <= remaining + 1e-12:
            chosen.append(option)
            remaining -= option.cost
            total += option.value
    return total, chosen
